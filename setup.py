"""Setup shim so the package installs in offline environments without the
``wheel`` package (legacy ``pip install -e .`` path); all metadata lives in
``pyproject.toml``."""

from setuptools import setup

setup()
