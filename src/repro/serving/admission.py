"""Per-tenant admission control for the serving front end (DESIGN.md §8).

Two independent limits, both per tenant and both typed-rejection (the HTTP
layer maps :class:`AdmissionError` to a 429 with ``Retry-After``):

* a **token bucket** bounding sustained request rate with a burst allowance
  (tokens refill continuously at ``rate`` per second up to ``burst``), and
* a **max in-flight** cap bounding how many of a tenant's requests may sit
  in the coalescer at once — the backpressure that keeps one tenant from
  filling every tick's batch while others starve.

Admission happens *before* a request enters the coalescer queue, so a
rejected request costs no batch slot, no epoch pin and no kernel time.
The clock is injectable for deterministic tests; the default is
``time.monotonic`` (never wall clock — an NTP step must not refill or
starve a bucket).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = ["AdmissionError", "TokenBucket", "AdmissionController"]


class AdmissionError(Exception):
    """Typed 429-style rejection: which tenant, why, and when to retry."""

    def __init__(self, tenant: str, reason: str, retry_after: float = 0.0) -> None:
        self.tenant = tenant
        self.reason = reason  # "rate" or "in_flight"
        self.retry_after = max(0.0, float(retry_after))
        super().__init__(
            f"tenant {tenant!r} rejected ({reason}); retry after "
            f"{self.retry_after:.3f}s"
        )


class TokenBucket:
    """A continuously refilling token bucket on an injectable monotonic clock."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            # Advance the high-water mark only on forward progress: a clock
            # that regresses (a broken injected clock, a suspend glitch)
            # must not move it backwards, or the same interval would refill
            # the bucket twice once the clock catches back up.
            self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after a refill step)."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (nothing taken) otherwise."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def seconds_until(self, tokens: float = 1.0) -> float:
        """How long until ``tokens`` will be available at the refill rate."""
        self._refill()
        missing = tokens - self._tokens
        return max(0.0, missing / self.rate)


class AdmissionController:
    """Admit or reject requests per tenant; track in-flight counts.

    ``rate=None`` disables the token bucket, ``max_in_flight=None`` disables
    the concurrency cap (both disabled = admit everything, the default).
    ``burst`` defaults to ``rate`` (one second of traffic).
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_in_flight: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else rate
        self.max_in_flight = max_in_flight
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_flight: Dict[str, int] = {}
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_in_flight = 0

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> None:
        """Admit one request for ``tenant`` or raise :class:`AdmissionError`.

        On success the tenant's in-flight count is raised; the caller owns a
        matching :meth:`release` (the server does it in a ``finally``).
        """
        in_flight = self._in_flight.get(tenant, 0)
        if self.max_in_flight is not None and in_flight >= self.max_in_flight:
            self.rejected_in_flight += 1
            raise AdmissionError(tenant, "in_flight", retry_after=0.0)
        if self.rate is not None:
            bucket = self._bucket(tenant)
            if not bucket.try_acquire():
                self.rejected_rate += 1
                raise AdmissionError(
                    tenant, "rate", retry_after=bucket.seconds_until()
                )
        self._in_flight[tenant] = in_flight + 1
        self.admitted += 1

    def release(self, tenant: str) -> None:
        """Drop one in-flight reference (the response left the building)."""
        count = self._in_flight.get(tenant, 0)
        if count <= 0:
            raise RuntimeError(f"tenant {tenant!r} has no in-flight requests")
        if count == 1:
            del self._in_flight[tenant]
        else:
            self._in_flight[tenant] = count - 1

    def in_flight(self, tenant: str) -> int:
        return self._in_flight.get(tenant, 0)

    @property
    def total_in_flight(self) -> int:
        return sum(self._in_flight.values())

    def stats(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected_rate": self.rejected_rate,
            "rejected_in_flight": self.rejected_in_flight,
            "in_flight": self.total_in_flight,
            "tenants": len(self._buckets) or len(self._in_flight),
        }
