"""Per-shard circuit breakers and the resilience policy (DESIGN.md section 9).

A transient shard fault is worth a retry; a shard that has failed five
probes in a row is not — hammering it burns the deadline budget of every
request that routes there.  The classic answer is the circuit breaker
(Nygard's *Release It!* pattern, standard in production serving stacks):

* **closed** — probes flow; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the breaker
  trips: probes are refused outright (the sharded engine skips the shard
  and degrades the response) until ``reset_timeout`` has elapsed.
* **half-open** — after the timeout, a limited number of trial probes are
  let through.  One success closes the breaker; one failure re-opens it
  and restarts the timeout.

The clock is injectable (monotonic only) so tests step through the state
machine deterministically; all transitions are guarded by a lock because
probe outcomes are recorded from executor threads.

:class:`RetryPolicy` is the companion knob: bounded attempts with
exponential, *deterministically jittered* backoff (seeded stream, so a
chaos run replays exactly).  :class:`ResiliencePolicy` bundles breakers,
retry and the graceful-degradation switch into the single object
:class:`repro.core.sharding.ShardedIndex` accepts — the policy builds its
own breakers, so the core engine never has to import this module.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults import InjectedFault

__all__ = [
    "BreakerOpen",
    "CircuitBreaker",
    "RetryPolicy",
    "ResiliencePolicy",
]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerOpen(Exception):
    """A probe was refused because the target's circuit breaker is open."""

    def __init__(self, name: str, retry_after: float) -> None:
        self.name = name
        self.retry_after = max(0.0, float(retry_after))
        super().__init__(
            f"circuit breaker {name!r} is open; retry after {self.retry_after:.3f}s"
        )


class CircuitBreaker:
    """Closed/open/half-open breaker on an injectable monotonic clock."""

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, got {half_open_probes}")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0  # consecutive failures while closed
        self._opened_at = 0.0
        self._trial_in_flight = 0  # half-open probes currently outstanding
        self.opens = 0
        self.refusals = 0

    # ------------------------------------------------------------------ queries
    @property
    def state(self) -> str:
        """Current state, after applying any due open -> half-open transition."""
        with self._lock:
            self._tick_locked()
            return self._state

    def _tick_locked(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._trial_in_flight = 0

    def allow(self) -> bool:
        """May one probe proceed right now?

        In the half-open state each ``allow`` consumes one trial slot, so a
        thundering herd cannot all probe a barely-recovered target at once;
        the slot is returned by :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            self._tick_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._trial_in_flight < self.half_open_probes:
                    self._trial_in_flight += 1
                    return True
                self.refusals += 1
                return False
            self.refusals += 1
            return False

    def retry_after(self) -> float:
        """Seconds until the breaker would next admit a probe (0 if it would now)."""
        with self._lock:
            self._tick_locked()
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self.reset_timeout - (self._clock() - self._opened_at)
            )

    # ------------------------------------------------------------------ outcomes
    def record_success(self) -> None:
        """A probe succeeded: close from half-open, clear the failure run."""
        with self._lock:
            self._tick_locked()
            if self._state == HALF_OPEN:
                self._trial_in_flight = max(0, self._trial_in_flight - 1)
                self._state = CLOSED
            self._failures = 0

    def record_cancel(self) -> None:
        """A probe was abandoned (deadline ran out): return the trial slot.

        Neither a success nor a failure — the target never got to answer, so
        the breaker records no verdict and a half-open breaker keeps waiting
        for a trial that actually completes.
        """
        with self._lock:
            self._tick_locked()
            if self._state == HALF_OPEN:
                self._trial_in_flight = max(0, self._trial_in_flight - 1)

    def record_failure(self) -> None:
        """A probe failed: count toward the threshold, or re-open from half-open."""
        with self._lock:
            self._tick_locked()
            if self._state == HALF_OPEN:
                self._trial_in_flight = max(0, self._trial_in_flight - 1)
                self._trip_locked()
                return
            if self._state == OPEN:
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._failures = 0
        self._opened_at = self._clock()
        self.opens += 1

    def stats(self) -> Dict[str, object]:
        with self._lock:
            self._tick_locked()
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "refusals": self.refusals,
            }


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential, deterministically jittered backoff.

    ``backoff(attempt)`` for attempt ``0, 1, 2, ...`` returns
    ``base * 2**attempt`` capped at ``max_backoff``, multiplied by a jitter
    factor drawn uniformly from ``[1 - jitter, 1]`` out of a stream seeded
    by ``seed`` — the same seed replays the same backoff schedule, so chaos
    runs are reproducible while concurrent retries still decorrelate.
    """

    max_attempts: int = 3
    base_backoff: float = 0.005
    max_backoff: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        # A private jitter stream (object.__setattr__: the dataclass is frozen).
        object.__setattr__(self, "_stream", random.Random(self.seed))
        object.__setattr__(self, "_stream_lock", threading.Lock())

    def backoff(self, attempt: int) -> float:
        """The sleep before retry number ``attempt + 1`` (attempt counts from 0)."""
        raw = min(self.max_backoff, self.base_backoff * (2.0 ** attempt))
        with self._stream_lock:  # type: ignore[attr-defined]
            factor = 1.0 - self.jitter * self._stream.random()  # type: ignore[attr-defined]
        return raw * factor


@dataclass
class ResiliencePolicy:
    """The fault-domain configuration of a :class:`~repro.core.sharding.ShardedIndex`.

    * ``retry`` — per-probe retry budget for transient failures (None
      disables retries).
    * ``breakers=True`` — one :class:`CircuitBreaker` per shard (built by
      :meth:`build_breakers` so the core engine never imports this module);
      the breaker knobs below apply to each.
    * ``degrade=True`` — tripped, failed-out and deadline-starved shards
      are *skipped* and the response is returned explicitly partial
      (``degraded=True`` with a shard-coverage report and a conservative
      score bound) instead of erroring the whole query.  With
      ``degrade=False`` the first unrecoverable shard failure propagates.

    Only *transient* failures (see :meth:`is_transient`) are retried or
    degraded over; anything else is a bug and always raises.  ``clock`` and
    ``sleep`` are injectable for deterministic tests.
    """

    retry: Optional[RetryPolicy] = field(default_factory=RetryPolicy)
    breakers: bool = True
    failure_threshold: int = 5
    reset_timeout: float = 1.0
    half_open_probes: int = 1
    degrade: bool = True
    transient_types: Tuple[type, ...] = (TimeoutError, ConnectionError, OSError)
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    def build_breakers(self, num_shards: int) -> Optional[List[CircuitBreaker]]:
        """One breaker per shard (None when breakers are disabled)."""
        if not self.breakers:
            return None
        return [
            CircuitBreaker(
                name=f"shard-{shard}",
                failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout,
                half_open_probes=self.half_open_probes,
                clock=self.clock,
            )
            for shard in range(num_shards)
        ]

    def is_transient(self, exc: BaseException) -> bool:
        """Is this failure retryable/degradable (vs a bug that must raise)?"""
        if isinstance(exc, InjectedFault):
            return exc.transient
        return isinstance(exc, self.transient_types)

    @property
    def max_attempts(self) -> int:
        return self.retry.max_attempts if self.retry is not None else 1
