"""Open-loop load generation for the serving front end.

Open loop means arrivals follow the workload's schedule *regardless of
completions*: a request fires at its scheduled offset even if earlier ones
are still in flight, and its latency is measured from that scheduled arrival
— so queueing delay (and therefore coordinated omission) shows up in the
percentiles instead of being silently absorbed, exactly the failure mode a
closed-loop "send, wait, send" script hides.  This is the harness behind
``benchmarks/bench_serving.py`` and the ``serving-latency`` experiment.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serving.admission import AdmissionError
from repro.serving.coalescer import RequestTimeout, ServedResult, ServerClosedError
from repro.workloads.runner import latency_percentiles

__all__ = ["LoadReport", "run_open_loop"]


@dataclass
class LoadReport:
    """Outcome of one open-loop run: latencies plus the failure tallies."""

    latencies: np.ndarray  #: seconds, successful requests only, arrival order
    rejected: int
    timeouts: int
    errors: int
    elapsed_seconds: float
    #: ``(request_index, ServedResult)`` pairs when collected (oracle checks).
    responses: List[Tuple[int, ServedResult]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.latencies)

    def percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 (seconds) of the successful latencies."""
        return latency_percentiles(self.latencies)

    def as_dict(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "completed": self.completed,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
        }
        summary.update(
            {name: value * 1000.0 for name, value in self.percentiles().items()}
        )
        return summary


async def run_open_loop(
    server,
    workload,
    time_scale: float = 1.0,
    collect: bool = False,
    timeout: Optional[float] = None,
) -> LoadReport:
    """Fire the workload's requests at their scheduled offsets; gather stats.

    ``server`` is an :class:`~repro.serving.server.SDQueryServer` (the
    embedded ``submit`` path — measuring the serving tier, not the HTTP
    parser).  ``time_scale`` stretches (>1) or compresses (<1) the arrival
    schedule; ``collect=True`` keeps every response for oracle verification.
    Latency is measured from *scheduled* arrival, open-loop style.
    """
    queries = workload.reads.queries()
    offsets = np.asarray(workload.arrival_offsets, dtype=float) * float(time_scale)
    tenants = list(workload.tenants)
    latencies: List[Tuple[int, float]] = []
    responses: List[Tuple[int, ServedResult]] = []
    tallies = {"rejected": 0, "timeouts": 0, "errors": 0}
    start = time.perf_counter()

    async def fire(j: int) -> None:
        delay = offsets[j] - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        scheduled = start + offsets[j]
        query = queries[j]
        try:
            served = await server.submit(
                query.point,
                k=query.k,
                alpha=query.weights.alpha,
                beta=query.weights.beta,
                tenant=tenants[j % len(tenants)] if tenants else "default",
                timeout=timeout,
            )
        except AdmissionError:
            tallies["rejected"] += 1
            return
        except RequestTimeout:
            tallies["timeouts"] += 1
            return
        except ServerClosedError:
            tallies["errors"] += 1
            return
        latencies.append((j, time.perf_counter() - scheduled))
        if collect:
            responses.append((j, served))

    await asyncio.gather(*(fire(j) for j in range(len(queries))))
    elapsed = time.perf_counter() - start
    latencies.sort(key=lambda pair: pair[0])
    return LoadReport(
        latencies=np.asarray([lat for _j, lat in latencies], dtype=float),
        rejected=tallies["rejected"],
        timeouts=tallies["timeouts"],
        errors=tallies["errors"],
        elapsed_seconds=elapsed,
        responses=responses,
    )
