"""Open-loop load generation for the serving front end.

Open loop means arrivals follow the workload's schedule *regardless of
completions*: a request fires at its scheduled offset even if earlier ones
are still in flight, and its latency is measured from that scheduled arrival
— so queueing delay (and therefore coordinated omission) shows up in the
percentiles instead of being silently absorbed, exactly the failure mode a
closed-loop "send, wait, send" script hides.  This is the harness behind
``benchmarks/bench_serving.py`` and the ``serving-latency`` experiment.

Every fired request lands in exactly one outcome bucket (``ok``,
``degraded``, ``timeout``, ``rejected``, ``error``), and the report keeps
the explicit denominator ``issued`` — so availability is a real fraction
with a visible denominator, never "whatever did not get dropped".
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.serving.admission import AdmissionError
from repro.serving.coalescer import RequestTimeout, ServedResult, ServerClosedError
from repro.workloads.runner import latency_percentiles

__all__ = ["LoadReport", "run_open_loop"]

#: The outcome buckets a fired request lands in, exactly one each:
#: ``ok`` (complete answer), ``degraded`` (explicitly partial answer),
#: ``timeout`` (RequestTimeout), ``rejected`` (admission), ``error``
#: (anything else, including a closed server).
OUTCOMES = ("ok", "degraded", "timeout", "rejected", "error")


@dataclass
class LoadReport:
    """Outcome of one open-loop run: latencies plus per-outcome tallies."""

    latencies: np.ndarray  #: seconds, answered requests only, arrival order
    outcomes: Dict[str, int]  #: per-outcome counts (see :data:`OUTCOMES`)
    issued: int  #: the denominator: every request the run fired
    elapsed_seconds: float
    #: ``(request_index, ServedResult)`` pairs when collected (oracle checks).
    responses: List[Tuple[int, ServedResult]] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Requests that got an answer back (complete or degraded)."""
        return len(self.latencies)

    @property
    def rejected(self) -> int:
        return self.outcomes.get("rejected", 0)

    @property
    def timeouts(self) -> int:
        return self.outcomes.get("timeout", 0)

    @property
    def errors(self) -> int:
        return self.outcomes.get("error", 0)

    @property
    def degraded(self) -> int:
        return self.outcomes.get("degraded", 0)

    @property
    def availability(self) -> float:
        """Fraction of issued requests that got *an* answer (ok or degraded).

        Degraded answers count as available — that is the whole point of
        graceful degradation — but they are tallied separately, so a gate
        can also bound how partial the service got.
        """
        if self.issued == 0:
            return 1.0
        return (self.outcomes.get("ok", 0) + self.outcomes.get("degraded", 0)) / (
            self.issued
        )

    def percentiles(self) -> Dict[str, float]:
        """p50/p95/p99 (seconds) of the answered-request latencies."""
        return latency_percentiles(self.latencies)

    def as_dict(self) -> Dict[str, Any]:
        summary: Dict[str, Any] = {
            "issued": self.issued,
            "completed": self.completed,
            "outcomes": {name: self.outcomes.get(name, 0) for name in OUTCOMES},
            "availability": self.availability,
            # Legacy flat keys, kept so existing reports keep reading.
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "elapsed_seconds": self.elapsed_seconds,
        }
        summary.update(
            {name: value * 1000.0 for name, value in self.percentiles().items()}
        )
        return summary


async def run_open_loop(
    server,
    workload,
    time_scale: float = 1.0,
    collect: bool = False,
    timeout: Optional[float] = None,
) -> LoadReport:
    """Fire the workload's requests at their scheduled offsets; gather stats.

    ``server`` is an :class:`~repro.serving.server.SDQueryServer` (the
    embedded ``submit`` path — measuring the serving tier, not the HTTP
    parser).  ``time_scale`` stretches (>1) or compresses (<1) the arrival
    schedule; ``collect=True`` keeps every response for oracle verification.
    Latency is measured from *scheduled* arrival, open-loop style.

    Every request is accounted for exactly once: answered requests split
    into ``ok`` versus ``degraded``, failures into ``timeout`` /
    ``rejected`` / ``error`` — an unexpected exception is *counted* (and
    remembered) rather than silently folded into dropped samples, but it is
    not swallowed: the first one is re-raised after the run completes so a
    bug cannot hide inside an availability number.
    """
    queries = workload.reads.queries()
    offsets = np.asarray(workload.arrival_offsets, dtype=float) * float(time_scale)
    tenants = list(workload.tenants)
    latencies: List[Tuple[int, float]] = []
    responses: List[Tuple[int, ServedResult]] = []
    outcomes = {name: 0 for name in OUTCOMES}
    unexpected: List[BaseException] = []
    start = time.perf_counter()

    async def fire(j: int) -> None:
        delay = offsets[j] - (time.perf_counter() - start)
        if delay > 0:
            await asyncio.sleep(delay)
        scheduled = start + offsets[j]
        query = queries[j]
        try:
            served = await server.submit(
                query.point,
                k=query.k,
                alpha=query.weights.alpha,
                beta=query.weights.beta,
                tenant=tenants[j % len(tenants)] if tenants else "default",
                timeout=timeout,
            )
        except AdmissionError:
            outcomes["rejected"] += 1
            return
        except RequestTimeout:
            outcomes["timeout"] += 1
            return
        except ServerClosedError:
            outcomes["error"] += 1
            return
        except Exception as exc:  # noqa: BLE001 - tallied, then re-raised
            outcomes["error"] += 1
            unexpected.append(exc)
            return
        outcomes["degraded" if served.result.degraded else "ok"] += 1
        latencies.append((j, time.perf_counter() - scheduled))
        if collect:
            responses.append((j, served))

    await asyncio.gather(*(fire(j) for j in range(len(queries))))
    elapsed = time.perf_counter() - start
    if unexpected:
        raise unexpected[0]
    latencies.sort(key=lambda pair: pair[0])
    return LoadReport(
        latencies=np.asarray([lat for _j, lat in latencies], dtype=float),
        outcomes=outcomes,
        issued=len(queries),
        elapsed_seconds=elapsed,
        responses=responses,
    )
