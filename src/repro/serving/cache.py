"""Epoch-keyed result cache for the serving front end (DESIGN.md section 8).

The cache stores fully materialized :class:`repro.core.results.TopKResult`
objects under ``(query_key, epoch_key)``.  The epoch component is the pinned
snapshot's version (PR 4's epoch subsystem), so *every* epoch publication —
insert, delete, bulk patch, rebalance, reflatten — invalidates the whole
cache naturally: the next flush pins the new epoch, its lookups miss, and
the stale entries age out of the LRU ring with zero coordination.  No
listener, no generation counter, no explicit flush anywhere in the write
path.

Entries are treated as immutable by every consumer (the coalescer hands the
same ``TopKResult`` to all requesters of an identical query).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

__all__ = ["ResultCache"]


class ResultCache:
    """A bounded LRU map of ``(query_key, epoch_key) -> TopKResult``.

    Not thread-safe by design: the coalescer reads and fills it only inside
    its batch worker (a single-thread executor), under the same epoch pin
    that serves the misses — which is exactly what makes the epoch keying
    airtight.  The loop thread only reads the integer counters for stats.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Tuple[Hashable, Hashable], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected_degraded = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, query_key: Hashable, epoch_key: Hashable) -> Optional[Any]:
        """The cached result for this query at this epoch, or None."""
        entry = self._entries.get((query_key, epoch_key))
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end((query_key, epoch_key))
        self.hits += 1
        return entry

    def put(self, query_key: Hashable, epoch_key: Hashable, result: Any) -> None:
        """Remember ``result`` for this query at this epoch (LRU-evicting).

        Degraded (explicitly partial) results are refused: a cached entry
        outlives the fault that degraded it, and the epoch key does not
        change when a shard recovers — so caching one would keep serving a
        partial answer at a fully healthy epoch.  The coalescer already
        skips them; this guard keeps the invariant local to the cache.
        """
        if getattr(result, "degraded", False):
            self.rejected_degraded += 1
            return
        key = (query_key, epoch_key)
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self, reset_counters: bool = True) -> None:
        """Drop every entry; by default also zero the lifetime counters.

        An explicit clear starts a new observation window, so ``stats()``
        reporting hits/misses/evictions accumulated *before* the clear would
        misattribute them to the fresh cache (the bug this default fixes).
        Pass ``reset_counters=False`` to keep the lifetime tallies — e.g.
        when clearing only to bound memory mid-run.
        """
        self._entries.clear()
        if reset_counters:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.rejected_degraded = 0

    def stats(self) -> Dict[str, int]:
        """Counters for monitoring and the benchmark report."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected_degraded": self.rejected_degraded,
        }
