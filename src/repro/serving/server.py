"""The asyncio serving front end: HTTP in, coalesced epoch-pinned batches out.

:class:`SDQueryServer` turns the SD-Index library into a service (the
ROADMAP's "millions of users" direction; the layered app/api split of the
Paper-Scanner exemplar): a stdlib-``asyncio`` TCP server speaking a minimal
HTTP/1.1 + JSON protocol, with every request flowing

    admission (per-tenant token bucket + in-flight cap, 429 on reject)
      -> coalescer (tick micro-batching onto one pinned epoch snapshot)
        -> (query, epoch) result cache -> batch kernels -> per-request JSON

No dependency beyond the standard library is introduced; the protocol is
deliberately small (``POST /query``, ``GET /stats``, ``GET /healthz``) and
self-describing.  The same ``submit()`` path is exposed directly for
embedded use — the benchmark and the property tests drive it without
sockets, so the serving semantics are testable independently of HTTP.

Responses carry the pinned epoch's version and the coalesced batch size, so
a client (or an oracle in a test) can verify exactly which population its
answer was computed against.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.deadline import NO_TIMEOUT
from repro.core.query import SDQuery
from repro.serving.admission import AdmissionController, AdmissionError
from repro.serving.cache import ResultCache
from repro.serving.coalescer import (
    RequestTimeout,
    ServedResult,
    ServerClosedError,
    TickCoalescer,
)

__all__ = ["ServingConfig", "SDQueryServer", "ServingClient"]

_MAX_REQUEST_BYTES = 1 << 20  # a top-k request is tiny; anything bigger is abuse


@dataclass
class ServingConfig:
    """Knobs of the serving front end (defaults suit the benchmarks)."""

    tick_seconds: Optional[float] = 0.002  #: coalescing window (None = manual)
    max_batch: int = 64  #: flush early once this many requests queue
    coalesce: bool = True  #: False = per-request baseline (bench control arm)
    cache_capacity: Optional[int] = 2048  #: None disables the result cache
    request_timeout: Optional[float] = 2.0  #: default per-request deadline
    rate: Optional[float] = None  #: per-tenant sustained requests/second
    burst: Optional[float] = None  #: per-tenant burst (defaults to ``rate``)
    max_in_flight: Optional[int] = None  #: per-tenant concurrent requests
    default_k: int = 10  #: ``k`` when the request omits it
    max_k: int = 1000  #: reject absurd ``k`` before it reaches the kernels
    backend: str = "thread"  #: "thread" serves the index as-is; "process"
    #: wraps a ShardedIndex in a ProcessShardedIndex (one worker process per
    #: shard over mmap'd snapshots) that the server owns and closes.
    data_dir: Optional[str] = None  #: snapshot/WAL dir for backend="process"
    #: (None = private tempdir, removed on close)


def _format_retry_after(seconds: float) -> str:
    """``Retry-After`` header value: the bucket's actual refill time rounded
    **up** at millisecond granularity, so a client sleeping exactly the header
    value is never rejected again by the same bucket (``%.3f`` alone rounds to
    *nearest* and could understate the wait by half a millisecond)."""
    return f"{math.ceil(max(0.0, float(seconds)) * 1000.0) / 1000.0:.3f}"


class SDQueryServer:
    """Serve top-k SD-Queries over HTTP with micro-batching and admission.

    ``index`` is an :class:`~repro.core.sdindex.SDIndex` or
    :class:`~repro.core.sharding.ShardedIndex` (anything with dimension
    roles and an epoch-pinning ``snapshot()``).  Use as an async context
    manager, or call :meth:`start` / :meth:`close` explicitly.
    """

    def __init__(self, index, config: Optional[ServingConfig] = None) -> None:
        self.config = config or ServingConfig()
        self._owned_engine = None
        if self.config.backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {self.config.backend!r}"
            )
        if self.config.backend == "process":
            # Local import: the serving layer stays importable without the
            # multiprocessing machinery, and "thread" servers never pay for it.
            from repro.core.procserving import ProcessShardedIndex
            from repro.core.sharding import ShardedIndex

            if not isinstance(index, ProcessShardedIndex):
                if not isinstance(index, ShardedIndex):
                    raise TypeError(
                        "backend='process' requires a ShardedIndex (or an "
                        f"already-built ProcessShardedIndex), got {type(index).__name__}"
                    )
                index = ProcessShardedIndex.from_engine(
                    index, path=self.config.data_dir
                )
                self._owned_engine = index
        self.index = index
        cache = (
            ResultCache(self.config.cache_capacity)
            if self.config.cache_capacity
            else None
        )
        self.admission = AdmissionController(
            rate=self.config.rate,
            burst=self.config.burst,
            max_in_flight=self.config.max_in_flight,
        )
        self.coalescer = TickCoalescer(
            index,
            tick_seconds=self.config.tick_seconds,
            max_batch=self.config.max_batch,
            cache=cache,
            coalesce=self.config.coalesce,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections = 0
        self._closed = False

    # -------------------------------------------------------------- lifecycle
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the HTTP listener; returns ``(host, port)`` (0 = ephemeral)."""
        if self._closed:
            raise ServerClosedError("server closed")
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("server not started")
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def close(self) -> None:
        """Stop accepting, finish the in-flight batch, release every pin."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.coalescer.close()
        if self._owned_engine is not None:
            self._owned_engine.close()
            self._owned_engine = None

    async def __aenter__(self) -> "SDQueryServer":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------- embedded API
    async def submit(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        alpha: Optional[Sequence[float]] = None,
        beta: Optional[Sequence[float]] = None,
        tenant: str = "default",
        timeout=None,
    ) -> ServedResult:
        """Admit, coalesce and answer one query (the sans-HTTP entry point).

        ``timeout=None`` means "use the configured default"
        (``config.request_timeout``); pass the
        :data:`~repro.core.deadline.NO_TIMEOUT` sentinel to wait unbounded
        even on a server with a default deadline — ``None`` used to shadow
        that case silently.  Raises :class:`AdmissionError` (rejected),
        :class:`RequestTimeout` (deadline elapsed) or
        :class:`ServerClosedError`.
        """
        query = self._coerce(point, k, alpha, beta)
        self.admission.admit(tenant)
        try:
            if timeout is NO_TIMEOUT:
                deadline = None
            elif timeout is None:
                deadline = self.config.request_timeout
            else:
                deadline = float(timeout)
            return await self.coalescer.submit(query, timeout=deadline)
        finally:
            self.admission.release(tenant)

    def _coerce(self, point, k, alpha, beta) -> SDQuery:
        k = int(k) if k is not None else self.config.default_k
        if not 1 <= k <= self.config.max_k:
            raise ValueError(f"k must be in [1, {self.config.max_k}], got {k}")
        return SDQuery.simple(
            point=point,
            repulsive=self.index.repulsive,
            attractive=self.index.attractive,
            k=k,
            alpha=alpha,
            beta=beta,
        )

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Any]:
        return {
            "engine": type(self.index).__name__,
            "num_rows": len(self.index),
            "connections": self._connections,
            "admission": self.admission.stats(),
            "coalescer": self.coalescer.stats(),
        }

    # ------------------------------------------------------------------- HTTP
    async def _handle_connection(self, reader, writer) -> None:
        self._connections += 1
        try:
            while True:
                request = await _read_http_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive") != "close"
                status, payload = await self._dispatch(method, path, headers, body)
                extra = {}
                if status == 429 and "retry_after" in payload:
                    extra["Retry-After"] = _format_retry_after(payload["retry_after"])
                writer.write(_http_response(status, payload, keep_alive, extra))
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            _BadRequest,
        ) as exc:
            if isinstance(exc, _BadRequest) and not writer.is_closing():
                writer.write(_http_response(400, {"error": str(exc)}, False))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, asyncio.CancelledError):
                # All the work is done; being cancelled here means the loop
                # is tearing down mid-close — finishing quietly is correct,
                # re-raising only litters shutdown with spurious tracebacks.
                pass

    async def _dispatch(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}
        if method == "GET" and path == "/stats":
            return 200, self.stats()
        if method == "POST" and path == "/query":
            return await self._handle_query(headers, body)
        return 404, {"error": f"no route for {method} {path}"}

    async def _handle_query(
        self, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            point = payload["point"]
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            return 400, {"error": f"malformed query request: {exc}"}
        tenant = str(payload.get("tenant") or headers.get("x-tenant") or "default")
        # Over the wire, an *explicit* JSON ``"timeout": null`` asks for an
        # unbounded wait (the NO_TIMEOUT sentinel); omitting the field keeps
        # the server's configured default.
        if "timeout" in payload and payload["timeout"] is None:
            timeout = NO_TIMEOUT
        else:
            timeout = payload.get("timeout")
        try:
            served = await self.submit(
                point,
                k=payload.get("k"),
                alpha=payload.get("alpha"),
                beta=payload.get("beta"),
                tenant=tenant,
                timeout=timeout,
            )
        except AdmissionError as exc:
            return 429, {
                "error": str(exc),
                "reason": exc.reason,
                "retry_after": exc.retry_after,
            }
        except RequestTimeout as exc:
            return 504, {"error": str(exc), "timeout": exc.timeout}
        except ServerClosedError as exc:
            return 503, {"error": str(exc)}
        except (TypeError, ValueError) as exc:
            return 400, {"error": f"invalid query: {exc}"}
        return 200, _result_payload(served)


def _result_payload(served: ServedResult) -> Dict[str, Any]:
    # json round-trips Python floats exactly (repr), so scores stay
    # bit-identical through the wire — the oracle tests rely on it.
    epoch = served.epoch
    payload = {
        "row_ids": [match.row_id for match in served.result.matches],
        "scores": [match.score for match in served.result.matches],
        "epoch": list(epoch) if isinstance(epoch, tuple) else epoch,
        "batch_size": served.batch_size,
        "cached": served.cached,
        "candidates_examined": served.result.candidates_examined,
        "degraded": served.result.degraded,
    }
    if served.result.coverage is not None:
        payload["coverage"] = served.result.coverage.as_dict()
    return payload


# --------------------------------------------------------------- HTTP plumbing
class _BadRequest(Exception):
    """The peer sent bytes that do not parse as an HTTP request."""


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _http_response(
    status: int,
    payload: Dict[str, Any],
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


async def _read_http_request(reader):
    """Parse one request; None on clean EOF, :class:`_BadRequest` on garbage."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("ascii", "replace").split()
    if len(parts) < 3 or not parts[2].startswith("HTTP/"):
        raise _BadRequest(f"malformed request line: {line[:80]!r}")
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise _BadRequest("connection closed inside headers")
        name, sep, value = raw.decode("ascii", "replace").partition(":")
        if not sep:
            raise _BadRequest(f"malformed header line: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0) or 0)
    if not 0 <= length <= _MAX_REQUEST_BYTES:
        raise _BadRequest(f"unreasonable content-length: {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class ServingClient:
    """A tiny keep-alive HTTP client for the demo, load scripts and tests."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> "ServingClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionResetError:
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "ServingClient":
        return await self.connect()

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    async def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One round trip; returns ``(status, decoded_json)``."""
        status, _headers, decoded = await self.request_full(method, path, payload)
        return status, decoded

    async def request_full(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        """One round trip; returns ``(status, headers, decoded_json)`` with
        header names lower-cased (for tests that assert on ``Retry-After``)."""
        if self._writer is None:
            await self.connect()
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Content-Type: application/json\r\n\r\n"
        ).encode("ascii")
        self._writer.write(head + body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionResetError("server closed the connection")
        status = int(status_line.split()[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await self._reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("ascii", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        blob = await self._reader.readexactly(length) if length else b""
        decoded = json.loads(blob.decode("utf-8")) if blob else {}
        return status, headers, decoded

    async def query(
        self,
        point: Sequence[float],
        k: Optional[int] = None,
        alpha: Optional[Sequence[float]] = None,
        beta: Optional[Sequence[float]] = None,
        tenant: Optional[str] = None,
        timeout=None,
    ) -> Tuple[int, Dict[str, Any]]:
        """POST one top-k query; returns ``(status, response_json)``.

        ``timeout=None`` omits the field (server default applies);
        ``timeout=NO_TIMEOUT`` sends an explicit JSON null, asking the
        server for an unbounded wait.
        """
        payload: Dict[str, Any] = {"point": list(map(float, point))}
        if k is not None:
            payload["k"] = int(k)
        if alpha is not None:
            payload["alpha"] = list(map(float, alpha))
        if beta is not None:
            payload["beta"] = list(map(float, beta))
        if tenant is not None:
            payload["tenant"] = tenant
        if timeout is NO_TIMEOUT:
            payload["timeout"] = None
        elif timeout is not None:
            payload["timeout"] = float(timeout)
        return await self.request("POST", "/query", payload)
