"""Tick-based request coalescing over epoch-pinned batch queries (DESIGN.md §8).

The batch engine answers ~100 queries for little more than the cost of one
(BENCH_batch.json), but a serving front end receives *single* queries, each
on its own connection.  The coalescer closes that gap: requests arriving
within one tick are merged into a single ``batch_query`` call against one
pinned epoch snapshot, and every requester gets its own per-query
:class:`~repro.core.results.TopKResult` back — bit-identical to what a
sequential scan over the pinned population would return, with the engine's
deterministic ``(-score, row_id)`` tie-break.

Lifecycle of one batch (the pin discipline is the whole point):

* Requests enqueue a future and wake the drainer; the drainer waits one
  tick (letting the batch fill, up to ``max_batch``) and drains.
* The batch is served by a worker function that **pins a snapshot, runs the
  kernels and releases the pin entirely inside the executor thread** — a
  synchronous, uncancellable scope.  Request timeouts cancel only the
  requester's future; the epoch pin cannot be stranded by any asyncio
  cancellation, because no ``await`` ever sits between pin and release.
* Cache lookups key on ``(query_key, epoch_key)`` and happen inside the
  worker under the same pin that serves the misses, so a cached entry is
  never served across an epoch publication (see :mod:`repro.serving.cache`).

``coalesce=False`` degrades to the per-request baseline (every submit is
its own batch of one) while keeping the identical pin/cache/timeout
machinery — that is the control arm ``benchmarks/bench_serving.py`` measures
against.
"""

from __future__ import annotations

import asyncio
from collections import Counter, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Deque, Dict, Hashable, List, Optional, Tuple

from repro import faults
from repro.core.deadline import Deadline, DeadlineExceeded
from repro.core.query import SDQuery
from repro.core.results import TopKResult
from repro.serving.cache import ResultCache

__all__ = [
    "RequestTimeout",
    "ServerClosedError",
    "ServedResult",
    "TickCoalescer",
    "query_key",
]

#: Fault point at the head of every batch-worker flush, before the epoch pin
#: — an injected raise fails the whole batch without ever stranding a pin.
_FP_FLUSH = faults.declare_fault_point(
    "coalescer.flush", "batch worker about to pin and serve one coalesced batch"
)

#: Bounded batch members share one kernel run only while their remaining
#: budgets sit within this factor of the group's tightest member.  Every run
#: executes under the group's *minimum* deadline, so without the split a
#: 5 ms request coalesced behind 2 s requests would force the whole batch to
#: stop at 5 ms; beyond the spread the batch splits instead.
_DEADLINE_SPREAD = 4.0


class RequestTimeout(Exception):
    """The per-request deadline elapsed before its batch was served."""

    def __init__(self, timeout: float) -> None:
        self.timeout = float(timeout)
        super().__init__(f"request timed out after {timeout:.3f}s")


class ServerClosedError(Exception):
    """The front end is shut down; no further requests are served."""


@dataclass
class ServedResult:
    """One request's answer plus the serving metadata the response reports."""

    result: TopKResult
    epoch: Hashable  #: version (or sharded version tuple) of the pinned epoch
    batch_size: int  #: how many requests shared this coalesced batch
    cached: bool  #: served from the (query, epoch) cache without kernel work

    @property
    def degraded(self) -> bool:
        """True when the answer is explicitly partial (see ``result.coverage``)."""
        return self.result.degraded


def query_key(query: SDQuery) -> Tuple:
    """A hashable identity for caching: point, roles, k and exact weights."""
    return (
        query.point,
        query.repulsive,
        query.attractive,
        query.k,
        query.weights.alpha,
        query.weights.beta,
    )


def _epoch_key(snapshot) -> Hashable:
    """The pinned snapshot's epoch identity (sharded cuts are version tuples)."""
    versions = getattr(snapshot, "versions", None)
    if versions is not None:
        return (snapshot.topology_version,) + tuple(versions)
    return snapshot.version


@dataclass
class _Pending:
    query: SDQuery
    key: Tuple
    future: "asyncio.Future[ServedResult]"
    deadline: Optional[Deadline] = None


class TickCoalescer:
    """Micro-batches concurrent single queries into epoch-pinned batch calls.

    ``index`` is any engine whose ``snapshot()`` returns a pinned view with
    ``batch_query(list_of_SDQuery)`` (:class:`~repro.core.sdindex.SDIndex`
    and :class:`~repro.core.sharding.ShardedIndex` both qualify).

    ``tick_seconds`` controls the coalescing window: ``0`` serves as soon as
    the loop allows (still coalescing whatever queued during the previous
    batch), a positive tick holds the batch open that long, and ``None``
    disables the drainer entirely — tests then drive :meth:`flush` by hand
    for deterministic interleavings.
    """

    def __init__(
        self,
        index,
        tick_seconds: Optional[float] = 0.002,
        max_batch: int = 64,
        cache: Optional[ResultCache] = None,
        coalesce: bool = True,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        if tick_seconds is not None and tick_seconds < 0:
            raise ValueError(f"tick_seconds must be >= 0, got {tick_seconds}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._index = index
        self._tick = tick_seconds
        self._max_batch = int(max_batch)
        self.cache = cache
        self._coalesce = bool(coalesce)
        self._executor = executor
        self._owns_executor = executor is None
        self._pending: Deque[_Pending] = deque()
        self._wake: Optional[asyncio.Event] = None
        self._drainer: Optional[asyncio.Task] = None
        self._closed = False
        # ---- counters (monitoring + the benchmark's histogram report)
        self.submitted = 0
        self.served = 0
        self.timeouts = 0
        self.errors = 0
        self.degraded_served = 0
        self.batch_sizes: Counter = Counter()

    # ------------------------------------------------------------- lifecycle
    def _ensure_started(self) -> None:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serving-batch"
            )
        if self._wake is None:
            self._wake = asyncio.Event()
        if (
            self._coalesce
            and self._tick is not None
            and (self._drainer is None or self._drainer.done())
        ):
            self._drainer = asyncio.get_running_loop().create_task(self._drain())

    async def close(self) -> None:
        """Stop serving: finish the in-flight batch, fail everything queued.

        Idempotent.  After close every queued and future :meth:`submit`
        raises :class:`ServerClosedError`, and no epoch pins remain (the
        worker scope released them; nothing else ever held one).
        """
        if self._closed:
            return
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._drainer is not None:
            await self._drainer
            self._drainer = None
        while self._pending:
            item = self._pending.popleft()
            if not item.future.done():
                item.future.set_exception(ServerClosedError("serving front end closed"))
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def backlog(self) -> int:
        """Requests currently waiting for a batch."""
        return len(self._pending)

    # --------------------------------------------------------------- serving
    async def submit(
        self, query: SDQuery, timeout: Optional[float] = None
    ) -> ServedResult:
        """Queue one query and await its coalesced answer.

        ``timeout`` bounds the wait; on expiry the request's future is
        cancelled (its batch slot is simply skipped at delivery) and
        :class:`RequestTimeout` is raised.  The pinned epoch is unaffected —
        the batch worker owns it, not the requester.

        The timeout is also carried into the batch as a :class:`Deadline`
        budget: engines that support it stop the kernel work cooperatively
        (degrading the answer, or raising — which comes back here as
        :class:`RequestTimeout`) instead of burning executor time on an
        answer nobody is waiting for.  Each kernel run executes under the
        **minimum** remaining budget of the members it serves — the drained
        batch splits into deadline groups first (see :meth:`_serve_batch`),
        so a tight deadline neither overruns waiting for patient peers nor
        starves them of their own budget.
        """
        if self._closed:
            raise ServerClosedError("serving front end closed")
        self._ensure_started()
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ServedResult]" = loop.create_future()
        item = _Pending(
            query=query,
            key=query_key(query),
            future=future,
            deadline=Deadline.after(timeout),
        )
        self.submitted += 1
        if not self._coalesce:
            # Per-request baseline: a batch of one through the same machinery.
            await self._serve_batch([item])
            return future.result()
        self._pending.append(item)
        self._wake.set()
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.timeouts += 1
            raise RequestTimeout(timeout) from None

    async def flush(self) -> int:
        """Serve every queued request now (manual-tick mode); returns count."""
        if self._closed:
            raise ServerClosedError("serving front end closed")
        self._ensure_started()
        flushed = 0
        while self._pending:
            batch = self._drain_batch()
            flushed += len(batch)
            await self._serve_batch(batch)
        return flushed

    # ------------------------------------------------------------- internals
    def _drain_batch(self) -> List[_Pending]:
        batch: List[_Pending] = []
        while self._pending and len(batch) < self._max_batch:
            batch.append(self._pending.popleft())
        return batch

    async def _drain(self) -> None:
        """The single drainer task: tick, drain, serve, repeat."""
        while not self._closed:
            await self._wake.wait()
            self._wake.clear()
            while self._pending and not self._closed:
                if self._tick and len(self._pending) < self._max_batch:
                    await asyncio.sleep(self._tick)
                batch = self._drain_batch()
                if batch:
                    await self._serve_batch(batch)

    async def _serve_batch(self, batch: List[_Pending]) -> None:
        """Serve one coalesced batch; delivery never raises out of the drainer.

        Heterogeneous deadlines split the batch: every kernel run executes
        under the **minimum** deadline of its members, so a tight-timeout
        request coalesced behind lax ones can never overrun its own budget
        waiting for peers (the old policy ran the whole batch under the most
        patient member).  Members are grouped by remaining budget (within a
        :data:`_DEADLINE_SPREAD` factor of the group's tightest member, so
        one impatient request cannot starve a patient one of its full
        budget), and when a group's run stops at its anchor's deadline the
        members that still have budget of their own are re-served in a
        following pass instead of being timed out with it.
        """
        pending = list(batch)
        while pending:
            groups = self._deadline_groups(pending)
            pending = []
            for group, group_deadline in groups:
                pending.extend(await self._serve_group(group, group_deadline))

    @staticmethod
    def _deadline_groups(
        batch: List[_Pending],
    ) -> List[Tuple[List[_Pending], Optional[Deadline]]]:
        """Partition by deadline: unbounded members together, bounded members
        into runs of comparable remaining budget, each anchored (served) at
        its *minimum* member deadline."""
        unbounded = [item for item in batch if item.deadline is None]
        bounded = sorted(
            (item for item in batch if item.deadline is not None),
            key=lambda item: item.deadline.remaining(),
        )
        groups: List[Tuple[List[_Pending], Optional[Deadline]]] = []
        if unbounded:
            groups.append((unbounded, None))
        start = 0
        while start < len(bounded):
            anchor = bounded[start].deadline
            limit = max(anchor.remaining(), 1e-9) * _DEADLINE_SPREAD
            end = start + 1
            while end < len(bounded) and bounded[end].deadline.remaining() <= limit:
                end += 1
            groups.append((bounded[start:end], anchor))
            start = end
        return groups

    async def _serve_group(
        self, batch: List[_Pending], batch_deadline: Optional[Deadline]
    ) -> List[_Pending]:
        """Run one deadline-homogeneous group; returns the members to re-serve
        (still-solvent requests whose group run stopped at the anchor's
        deadline)."""
        loop = asyncio.get_running_loop()
        queries = [item.query for item in batch]
        cache = self.cache

        def run_pinned() -> Tuple[Hashable, Dict[int, Any], List[Optional[TopKResult]]]:
            # Pin -> (cache-partition) -> kernels -> release, all inside this
            # synchronous scope: no await between pin and release exists, so
            # no cancellation can strand the epoch.  The cache is only read
            # and written under the pin, keyed by the pinned epoch, so a
            # publication between batches naturally misses.
            faults.fire(_FP_FLUSH)
            snapshot = self._index.snapshot()
            try:
                epoch = _epoch_key(snapshot)
                from_cache: List[Optional[TopKResult]] = [None] * len(batch)
                misses: List[int] = []
                if cache is not None:
                    for j, item in enumerate(batch):
                        hit = cache.get(item.key, epoch)
                        if hit is None:
                            misses.append(j)
                        else:
                            from_cache[j] = hit
                else:
                    misses = list(range(len(batch)))
                fresh: Dict[int, Any] = {}
                if misses:
                    kwargs: Dict[str, Any] = {}
                    if batch_deadline is not None and getattr(
                        snapshot, "supports_deadline", False
                    ):
                        kwargs["deadline"] = batch_deadline
                    computed = snapshot.batch_query(
                        [queries[j] for j in misses], **kwargs
                    )
                    for j, result in zip(misses, computed.results):
                        fresh[j] = result
                        # Degraded answers are one fault story's artifact —
                        # never cache them, or one storm would keep serving
                        # partial answers long after the shards recovered.
                        if cache is not None and not result.degraded:
                            cache.put(batch[j].key, epoch, result)
                return epoch, fresh, from_cache
            finally:
                snapshot.close()

        try:
            epoch, fresh, from_cache = await loop.run_in_executor(
                self._executor, run_pinned
            )
        except DeadlineExceeded as exc:
            # The engine stopped cooperatively at the group's *anchor*
            # deadline.  That is a timeout only for members whose own budget
            # is spent; members still solvent go back to the worklist for a
            # re-serve under their own (later) anchor.  Progress is
            # guaranteed: the anchor itself is never re-served.
            survivors: List[_Pending] = []
            for item in batch:
                if item.future.done():
                    continue
                if (
                    batch_deadline is not None
                    and item.deadline is not None
                    and item.deadline is not batch_deadline
                    and not item.deadline.expired
                ):
                    survivors.append(item)
                    continue
                self.timeouts += 1
                item.future.set_exception(RequestTimeout(exc.budget))
            return survivors
        except Exception as exc:  # deliver the failure to every requester
            self.errors += 1
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return []
        self.batch_sizes[len(batch)] += 1
        for j, item in enumerate(batch):
            if item.future.done():  # timed out / cancelled while batched
                continue
            result = from_cache[j]
            cached = result is not None
            if not cached:
                result = fresh[j]
            if result.degraded:
                self.degraded_served += 1
            item.future.set_result(
                ServedResult(
                    result=result,
                    epoch=epoch,
                    batch_size=len(batch),
                    cached=cached,
                )
            )
            self.served += 1
        return []

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "submitted": self.submitted,
            "served": self.served,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "degraded_served": self.degraded_served,
            "backlog": len(self._pending),
            "batch_size_histogram": {
                str(size): count for size, count in sorted(self.batch_sizes.items())
            },
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats
