"""Async coalescing serving front end over the epoch-snapshot engine.

See DESIGN.md section 8 for the tick/coalesce/pin lifecycle, section 9 for
the failure model (fault plane, deadlines, circuit breakers, graceful
degradation) and the admission + cache rules; ``examples/quickstart.py``
has a runnable demo.
"""

from repro.core.deadline import NO_TIMEOUT, Deadline, DeadlineExceeded
from repro.serving.admission import AdmissionController, AdmissionError, TokenBucket
from repro.serving.breaker import (
    BreakerOpen,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.serving.cache import ResultCache
from repro.serving.coalescer import (
    RequestTimeout,
    ServedResult,
    ServerClosedError,
    TickCoalescer,
    query_key,
)
from repro.serving.loadgen import LoadReport, run_open_loop
from repro.serving.server import SDQueryServer, ServingClient, ServingConfig

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "TokenBucket",
    "BreakerOpen",
    "CircuitBreaker",
    "ResiliencePolicy",
    "RetryPolicy",
    "NO_TIMEOUT",
    "Deadline",
    "DeadlineExceeded",
    "ResultCache",
    "RequestTimeout",
    "ServedResult",
    "ServerClosedError",
    "TickCoalescer",
    "query_key",
    "LoadReport",
    "run_open_loop",
    "SDQueryServer",
    "ServingClient",
    "ServingConfig",
]
