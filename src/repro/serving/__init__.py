"""Async coalescing serving front end over the epoch-snapshot engine.

See DESIGN.md section 8 for the tick/coalesce/pin lifecycle and the
admission + cache rules; ``examples/quickstart.py`` has a runnable demo.
"""

from repro.serving.admission import AdmissionController, AdmissionError, TokenBucket
from repro.serving.cache import ResultCache
from repro.serving.coalescer import (
    RequestTimeout,
    ServedResult,
    ServerClosedError,
    TickCoalescer,
    query_key,
)
from repro.serving.loadgen import LoadReport, run_open_loop
from repro.serving.server import SDQueryServer, ServingClient, ServingConfig

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "TokenBucket",
    "ResultCache",
    "RequestTimeout",
    "ServedResult",
    "ServerClosedError",
    "TickCoalescer",
    "query_key",
    "LoadReport",
    "run_open_loop",
    "SDQueryServer",
    "ServingClient",
    "ServingConfig",
]
