"""Timing harness: run a workload through an algorithm and record statistics.

Also the home of the durable-script helpers: a long ``concurrent_serving``
update script applied through a :class:`repro.core.persistence.DurableIndex`
can checkpoint its progress (:func:`run_update_script`) and resume exactly
where the journal left off after a crash (:func:`resume_update_script`) —
the checkpoint manifest carries the script step, and the WAL tail replayed
by recovery advances it record for record.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import SDQuery
from repro.core.results import TopKResult
from repro.workloads.workload import QueryWorkload

__all__ = [
    "MeasuredSeries",
    "ExperimentResult",
    "time_queries",
    "latency_percentiles",
    "run_update_script",
    "resume_update_script",
]


@dataclass
class MeasuredSeries:
    """One line of a figure: an algorithm's measurement at each x-axis value."""

    method: str
    x_values: List[float] = field(default_factory=list)
    y_values: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x_values.append(float(x))
        self.y_values.append(float(y))

    def as_dict(self) -> Dict[str, List[float]]:
        return {"method": self.method, "x": list(self.x_values), "y": list(self.y_values)}


@dataclass
class ExperimentResult:
    """A named experiment: its x-axis label, unit, and one series per method."""

    name: str
    x_label: str
    y_label: str
    series: List[MeasuredSeries] = field(default_factory=list)
    notes: str = ""

    def series_for(self, method: str) -> MeasuredSeries:
        for series in self.series:
            if series.method == method:
                return series
        created = MeasuredSeries(method=method)
        self.series.append(created)
        return created

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": self.notes,
            "series": [series.as_dict() for series in self.series],
        }


@dataclass
class TimingSummary:
    """Per-workload timing statistics for one algorithm."""

    total_seconds: float
    mean_seconds: float
    median_seconds: float
    mean_candidates: float
    num_queries: int

    @property
    def mean_milliseconds(self) -> float:
        return self.mean_seconds * 1000.0

    @property
    def total_milliseconds(self) -> float:
        return self.total_seconds * 1000.0


def time_queries(
    algorithm,
    workload: QueryWorkload,
    repeat: int = 1,
    collect_results: bool = False,
    query_options: Optional[Dict] = None,
) -> TimingSummary:
    """Run every query of the workload ``repeat`` times and summarize the timings.

    The per-query timing uses ``time.perf_counter`` around the ``query`` call
    only (index construction is measured separately by the construction
    experiments), mirroring how the paper reports querying time.

    ``query_options`` is forwarded to every ``query`` call; benchmarks use it
    to pin an execution engine (e.g. ``{"engine": "legacy"}`` on the SD-Index
    to time the threshold-traversal oracle against the flattened fast path).
    """
    durations: List[float] = []
    candidate_counts: List[int] = []
    results: List[TopKResult] = []
    options = query_options or {}
    for _ in range(max(1, repeat)):
        for query in workload:
            started = time.perf_counter()
            result = algorithm.query(query, **options)
            durations.append(time.perf_counter() - started)
            candidate_counts.append(result.candidates_examined)
            if collect_results:
                results.append(result)
    summary = TimingSummary(
        total_seconds=sum(durations),
        mean_seconds=statistics.fmean(durations) if durations else 0.0,
        median_seconds=statistics.median(durations) if durations else 0.0,
        mean_candidates=statistics.fmean(candidate_counts) if candidate_counts else 0.0,
        num_queries=len(durations),
    )
    if collect_results:
        summary.results = results  # type: ignore[attr-defined]
    return summary


def latency_percentiles(
    latencies: Sequence[float],
    percentiles: Sequence[float] = (50.0, 95.0, 99.0),
) -> Dict[str, float]:
    """Tail-latency summary: ``{"p50": ..., "p95": ..., "p99": ...}`` in the
    input's unit.

    Uses the ``lower`` interpolation — every reported value is a latency that
    actually occurred, which is the honest convention for tail reporting
    (interpolating between two observed latencies invents a number no request
    experienced).  Empty input yields all-zero percentiles.
    """
    values = np.asarray(list(latencies), dtype=float)
    if values.size == 0:
        return {f"p{p:g}": 0.0 for p in percentiles}
    cuts = np.percentile(values, list(percentiles), method="lower")
    return {f"p{p:g}": float(cut) for p, cut in zip(percentiles, cuts)}


# --------------------------------------------------------- durable op scripts
def run_update_script(
    engine,
    ops: Sequence[Tuple],
    start: int = 0,
    checkpoint_every: Optional[int] = None,
    extra: Optional[Dict] = None,
) -> int:
    """Apply a :meth:`ConcurrentWorkload.script` op list from step ``start``.

    ``engine`` is any index exposing ``insert(point, row_id=...)`` /
    ``delete(row_id)`` — including a
    :class:`repro.core.persistence.DurableIndex`, in which case
    ``checkpoint_every`` streams a checkpoint every N applied ops with the
    script position recorded in the manifest (``{"script_step": ...}``), so a
    crashed run resumes mid-script via :func:`resume_update_script`.
    Returns the number of steps applied in total (``len(ops)``).
    """
    durable = checkpoint_every is not None
    if durable and checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if durable and not hasattr(engine, "checkpoint"):
        raise ValueError(
            "checkpoint_every requires a durable engine (wrap it in "
            "repro.core.persistence.DurableIndex); a silent no-op here would "
            "lose the progress the caller believed was durable"
        )
    for step in range(start, len(ops)):
        op, row_id, point = ops[step]
        if op == "insert":
            engine.insert(point, row_id=row_id)
        elif op == "delete":
            engine.delete(row_id)
        else:
            raise ValueError(f"unknown script op {op!r} at step {step}")
        if durable and (step + 1) % checkpoint_every == 0:
            engine.checkpoint(extra={**(extra or {}), "script_step": step + 1})
    return len(ops)


def resume_update_script(
    path,
    ops: Sequence[Tuple],
    mmap: bool = False,
    fsync: str = "commit",
    checkpoint_every: Optional[int] = None,
):
    """Recover a durable engine and continue its update script where it died.

    The resume point is exact: the recovered checkpoint's ``script_step``
    plus one step per WAL record replayed past it (every script op journals
    exactly one record).  Returns ``(durable_engine, resumed_from_step)``
    after the remaining ops have been applied.
    """
    from repro.core.persistence import DurableIndex

    durable = DurableIndex.recover(path, mmap=mmap, fsync=fsync)
    recovery = durable.last_recovery
    resumed_from = int(recovery["extra"].get("script_step", 0)) + int(
        recovery["replayed"]
    )
    run_update_script(
        durable, ops, start=resumed_from, checkpoint_every=checkpoint_every
    )
    return durable, resumed_from
