"""Timing harness: run a workload through an algorithm and record statistics."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.query import SDQuery
from repro.core.results import TopKResult
from repro.workloads.workload import QueryWorkload

__all__ = ["MeasuredSeries", "ExperimentResult", "time_queries"]


@dataclass
class MeasuredSeries:
    """One line of a figure: an algorithm's measurement at each x-axis value."""

    method: str
    x_values: List[float] = field(default_factory=list)
    y_values: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x_values.append(float(x))
        self.y_values.append(float(y))

    def as_dict(self) -> Dict[str, List[float]]:
        return {"method": self.method, "x": list(self.x_values), "y": list(self.y_values)}


@dataclass
class ExperimentResult:
    """A named experiment: its x-axis label, unit, and one series per method."""

    name: str
    x_label: str
    y_label: str
    series: List[MeasuredSeries] = field(default_factory=list)
    notes: str = ""

    def series_for(self, method: str) -> MeasuredSeries:
        for series in self.series:
            if series.method == method:
                return series
        created = MeasuredSeries(method=method)
        self.series.append(created)
        return created

    def as_dict(self) -> Dict:
        return {
            "name": self.name,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "notes": self.notes,
            "series": [series.as_dict() for series in self.series],
        }


@dataclass
class TimingSummary:
    """Per-workload timing statistics for one algorithm."""

    total_seconds: float
    mean_seconds: float
    median_seconds: float
    mean_candidates: float
    num_queries: int

    @property
    def mean_milliseconds(self) -> float:
        return self.mean_seconds * 1000.0

    @property
    def total_milliseconds(self) -> float:
        return self.total_seconds * 1000.0


def time_queries(
    algorithm,
    workload: QueryWorkload,
    repeat: int = 1,
    collect_results: bool = False,
    query_options: Optional[Dict] = None,
) -> TimingSummary:
    """Run every query of the workload ``repeat`` times and summarize the timings.

    The per-query timing uses ``time.perf_counter`` around the ``query`` call
    only (index construction is measured separately by the construction
    experiments), mirroring how the paper reports querying time.

    ``query_options`` is forwarded to every ``query`` call; benchmarks use it
    to pin an execution engine (e.g. ``{"engine": "legacy"}`` on the SD-Index
    to time the threshold-traversal oracle against the flattened fast path).
    """
    durations: List[float] = []
    candidate_counts: List[int] = []
    results: List[TopKResult] = []
    options = query_options or {}
    for _ in range(max(1, repeat)):
        for query in workload:
            started = time.perf_counter()
            result = algorithm.query(query, **options)
            durations.append(time.perf_counter() - started)
            candidate_counts.append(result.candidates_examined)
            if collect_results:
                results.append(result)
    summary = TimingSummary(
        total_seconds=sum(durations),
        mean_seconds=statistics.fmean(durations) if durations else 0.0,
        median_seconds=statistics.median(durations) if durations else 0.0,
        mean_candidates=statistics.fmean(candidate_counts) if candidate_counts else 0.0,
        num_queries=len(durations),
    )
    if collect_results:
        summary.results = results  # type: ignore[attr-defined]
    return summary
