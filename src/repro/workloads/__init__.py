"""Workload generation, method registry and the timing harness used by all experiments."""

from repro.workloads.registry import (
    ALGORITHM_BUILDERS,
    WORKLOAD_BUILDERS,
    build_algorithm,
    build_workload,
)
from repro.workloads.reporting import format_series_table, format_table
from repro.workloads.runner import (
    ExperimentResult,
    MeasuredSeries,
    latency_percentiles,
    resume_update_script,
    run_update_script,
    time_queries,
)
from repro.workloads.workload import (
    BatchWorkload,
    QueryWorkload,
    ServingWorkload,
    make_batch_workload,
    make_serving_workload,
    make_workload,
)

__all__ = [
    "QueryWorkload",
    "BatchWorkload",
    "ServingWorkload",
    "make_workload",
    "make_batch_workload",
    "make_serving_workload",
    "latency_percentiles",
    "ALGORITHM_BUILDERS",
    "WORKLOAD_BUILDERS",
    "build_algorithm",
    "build_workload",
    "time_queries",
    "run_update_script",
    "resume_update_script",
    "MeasuredSeries",
    "ExperimentResult",
    "format_table",
    "format_series_table",
]
