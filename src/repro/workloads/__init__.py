"""Workload generation, method registry and the timing harness used by all experiments."""

from repro.workloads.registry import ALGORITHM_BUILDERS, build_algorithm
from repro.workloads.reporting import format_series_table, format_table
from repro.workloads.runner import ExperimentResult, MeasuredSeries, time_queries
from repro.workloads.workload import QueryWorkload, make_workload

__all__ = [
    "QueryWorkload",
    "make_workload",
    "ALGORITHM_BUILDERS",
    "build_algorithm",
    "time_queries",
    "MeasuredSeries",
    "ExperimentResult",
    "format_table",
    "format_series_table",
]
