"""Registry of query algorithms usable by the experiment harness.

Every entry builds one algorithm over a dataset with fixed dimension roles and
returns an object exposing ``query(SDQuery) -> TopKResult`` — the SD-Index facade
and every baseline already follow that contract.  The experiment modules refer to
algorithms by the short names the paper's figures use: ``SD-Index``, ``TA``,
``BRS``, ``PE`` and ``SeqScan``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.baselines import (
    BRSTopK,
    ProgressiveExplorationTopK,
    PurePythonScan,
    SequentialScan,
    ThresholdAlgorithm,
)
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex
from repro.workloads.workload import (
    BatchWorkload,
    ConcurrentWorkload,
    QueryWorkload,
    ServingWorkload,
    make_batch_workload,
    make_concurrent_workload,
    make_serving_workload,
    make_workload,
)

__all__ = [
    "ALGORITHM_BUILDERS",
    "build_algorithm",
    "DEFAULT_METHODS",
    "WORKLOAD_BUILDERS",
    "build_workload",
]


def _build_sd_index(data: np.ndarray, repulsive, attractive, **kwargs) -> SDIndex:
    allowed = {"angles", "branching", "leaf_capacity", "pairing"}
    options = {key: value for key, value in kwargs.items() if key in allowed}
    return SDIndex.build(data, repulsive=repulsive, attractive=attractive, **options)


def _build_sharded(data: np.ndarray, repulsive, attractive, **kwargs) -> ShardedIndex:
    allowed = {
        "angles",
        "branching",
        "leaf_capacity",
        "pairing",
        "num_shards",
        "partitioner",
        "range_dim",
        "rebalance_threshold",
        "parallel",
        "max_workers",
    }
    options = {key: value for key, value in kwargs.items() if key in allowed}
    return SDIndex.build_sharded(
        data, repulsive=repulsive, attractive=attractive, **options
    )


def _build_procsharded(data: np.ndarray, repulsive, attractive, **kwargs):
    """Multi-process sharded serving: one worker process per shard over
    mmap'd snapshots (``repro.core.procserving``).  Imported lazily so the
    registry stays cheap for the single-process algorithms."""
    from repro.core.procserving import ProcessShardedIndex

    allowed = {
        "angles",
        "branching",
        "leaf_capacity",
        "pairing",
        "num_shards",
        "partitioner",
        "range_dim",
        "parallel",
        "max_workers",
        "path",
        "fsync",
        "op_timeout",
    }
    options = {key: value for key, value in kwargs.items() if key in allowed}
    return ProcessShardedIndex(
        data, repulsive=repulsive, attractive=attractive, **options
    )


def _build_seqscan(data: np.ndarray, repulsive, attractive, **kwargs) -> SequentialScan:
    return SequentialScan(data, repulsive, attractive)


def _build_ta(data: np.ndarray, repulsive, attractive, **kwargs) -> ThresholdAlgorithm:
    return ThresholdAlgorithm(data, repulsive, attractive)


def _build_brs(data: np.ndarray, repulsive, attractive, **kwargs) -> BRSTopK:
    return BRSTopK(data, repulsive, attractive, node_capacity=kwargs.get("node_capacity"))


def _build_pe(data: np.ndarray, repulsive, attractive, **kwargs) -> ProgressiveExplorationTopK:
    return ProgressiveExplorationTopK(data, repulsive, attractive)


def _build_seqscan_py(data: np.ndarray, repulsive, attractive, **kwargs) -> PurePythonScan:
    return PurePythonScan(data, repulsive, attractive)


#: Algorithm name -> builder(data, repulsive, attractive, **options).
ALGORITHM_BUILDERS: Dict[str, Callable] = {
    "SD-Index": _build_sd_index,
    "SD-Sharded": _build_sharded,
    "SD-ProcSharded": _build_procsharded,
    "SeqScan": _build_seqscan,
    "SeqScan-py": _build_seqscan_py,
    "TA": _build_ta,
    "BRS": _build_brs,
    "PE": _build_pe,
}

#: The comparison set most figures use (PE is added only where the paper includes it).
DEFAULT_METHODS = ("SeqScan", "SD-Index", "TA", "BRS")


def _build_uniform_workload(repulsive, attractive, **options) -> QueryWorkload:
    return make_workload(repulsive, attractive, **options)


def _build_batch_serving(repulsive, attractive, **options) -> BatchWorkload:
    """The batch-serving workload: one array of concurrent queries with mixed k.

    Defaults mirror the paper's query setup (100 uniform query points, random
    weights) but draw each query's ``k`` from a small menu, the shape of
    answer-limited serving traffic (cf. NeedleTail, PAPERS.md).
    """
    options.setdefault("k", (1, 5, 10, 25))
    return make_batch_workload(repulsive, attractive, **options)


def _build_sharded_serving(repulsive, attractive, **options) -> BatchWorkload:
    """The sharded-serving workload: answer-limited traffic with a small k menu.

    Identical columnar shape to ``batch_serving`` but with the k ∈ {1, 10}
    menu of the sharded-engine acceptance scenarios (top-1 lookups mixed with
    top-10 pages), so the same workload drives the benchmarks, the golden
    regressions and the shard-count experiment sweep.
    """
    options.setdefault("k", (1, 10))
    return make_batch_workload(repulsive, attractive, **options)


def _build_concurrent_serving(repulsive, attractive, **options) -> ConcurrentWorkload:
    """The concurrent-serving workload: read traffic plus an update script.

    Answer-limited read traffic (the ``sharded_serving`` k menu {1, 10}) woven
    with a deterministic insert/delete stream, so the same scenario drives the
    golden snapshot fixtures, the serve-while-mutate stress harness and
    ``benchmarks/bench_concurrent.py``.
    """
    options.setdefault("k", (1, 10))
    return make_concurrent_workload(repulsive, attractive, **options)


def _build_write_heavy(repulsive, attractive, **options) -> ConcurrentWorkload:
    """The write-heavy workload: update-dominated traffic for LSM maintenance.

    The same deterministic serve-while-mutate shape as ``concurrent_serving``
    but with the ratio inverted — a long insert/delete stream against a small
    read batch — so the scenario spends its life in the delta/flush/merge
    machinery: deltas fill and fold into levels, tiers merge, and reads hit
    the layered (delta + levels) merge path at every checkpoint.  Drives the
    ``write_heavy`` golden fixture and ``benchmarks/bench_lsm.py``.
    """
    options.setdefault("k", (1, 10))
    options.setdefault("num_queries", 8)
    options.setdefault("num_updates", 400)
    options.setdefault("delete_fraction", 0.3)
    return make_concurrent_workload(repulsive, attractive, **options)


def _build_serving(repulsive, attractive, **options) -> ServingWorkload:
    """The front-end serving workload: open-loop arrivals for the coalescer.

    Answer-limited traffic (the k ∈ {1, 5, 10} menu) on a seeded Poisson
    arrival schedule with multi-tenant labels and a repeated-query fraction —
    the traffic shape that exercises micro-batching, admission control and
    the ``(query, epoch)`` result cache all at once (DESIGN.md §8).
    """
    return make_serving_workload(repulsive, attractive, **options)


#: Workload name -> builder(repulsive, attractive, **options).
WORKLOAD_BUILDERS: Dict[str, Callable] = {
    "uniform": _build_uniform_workload,
    "batch_serving": _build_batch_serving,
    "sharded_serving": _build_sharded_serving,
    "concurrent_serving": _build_concurrent_serving,
    "write_heavy": _build_write_heavy,
    "serving": _build_serving,
}


def build_workload(name: str, repulsive: Sequence[int], attractive: Sequence[int], **options):
    """Instantiate a registered query workload."""
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(WORKLOAD_BUILDERS)}"
        ) from None
    return builder(tuple(repulsive), tuple(attractive), **options)


def build_algorithm(
    name: str,
    data: np.ndarray,
    repulsive: Sequence[int],
    attractive: Sequence[int],
    **options,
):
    """Instantiate a registered algorithm over a dataset."""
    try:
        builder = ALGORITHM_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHM_BUILDERS)}"
        ) from None
    return builder(np.asarray(data, dtype=float), tuple(repulsive), tuple(attractive), **options)
