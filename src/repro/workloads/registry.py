"""Registry of query algorithms usable by the experiment harness.

Every entry builds one algorithm over a dataset with fixed dimension roles and
returns an object exposing ``query(SDQuery) -> TopKResult`` — the SD-Index facade
and every baseline already follow that contract.  The experiment modules refer to
algorithms by the short names the paper's figures use: ``SD-Index``, ``TA``,
``BRS``, ``PE`` and ``SeqScan``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.baselines import (
    BRSTopK,
    ProgressiveExplorationTopK,
    PurePythonScan,
    SequentialScan,
    ThresholdAlgorithm,
)
from repro.core.sdindex import SDIndex

__all__ = ["ALGORITHM_BUILDERS", "build_algorithm", "DEFAULT_METHODS"]


def _build_sd_index(data: np.ndarray, repulsive, attractive, **kwargs) -> SDIndex:
    allowed = {"angles", "branching", "leaf_capacity", "pairing"}
    options = {key: value for key, value in kwargs.items() if key in allowed}
    return SDIndex.build(data, repulsive=repulsive, attractive=attractive, **options)


def _build_seqscan(data: np.ndarray, repulsive, attractive, **kwargs) -> SequentialScan:
    return SequentialScan(data, repulsive, attractive)


def _build_ta(data: np.ndarray, repulsive, attractive, **kwargs) -> ThresholdAlgorithm:
    return ThresholdAlgorithm(data, repulsive, attractive)


def _build_brs(data: np.ndarray, repulsive, attractive, **kwargs) -> BRSTopK:
    return BRSTopK(data, repulsive, attractive, node_capacity=kwargs.get("node_capacity"))


def _build_pe(data: np.ndarray, repulsive, attractive, **kwargs) -> ProgressiveExplorationTopK:
    return ProgressiveExplorationTopK(data, repulsive, attractive)


def _build_seqscan_py(data: np.ndarray, repulsive, attractive, **kwargs) -> PurePythonScan:
    return PurePythonScan(data, repulsive, attractive)


#: Algorithm name -> builder(data, repulsive, attractive, **options).
ALGORITHM_BUILDERS: Dict[str, Callable] = {
    "SD-Index": _build_sd_index,
    "SeqScan": _build_seqscan,
    "SeqScan-py": _build_seqscan_py,
    "TA": _build_ta,
    "BRS": _build_brs,
    "PE": _build_pe,
}

#: The comparison set most figures use (PE is added only where the paper includes it).
DEFAULT_METHODS = ("SeqScan", "SD-Index", "TA", "BRS")


def build_algorithm(
    name: str,
    data: np.ndarray,
    repulsive: Sequence[int],
    attractive: Sequence[int],
    **options,
):
    """Instantiate a registered algorithm over a dataset."""
    try:
        builder = ALGORITHM_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHM_BUILDERS)}"
        ) from None
    return builder(np.asarray(data, dtype=float), tuple(repulsive), tuple(attractive), **options)
