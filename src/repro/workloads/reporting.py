"""Plain-text reporting helpers: paper-style tables and figure series."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.workloads.runner import ExperimentResult

__all__ = ["format_table", "format_series_table", "format_experiment"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a simple aligned text table."""

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    rendered_headers = [str(h) for h in headers]
    widths = [
        max(len(rendered_headers[i]), *(len(row[i]) for row in rendered_rows)) if rendered_rows
        else len(rendered_headers[i])
        for i in range(len(rendered_headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(rendered_headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_series_table(result: ExperimentResult, float_format: str = "{:.3f}") -> str:
    """Render an :class:`ExperimentResult` as one column per method.

    This is the textual equivalent of one of the paper's figures: the first
    column is the x-axis, the remaining columns are the per-method measurements.
    """
    x_values: List[float] = []
    for series in result.series:
        for x in series.x_values:
            if x not in x_values:
                x_values.append(x)
    x_values.sort()
    headers = [result.x_label] + [series.method for series in result.series]
    rows: List[List[object]] = []
    for x in x_values:
        row: List[object] = [x]
        for series in result.series:
            try:
                position = series.x_values.index(x)
                row.append(series.y_values[position])
            except ValueError:
                row.append("-")
        rows.append(row)
    title = f"{result.name}  [{result.y_label}]"
    if result.notes:
        title += f"\n{result.notes}"
    return format_table(headers, rows, title=title, float_format=float_format)


def format_experiment(results: Sequence[ExperimentResult]) -> str:
    """Concatenate several experiment tables into one report."""
    return "\n\n".join(format_series_table(result) for result in results)
