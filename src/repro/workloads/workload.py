"""Query workload generation (Section 6.1 setup).

The paper evaluates every configuration on 100 query points drawn from a uniform
distribution, with weighting parameters drawn uniformly from ``(0, 1]`` and a
default ``k`` of 5.  :func:`make_workload` reproduces that setup (seeded and
scalable) and returns a :class:`QueryWorkload` — a list of fully specified
:class:`SDQuery` objects that every algorithm answers in turn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import QueryWeights, SDQuery

__all__ = [
    "QueryWorkload",
    "BatchWorkload",
    "ConcurrentWorkload",
    "ServingWorkload",
    "make_workload",
    "make_batch_workload",
    "make_concurrent_workload",
    "make_serving_workload",
]


@dataclass
class QueryWorkload:
    """A reusable list of SD-Queries plus the metadata describing how it was made."""

    queries: List[SDQuery]
    description: str = ""
    seed: int = 0

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[SDQuery]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> SDQuery:
        return self.queries[index]

    def with_k(self, k: int) -> "QueryWorkload":
        """The same workload asking for a different ``k``."""
        return QueryWorkload(
            queries=[query.with_k(k) for query in self.queries],
            description=f"{self.description} (k={k})",
            seed=self.seed,
        )


@dataclass
class BatchWorkload:
    """A batch of SD-Queries in columnar (array) form for batched execution.

    ``points`` is the ``(m, d)`` query matrix; ``ks``, ``alphas`` and ``betas``
    hold the per-query ``k`` and weights (weight columns follow the order of
    ``repulsive``/``attractive``).  The batched engines consume this object
    directly; :meth:`queries` materializes the equivalent per-query
    :class:`SDQuery` list for the one-at-a-time paths and oracles.
    """

    points: np.ndarray
    ks: np.ndarray
    alphas: np.ndarray
    betas: np.ndarray
    repulsive: Tuple[int, ...]
    attractive: Tuple[int, ...]
    description: str = ""
    seed: int = 0

    def __len__(self) -> int:
        return len(self.points)

    def queries(self) -> List[SDQuery]:
        """Per-query view of the batch (for loops over single-query engines)."""
        return [
            SDQuery(
                point=tuple(self.points[j]),
                repulsive=self.repulsive,
                attractive=self.attractive,
                k=int(self.ks[j]),
                weights=QueryWeights(
                    alpha=tuple(self.alphas[j]), beta=tuple(self.betas[j])
                ),
            )
            for j in range(len(self.points))
        ]

    @classmethod
    def from_workload(cls, workload: QueryWorkload) -> "BatchWorkload":
        """Columnar form of an existing per-query workload (roles must agree)."""
        if not workload.queries:
            raise ValueError("cannot batch an empty workload")
        first = workload.queries[0]
        points = np.empty((len(workload), first.num_dims), dtype=float)
        ks = np.empty(len(workload), dtype=np.int64)
        alphas = np.empty((len(workload), len(first.repulsive)), dtype=float)
        betas = np.empty((len(workload), len(first.attractive)), dtype=float)
        for j, query in enumerate(workload):
            if query.repulsive != first.repulsive or query.attractive != first.attractive:
                raise ValueError("all queries in a batch must share dimension roles")
            points[j] = query.point
            ks[j] = query.k
            alphas[j] = query.alpha
            betas[j] = query.beta
        return cls(
            points=points,
            ks=ks,
            alphas=alphas,
            betas=betas,
            repulsive=first.repulsive,
            attractive=first.attractive,
            description=workload.description,
            seed=workload.seed,
        )


@dataclass
class ConcurrentWorkload:
    """A serve-while-mutate scenario: read traffic plus an update script.

    ``reads`` is the batched query traffic; the remaining fields are seeded
    draws that :meth:`script` turns into a *deterministic* op list against any
    starting population — the same scenario therefore drives the golden
    regressions (updates applied serially, answers frozen at checkpoints), the
    concurrency stress harness (updates applied from writer threads while
    readers pin snapshots) and ``benchmarks/bench_concurrent.py``.
    """

    reads: BatchWorkload
    insert_points: np.ndarray  # (num_updates, d) payload pool, drawn in order
    op_draws: np.ndarray  # (num_updates,) uniform [0,1): op selector
    victim_draws: np.ndarray  # (num_updates,) uniform [0,1): delete victim
    delete_fraction: float
    description: str = ""
    seed: int = 0

    @property
    def num_updates(self) -> int:
        return len(self.op_draws)

    def script(self, initial_row_ids: Sequence[int]) -> List[Tuple[str, int, Optional[np.ndarray]]]:
        """The concrete op list for a given starting population.

        Returns ``(op, row_id, point)`` tuples (``point`` is None for
        deletes).  Inserts allocate fresh ids above the initial maximum;
        deletes pick live victims through the seeded draws.  Purely a
        function of ``initial_row_ids`` and the stored arrays — replaying it
        always produces the same population trajectory.
        """
        live = [int(r) for r in initial_row_ids]
        next_id = (max(live) + 1) if live else 0
        ops: List[Tuple[str, int, Optional[np.ndarray]]] = []
        for step in range(self.num_updates):
            if self.op_draws[step] < self.delete_fraction and len(live) > 1:
                victim = live.pop(int(self.victim_draws[step] * len(live)))
                ops.append(("delete", victim, None))
            else:
                ops.append(("insert", next_id, self.insert_points[step]))
                live.append(next_id)
                next_id += 1
        return ops


@dataclass
class ServingWorkload:
    """Open-loop request traffic for the serving front end (DESIGN.md §8).

    ``reads`` is the query traffic in columnar form; ``arrival_offsets`` gives
    each request's scheduled arrival (seconds from the run's start, sorted,
    drawn from a seeded Poisson process so bursts happen — uniform spacing
    would never exercise coalescing); ``tenants`` assigns request ``j`` to
    tenant ``tenants[j % len(tenants)]``.  ``repeat_fraction`` of the requests
    are exact repeats of earlier queries, which is what gives the
    ``(query, epoch)`` result cache something to hit.
    """

    reads: BatchWorkload
    arrival_offsets: np.ndarray  # (num_requests,) seconds from start, sorted
    tenants: Tuple[str, ...]
    target_rate: float  # requests/second the Poisson draws aimed for
    description: str = ""
    seed: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.reads)

    @property
    def duration_seconds(self) -> float:
        return float(self.arrival_offsets[-1]) if len(self.arrival_offsets) else 0.0


def make_workload(
    repulsive: Sequence[int],
    attractive: Sequence[int],
    num_queries: int = 100,
    k: int = 5,
    num_dims: Optional[int] = None,
    seed: int = 0,
    value_range: Tuple[float, float] = (0.0, 1.0),
    random_weights: bool = True,
    weight_range: Tuple[float, float] = (0.05, 1.0),
) -> QueryWorkload:
    """Generate a seeded workload of SD-Queries.

    Parameters
    ----------
    repulsive, attractive:
        Dimension roles shared by every query (they must match the index build).
    num_queries:
        Number of query points (the paper uses 100).
    k:
        Results per query (the paper's default is 5).
    num_dims:
        Total dimensionality of the query points; defaults to covering the
        largest named dimension.
    value_range:
        Query points are drawn uniformly from this range in every dimension.
    random_weights:
        Draw ``alpha`` and ``beta`` uniformly from ``weight_range`` per query (the
        paper's setup); with ``False`` all weights are 1.
    """
    repulsive = tuple(int(d) for d in repulsive)
    attractive = tuple(int(d) for d in attractive)
    if num_dims is None:
        num_dims = max(repulsive + attractive) + 1
    rng = np.random.default_rng(seed)
    low, high = value_range
    weight_low, weight_high = weight_range
    queries: List[SDQuery] = []
    for _ in range(num_queries):
        point = rng.uniform(low, high, size=num_dims)
        if random_weights:
            alpha = rng.uniform(weight_low, weight_high, size=len(repulsive))
            beta = rng.uniform(weight_low, weight_high, size=len(attractive))
        else:
            alpha = np.ones(len(repulsive))
            beta = np.ones(len(attractive))
        queries.append(
            SDQuery(
                point=tuple(point),
                repulsive=repulsive,
                attractive=attractive,
                k=k,
                weights=QueryWeights(alpha=tuple(alpha), beta=tuple(beta)),
            )
        )
    description = (
        f"{num_queries} uniform queries, k={k}, |D|={len(repulsive)}, |S|={len(attractive)}, "
        f"{'random' if random_weights else 'unit'} weights"
    )
    return QueryWorkload(queries=queries, description=description, seed=seed)


def make_batch_workload(
    repulsive: Sequence[int],
    attractive: Sequence[int],
    num_queries: int = 100,
    k=5,
    num_dims: Optional[int] = None,
    seed: int = 0,
    value_range: Tuple[float, float] = (0.0, 1.0),
    random_weights: bool = True,
    weight_range: Tuple[float, float] = (0.05, 1.0),
) -> BatchWorkload:
    """Generate a seeded batch-serving workload in columnar form.

    Like :func:`make_workload` but ``k`` may also be a sequence of values, in
    which case each query draws its ``k`` uniformly from the sequence (seeded)
    — the mixed-``k`` traffic a serving tier sees.
    """
    repulsive = tuple(int(d) for d in repulsive)
    attractive = tuple(int(d) for d in attractive)
    if num_dims is None:
        num_dims = max(repulsive + attractive) + 1
    rng = np.random.default_rng(seed)
    low, high = value_range
    weight_low, weight_high = weight_range
    if random_weights and weight_low <= 0:
        raise ValueError("weight_range must be strictly positive")
    points = rng.uniform(low, high, size=(num_queries, num_dims))
    if np.isscalar(k):
        ks = np.full(num_queries, int(k), dtype=np.int64)
    else:
        choices = np.asarray(list(k), dtype=np.int64)
        ks = rng.choice(choices, size=num_queries)
    if random_weights:
        alphas = rng.uniform(weight_low, weight_high, size=(num_queries, len(repulsive)))
        betas = rng.uniform(weight_low, weight_high, size=(num_queries, len(attractive)))
    else:
        alphas = np.ones((num_queries, len(repulsive)))
        betas = np.ones((num_queries, len(attractive)))
    description = (
        f"{num_queries} batched uniform queries, k={k!r}, |D|={len(repulsive)}, "
        f"|S|={len(attractive)}, {'random' if random_weights else 'unit'} weights"
    )
    return BatchWorkload(
        points=points,
        ks=ks,
        alphas=alphas,
        betas=betas,
        repulsive=repulsive,
        attractive=attractive,
        description=description,
        seed=seed,
    )


def make_concurrent_workload(
    repulsive: Sequence[int],
    attractive: Sequence[int],
    num_queries: int = 24,
    num_updates: int = 120,
    k=(1, 10),
    delete_fraction: float = 0.4,
    num_dims: Optional[int] = None,
    seed: int = 0,
    value_range: Tuple[float, float] = (0.0, 1.0),
    weight_range: Tuple[float, float] = (0.05, 1.0),
) -> ConcurrentWorkload:
    """Generate a seeded serve-while-mutate workload.

    The read side mirrors :func:`make_batch_workload` (uniform points, random
    weights, a ``k`` menu); the write side is ``num_updates`` seeded update
    draws that :meth:`ConcurrentWorkload.script` resolves into a deterministic
    insert/delete stream (``delete_fraction`` of the ops delete a live row,
    the rest insert a fresh uniform point).
    """
    repulsive = tuple(int(d) for d in repulsive)
    attractive = tuple(int(d) for d in attractive)
    if num_dims is None:
        num_dims = max(repulsive + attractive) + 1
    reads = make_batch_workload(
        repulsive,
        attractive,
        num_queries=num_queries,
        k=k,
        num_dims=num_dims,
        seed=seed,
        value_range=value_range,
        weight_range=weight_range,
    )
    rng = np.random.default_rng(seed + 0x5EED)
    low, high = value_range
    description = (
        f"concurrent serving: {num_queries} reads (k={k!r}) against "
        f"{num_updates} interleaved updates ({delete_fraction:.0%} deletes)"
    )
    return ConcurrentWorkload(
        reads=reads,
        insert_points=rng.uniform(low, high, size=(num_updates, num_dims)),
        op_draws=rng.random(num_updates),
        victim_draws=rng.random(num_updates),
        delete_fraction=float(delete_fraction),
        description=description,
        seed=seed,
    )


def make_serving_workload(
    repulsive: Sequence[int],
    attractive: Sequence[int],
    num_requests: int = 400,
    target_rate: float = 2000.0,
    k=(1, 5, 10),
    num_tenants: int = 4,
    repeat_fraction: float = 0.25,
    num_dims: Optional[int] = None,
    seed: int = 0,
    value_range: Tuple[float, float] = (0.0, 1.0),
    weight_range: Tuple[float, float] = (0.05, 1.0),
) -> ServingWorkload:
    """Generate seeded open-loop serving traffic.

    Arrivals are a Poisson process at ``target_rate`` requests/second
    (exponential inter-arrival draws, cumulatively summed), so the schedule
    has the bursts that make micro-batching pay off.  ``repeat_fraction`` of
    the requests re-issue an earlier request's exact query (point, ``k`` and
    weights), modelling the repeated-query traffic a result cache exists for.
    """
    if not 0.0 <= repeat_fraction < 1.0:
        raise ValueError(f"repeat_fraction must be in [0, 1), got {repeat_fraction}")
    if target_rate <= 0:
        raise ValueError(f"target_rate must be positive, got {target_rate}")
    if num_tenants < 1:
        raise ValueError(f"num_tenants must be >= 1, got {num_tenants}")
    reads = make_batch_workload(
        repulsive,
        attractive,
        num_queries=num_requests,
        k=k,
        num_dims=num_dims,
        seed=seed,
        value_range=value_range,
        weight_range=weight_range,
    )
    rng = np.random.default_rng(seed + 0x5E21)
    # Rewrite a seeded subset of requests as exact repeats of earlier ones.
    for j in range(1, num_requests):
        if rng.random() < repeat_fraction:
            src = int(rng.integers(0, j))
            reads.points[j] = reads.points[src]
            reads.ks[j] = reads.ks[src]
            reads.alphas[j] = reads.alphas[src]
            reads.betas[j] = reads.betas[src]
    offsets = np.cumsum(rng.exponential(1.0 / target_rate, size=num_requests))
    tenants = tuple(f"tenant-{t}" for t in range(num_tenants))
    description = (
        f"serving: {num_requests} open-loop requests at ~{target_rate:g}/s, "
        f"k={k!r}, {num_tenants} tenants, {repeat_fraction:.0%} repeats"
    )
    return ServingWorkload(
        reads=reads,
        arrival_offsets=offsets,
        tenants=tenants,
        target_rate=float(target_rate),
        description=description,
        seed=seed,
    )
