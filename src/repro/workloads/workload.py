"""Query workload generation (Section 6.1 setup).

The paper evaluates every configuration on 100 query points drawn from a uniform
distribution, with weighting parameters drawn uniformly from ``(0, 1]`` and a
default ``k`` of 5.  :func:`make_workload` reproduces that setup (seeded and
scalable) and returns a :class:`QueryWorkload` — a list of fully specified
:class:`SDQuery` objects that every algorithm answers in turn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import QueryWeights, SDQuery

__all__ = ["QueryWorkload", "make_workload"]


@dataclass
class QueryWorkload:
    """A reusable list of SD-Queries plus the metadata describing how it was made."""

    queries: List[SDQuery]
    description: str = ""
    seed: int = 0

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[SDQuery]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> SDQuery:
        return self.queries[index]

    def with_k(self, k: int) -> "QueryWorkload":
        """The same workload asking for a different ``k``."""
        return QueryWorkload(
            queries=[query.with_k(k) for query in self.queries],
            description=f"{self.description} (k={k})",
            seed=self.seed,
        )


def make_workload(
    repulsive: Sequence[int],
    attractive: Sequence[int],
    num_queries: int = 100,
    k: int = 5,
    num_dims: Optional[int] = None,
    seed: int = 0,
    value_range: Tuple[float, float] = (0.0, 1.0),
    random_weights: bool = True,
    weight_range: Tuple[float, float] = (0.05, 1.0),
) -> QueryWorkload:
    """Generate a seeded workload of SD-Queries.

    Parameters
    ----------
    repulsive, attractive:
        Dimension roles shared by every query (they must match the index build).
    num_queries:
        Number of query points (the paper uses 100).
    k:
        Results per query (the paper's default is 5).
    num_dims:
        Total dimensionality of the query points; defaults to covering the
        largest named dimension.
    value_range:
        Query points are drawn uniformly from this range in every dimension.
    random_weights:
        Draw ``alpha`` and ``beta`` uniformly from ``weight_range`` per query (the
        paper's setup); with ``False`` all weights are 1.
    """
    repulsive = tuple(int(d) for d in repulsive)
    attractive = tuple(int(d) for d in attractive)
    if num_dims is None:
        num_dims = max(repulsive + attractive) + 1
    rng = np.random.default_rng(seed)
    low, high = value_range
    weight_low, weight_high = weight_range
    queries: List[SDQuery] = []
    for _ in range(num_queries):
        point = rng.uniform(low, high, size=num_dims)
        if random_weights:
            alpha = rng.uniform(weight_low, weight_high, size=len(repulsive))
            beta = rng.uniform(weight_low, weight_high, size=len(attractive))
        else:
            alpha = np.ones(len(repulsive))
            beta = np.ones(len(attractive))
        queries.append(
            SDQuery(
                point=tuple(point),
                repulsive=repulsive,
                attractive=attractive,
                k=k,
                weights=QueryWeights(alpha=tuple(alpha), beta=tuple(beta)),
            )
        )
    description = (
        f"{num_queries} uniform queries, k={k}, |D|={len(repulsive)}, |S|={len(attractive)}, "
        f"{'random' if random_weights else 'unit'} weights"
    )
    return QueryWorkload(queries=queries, description=description, seed=seed)
