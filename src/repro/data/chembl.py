"""A synthetic ChEMBL-like molecular property dataset (Table 1 substitute).

The paper's qualitative study runs an SD-Query over the ChEMBL v2 library
(428,913 bioactive molecules) asking for molecules *similar* in drug-likeness to
a good, light query molecule but *distant* in molecular weight, and observes that
the retrieved heavy molecules are nevertheless drug-like and have unusually low
polar surface area (PSA).

ChEMBL itself cannot be redistributed here, so this module generates a synthetic
population that encodes the same correlation structure:

* a *main* population of typical drug-like molecules — MW centred near 420 Da,
  PSA positively correlated with MW, drug-likeness scores centred near 8.9;
* a small *exception* population of heavy (700-1200 Da) molecules that remain
  drug-like and have distinctly low PSA (macrocycle-like compounds), with a mild
  positive association between weight and drug-likeness inside the group.

The global column averages are calibrated to the paper's "overall average" row
(drug-likeness 8.94, MW 422.6, PSA 112.14), and the SD-Query of the paper
surfaces the exception population while a plain similarity query does not —
which is the qualitative claim Table 1 makes.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "CHEMBL_COLUMNS",
    "PAPER_OVERALL_AVERAGES",
    "PAPER_TABLE1",
    "generate_chembl_like",
    "paper_query_molecule",
]

#: Columns of the synthetic molecular dataset.
CHEMBL_COLUMNS = (
    "drug_likeness",
    "molecular_weight",
    "polar_surface_area",
    "logp",
    "hbond_donors",
    "hbond_acceptors",
    "rotatable_bonds",
)

#: The paper's overall averages (Table 1, first row).
PAPER_OVERALL_AVERAGES: Dict[str, float] = {
    "drug_likeness": 8.94,
    "molecular_weight": 422.6,
    "polar_surface_area": 112.14,
}

#: The paper's reported top-k averages (Table 1, remaining rows).
PAPER_TABLE1: Dict[int, Dict[str, float]] = {
    10: {"drug_likeness": 9.87, "molecular_weight": 938.67, "polar_surface_area": 27.73},
    50: {"drug_likeness": 9.47, "molecular_weight": 897.50, "polar_surface_area": 42.17},
    100: {"drug_likeness": 9.18, "molecular_weight": 877.79, "polar_surface_area": 42.23},
    200: {"drug_likeness": 9.14, "molecular_weight": 824.24, "polar_surface_area": 47.46},
}

#: Fraction of molecules belonging to the heavy, low-PSA exception population.
_EXCEPTION_FRACTION = 0.012


def generate_chembl_like(
    num_molecules: int = 50_000,
    seed: int = 7,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Generate the synthetic molecular library.

    Parameters
    ----------
    num_molecules:
        Library size; the paper's ChEMBL v2 snapshot has 428,913 molecules, the
        default is scaled down so the qualitative experiment runs in seconds.
    seed:
        Random seed for reproducibility (never the global numpy state).
    rng:
        Explicit generator to draw from instead of deriving one from ``seed``.
    """
    if num_molecules < 1000:
        raise ValueError("the qualitative experiment needs at least 1000 molecules")
    if rng is None:
        rng = np.random.default_rng(seed)
    num_exceptions = max(50, int(round(_EXCEPTION_FRACTION * num_molecules)))
    num_main = num_molecules - num_exceptions

    # --- main population -------------------------------------------------------
    mw_main = np.clip(rng.normal(418.0, 85.0, size=num_main), 150.0, 750.0)
    # PSA rises with molecular weight in ordinary drug-like molecules.
    psa_main = np.clip(
        55.0 + 0.145 * mw_main + rng.normal(0.0, 22.0, size=num_main), 10.0, 300.0
    )
    # Drug-likeness mildly penalized by weight and PSA excess (rule-of-five flavour).
    drug_main = np.clip(
        9.35
        - 0.0012 * np.maximum(mw_main - 500.0, 0.0)
        - 0.004 * np.maximum(psa_main - 140.0, 0.0)
        + rng.normal(0.0, 1.35, size=num_main),
        0.5,
        14.22,
    )
    logp_main = np.clip(rng.normal(2.6, 1.4, size=num_main), -3.0, 8.0)
    hbd_main = rng.poisson(1.8, size=num_main).astype(float)
    hba_main = rng.poisson(4.5, size=num_main).astype(float)
    rot_main = rng.poisson(5.5, size=num_main).astype(float)

    # --- exception population: heavy, drug-like, low PSA -----------------------
    mw_exc = np.clip(rng.normal(930.0, 140.0, size=num_exceptions), 700.0, 1400.0)
    psa_exc = np.clip(rng.normal(38.0, 12.0, size=num_exceptions), 8.0, 80.0)
    drug_exc = np.clip(
        9.1 + 0.0016 * (mw_exc - 900.0) + rng.normal(0.0, 0.7, size=num_exceptions),
        5.0,
        14.22,
    )
    logp_exc = np.clip(rng.normal(4.5, 1.2, size=num_exceptions), 0.0, 9.0)
    hbd_exc = rng.poisson(1.0, size=num_exceptions).astype(float)
    hba_exc = rng.poisson(6.0, size=num_exceptions).astype(float)
    rot_exc = rng.poisson(9.0, size=num_exceptions).astype(float)

    matrix = np.column_stack(
        [
            np.concatenate([drug_main, drug_exc]),
            np.concatenate([mw_main, mw_exc]),
            np.concatenate([psa_main, psa_exc]),
            np.concatenate([logp_main, logp_exc]),
            np.concatenate([hbd_main, hbd_exc]),
            np.concatenate([hba_main, hba_exc]),
            np.concatenate([rot_main, rot_exc]),
        ]
    )
    order = rng.permutation(len(matrix))
    matrix = matrix[order]
    return Dataset(
        matrix=matrix,
        columns=CHEMBL_COLUMNS,
        name="chembl-like",
        metadata={
            "seed": seed,
            "num_exceptions": num_exceptions,
            "substitute_for": "ChEMBL v2 (428,913 molecules)",
        },
    )


def paper_query_molecule(dataset: Dataset) -> np.ndarray:
    """The query molecule of Section 6.3: drug-likeness 11, molecular weight 250.

    The other attributes are set to the dataset medians — they do not participate
    in the Table 1 query (only drug-likeness is attractive and weight repulsive).
    """
    point = np.median(dataset.matrix, axis=0)
    point[dataset.column_index("drug_likeness")] = 11.0
    point[dataset.column_index("molecular_weight")] = 250.0
    return point
