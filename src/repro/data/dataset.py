"""A lightweight column-named dataset wrapper shared by generators and experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """An ``(n, m)`` matrix of points with column names and provenance metadata."""

    matrix: np.ndarray
    columns: Tuple[str, ...]
    name: str = "dataset"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=float)
        if self.matrix.ndim != 2:
            raise ValueError("matrix must be 2-dimensional")
        self.columns = tuple(str(c) for c in self.columns)
        if len(self.columns) != self.matrix.shape[1]:
            raise ValueError(
                f"{self.matrix.shape[1]} columns in the matrix but "
                f"{len(self.columns)} column names"
            )
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("column names must be unique")

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return self.matrix.shape[0]

    @property
    def num_dims(self) -> int:
        return self.matrix.shape[1]

    def column_index(self, name: str) -> int:
        """Index of a named column."""
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}; available: {self.columns}") from None

    def column(self, name: str) -> np.ndarray:
        """Values of a named column."""
        return self.matrix[:, self.column_index(name)]

    def point(self, row: int) -> np.ndarray:
        """One row of the matrix."""
        return self.matrix[row]

    # ------------------------------------------------------------------ slicing
    def sample(
        self,
        count: int,
        seed: int = 0,
        replace: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> "Dataset":
        """A random sample of ``count`` rows (seeded, for reproducible workloads)."""
        if rng is None:
            rng = np.random.default_rng(seed)
        count = min(count, len(self)) if not replace else count
        rows = rng.choice(len(self), size=count, replace=replace)
        return Dataset(
            matrix=self.matrix[rows],
            columns=self.columns,
            name=f"{self.name}[sample={count}]",
            metadata=dict(self.metadata),
        )

    def head(self, count: int) -> "Dataset":
        """The first ``count`` rows."""
        return Dataset(
            matrix=self.matrix[:count],
            columns=self.columns,
            name=f"{self.name}[head={count}]",
            metadata=dict(self.metadata),
        )

    def select(self, names: Sequence[str]) -> "Dataset":
        """A dataset restricted to the named columns, in the given order."""
        indexes = [self.column_index(name) for name in names]
        return Dataset(
            matrix=self.matrix[:, indexes],
            columns=tuple(names),
            name=self.name,
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------ summaries
    def describe(self) -> Dict[str, Dict[str, float]]:
        """Per-column mean / std / min / max (used in the qualitative experiment)."""
        summary: Dict[str, Dict[str, float]] = {}
        for i, name in enumerate(self.columns):
            values = self.matrix[:, i]
            summary[name] = {
                "mean": float(values.mean()) if len(values) else float("nan"),
                "std": float(values.std()) if len(values) else float("nan"),
                "min": float(values.min()) if len(values) else float("nan"),
                "max": float(values.max()) if len(values) else float("nan"),
            }
        return summary
