"""Synthetic dataset generators (Section 6.1).

The paper evaluates on points drawn from three standard distributions of the
top-k / skyline literature:

``uniform``
    Independent, identically distributed coordinates in ``[0, 1]``.
``correlated``
    Points concentrated around the main diagonal: a point that is large in one
    dimension tends to be large in all of them.
``anti-correlated``
    Points concentrated around the plane ``sum_i x_i = m/2``: a point that is
    large in one dimension tends to be small in the others.

A clustered distribution is included as an extra stress test for the index
structures (it is not part of the paper's evaluation but exercises skewed
envelope shapes).  All generators are seeded and return :class:`Dataset`
objects; none ever touches the global numpy random state.  Every generator
accepts either a ``seed`` (a private :func:`numpy.random.default_rng` stream
is derived from it) or an explicit ``rng`` generator to draw from — passing
``rng`` lets callers interleave several generators on one reproducible stream
(golden regeneration stays order-independent either way).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "DISTRIBUTIONS",
    "generate_uniform",
    "generate_correlated",
    "generate_anticorrelated",
    "generate_clustered",
    "generate_dataset",
]


def _column_names(num_dims: int) -> tuple:
    return tuple(f"d{i}" for i in range(num_dims))


def _resolve_rng(
    seed: int, rng: Optional[np.random.Generator]
) -> np.random.Generator:
    """The stream to draw from: an explicit ``rng`` wins over the ``seed``."""
    if rng is not None:
        return rng
    return np.random.default_rng(seed)


def generate_uniform(
    num_points: int,
    num_dims: int,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Independent uniform coordinates in ``[0, 1]``."""
    rng = _resolve_rng(seed, rng)
    matrix = rng.random((num_points, num_dims))
    return Dataset(
        matrix=matrix,
        columns=_column_names(num_dims),
        name="uniform",
        metadata={"distribution": "uniform", "seed": seed},
    )


def generate_correlated(
    num_points: int,
    num_dims: int,
    seed: int = 0,
    noise: float = 0.08,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Coordinates positively correlated across dimensions (diagonal band)."""
    rng = _resolve_rng(seed, rng)
    base = rng.random(num_points)
    jitter = rng.normal(0.0, noise, size=(num_points, num_dims))
    matrix = np.clip(base[:, None] + jitter, 0.0, 1.0)
    return Dataset(
        matrix=matrix,
        columns=_column_names(num_dims),
        name="correlated",
        metadata={"distribution": "correlated", "seed": seed, "noise": noise},
    )


def generate_anticorrelated(
    num_points: int,
    num_dims: int,
    seed: int = 0,
    noise: float = 0.08,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Coordinates anti-correlated across dimensions (anti-diagonal band).

    Points are sampled around the hyperplane ``sum_i x_i = m / 2``: each point
    starts uniform, is recentred so its coordinates sum to a value drawn from a
    narrow normal around ``m / 2``, and is clipped back into the unit cube.
    """
    rng = _resolve_rng(seed, rng)
    raw = rng.random((num_points, num_dims))
    target_sum = rng.normal(num_dims / 2.0, noise * num_dims, size=num_points)
    current_sum = raw.sum(axis=1)
    matrix = raw + ((target_sum - current_sum) / num_dims)[:, None]
    matrix = np.clip(matrix, 0.0, 1.0)
    return Dataset(
        matrix=matrix,
        columns=_column_names(num_dims),
        name="anticorrelated",
        metadata={"distribution": "anticorrelated", "seed": seed, "noise": noise},
    )


def generate_clustered(
    num_points: int,
    num_dims: int,
    seed: int = 0,
    num_clusters: int = 8,
    spread: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> Dataset:
    """Gaussian clusters with centers uniform in the unit cube (extra stress test)."""
    rng = _resolve_rng(seed, rng)
    centers = rng.random((num_clusters, num_dims))
    assignments = rng.integers(0, num_clusters, size=num_points)
    matrix = centers[assignments] + rng.normal(0.0, spread, size=(num_points, num_dims))
    matrix = np.clip(matrix, 0.0, 1.0)
    return Dataset(
        matrix=matrix,
        columns=_column_names(num_dims),
        name="clustered",
        metadata={
            "distribution": "clustered",
            "seed": seed,
            "num_clusters": num_clusters,
            "spread": spread,
        },
    )


DISTRIBUTIONS: Dict[str, Callable[..., Dataset]] = {
    "uniform": generate_uniform,
    "correlated": generate_correlated,
    "anticorrelated": generate_anticorrelated,
    "clustered": generate_clustered,
}


def generate_dataset(
    distribution: str,
    num_points: int,
    num_dims: int,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> Dataset:
    """Dispatch to a named distribution generator (``rng`` overrides ``seed``)."""
    try:
        generator = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; available: {sorted(DISTRIBUTIONS)}"
        ) from None
    return generator(num_points, num_dims, seed=seed, rng=rng, **kwargs)
