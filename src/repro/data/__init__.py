"""Datasets for the experiments: synthetic distributions and a ChEMBL-like generator."""

from repro.data.chembl import generate_chembl_like
from repro.data.dataset import Dataset
from repro.data.generators import (
    DISTRIBUTIONS,
    generate_anticorrelated,
    generate_clustered,
    generate_correlated,
    generate_dataset,
    generate_uniform,
)

__all__ = [
    "Dataset",
    "DISTRIBUTIONS",
    "generate_dataset",
    "generate_uniform",
    "generate_correlated",
    "generate_anticorrelated",
    "generate_clustered",
    "generate_chembl_like",
]
