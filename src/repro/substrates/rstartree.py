"""An in-memory R*-tree over multidimensional points.

This is the hierarchical index substrate the BRS baseline (Tao et al.) is built
on.  It follows the classic R*-tree design: ChooseSubtree with minimum overlap
enlargement at the leaf level, the R* axis/index split based on margin and
overlap, and optional forced reinsertion.  A Sort-Tile-Recursive (STR) bulk load
is provided for building the index over a full dataset, which is how the
benchmark harness constructs it (the paper builds the R*-tree once per dataset).

The tree stores points (row id + coordinate vector) at the leaves and exposes:

* ``insert`` / ``delete`` — standard dynamic updates,
* ``range_query`` — all points inside an :class:`MBR`,
* ``best_first`` — a generic best-first traversal driven by caller-provided
  upper-bound functions, which is exactly what a branch-and-bound top-k needs.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import IndexStats
from repro.substrates.mbr import MBR

__all__ = ["RStarTree", "default_node_capacity"]


#: Node capacities the paper tuned for each dimensionality (Section 6.1).
_PAPER_NODE_CAPACITIES = {2: 28, 4: 16, 6: 12, 8: 9}


def default_node_capacity(num_dims: int) -> int:
    """The paper's tuned R*-tree node capacity for a given dimensionality.

    Intermediate dimensionalities interpolate between the tuned values; anything
    outside the tuned range falls back to the nearest endpoint.
    """
    if num_dims in _PAPER_NODE_CAPACITIES:
        return _PAPER_NODE_CAPACITIES[num_dims]
    known = sorted(_PAPER_NODE_CAPACITIES)
    if num_dims <= known[0]:
        return _PAPER_NODE_CAPACITIES[known[0]]
    if num_dims >= known[-1]:
        return _PAPER_NODE_CAPACITIES[known[-1]]
    below = max(d for d in known if d < num_dims)
    above = min(d for d in known if d > num_dims)
    fraction = (num_dims - below) / (above - below)
    value = (1 - fraction) * _PAPER_NODE_CAPACITIES[below] + fraction * _PAPER_NODE_CAPACITIES[above]
    return max(4, int(round(value)))


class _Entry:
    """A leaf entry: one data point."""

    __slots__ = ("row_id", "point", "mbr")

    def __init__(self, row_id: int, point: np.ndarray) -> None:
        self.row_id = int(row_id)
        self.point = np.asarray(point, dtype=float)
        self.mbr = MBR.from_point(self.point)


class _RNode:
    __slots__ = ("level", "children", "entries", "mbr", "parent")

    def __init__(self, level: int) -> None:
        self.level = level  # 0 = leaf
        self.children: List["_RNode"] = []
        self.entries: List[_Entry] = []
        self.mbr: Optional[MBR] = None
        self.parent: Optional["_RNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def members(self) -> List:
        return self.entries if self.is_leaf else self.children

    def recompute_mbr(self) -> None:
        members = self.members()
        if not members:
            self.mbr = None
            return
        self.mbr = MBR.union_of(member.mbr for member in members)


class RStarTree:
    """In-memory R*-tree over points, with STR bulk loading."""

    def __init__(
        self,
        num_dims: int,
        node_capacity: Optional[int] = None,
        min_fill: float = 0.4,
        forced_reinsert: bool = True,
    ) -> None:
        if num_dims < 1:
            raise ValueError("num_dims must be >= 1")
        self.num_dims = int(num_dims)
        self.node_capacity = int(node_capacity or default_node_capacity(num_dims))
        if self.node_capacity < 4:
            raise ValueError("node capacity must be >= 4")
        self.min_entries = max(2, int(math.floor(self.node_capacity * min_fill)))
        self.forced_reinsert = forced_reinsert
        self._root = _RNode(level=0)
        self._size = 0
        self._build_seconds = 0.0

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._root.level + 1

    # ------------------------------------------------------------------ bulk load
    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        row_ids: Optional[Sequence[int]] = None,
        node_capacity: Optional[int] = None,
    ) -> "RStarTree":
        """Build a tree with Sort-Tile-Recursive packing (bottom-up, full nodes)."""
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("points must be an (n, d) matrix")
        tree = cls(num_dims=matrix.shape[1], node_capacity=node_capacity)
        started = time.perf_counter()
        rows = (
            np.arange(len(matrix), dtype=np.int64)
            if row_ids is None
            else np.asarray(list(row_ids), dtype=np.int64)
        )
        if len(rows) != len(matrix):
            raise ValueError("row_ids must align with points")
        if len(matrix) == 0:
            tree._build_seconds = time.perf_counter() - started
            return tree

        entries = [_Entry(row, matrix[i]) for i, row in enumerate(rows)]
        level_nodes = tree._str_pack_leaves(entries)
        level = 1
        while len(level_nodes) > 1:
            level_nodes = tree._str_pack_internal(level_nodes, level)
            level += 1
        tree._root = level_nodes[0]
        tree._size = len(entries)
        tree._build_seconds = time.perf_counter() - started
        return tree

    def _str_slices(self, items: List, key_dim: int, groups: int) -> List[List]:
        items = sorted(items, key=lambda item: float(self._item_center(item)[key_dim]))
        size = math.ceil(len(items) / groups)
        return [items[i:i + size] for i in range(0, len(items), size)]

    @staticmethod
    def _item_center(item) -> np.ndarray:
        return item.mbr.center()

    def _str_pack(self, items: List, make_node: Callable[[List], _RNode]) -> List[_RNode]:
        capacity = self.node_capacity
        num_nodes = math.ceil(len(items) / capacity)
        slices = math.ceil(num_nodes ** (1.0 / self.num_dims)) if num_nodes > 1 else 1
        groups = [items]
        for dim in range(self.num_dims - 1):
            next_groups: List[List] = []
            for group in groups:
                group_nodes = math.ceil(len(group) / capacity)
                group_slices = math.ceil(group_nodes ** (1.0 / (self.num_dims - dim))) or 1
                next_groups.extend(self._str_slices(group, dim, max(group_slices, 1)))
            groups = next_groups
        nodes: List[_RNode] = []
        for group in groups:
            ordered = sorted(
                group, key=lambda item: float(self._item_center(item)[self.num_dims - 1])
            )
            for i in range(0, len(ordered), capacity):
                nodes.append(make_node(ordered[i:i + capacity]))
        del slices  # retained for readability of the classic STR description
        return nodes

    def _str_pack_leaves(self, entries: List[_Entry]) -> List[_RNode]:
        def make_leaf(chunk: List[_Entry]) -> _RNode:
            node = _RNode(level=0)
            node.entries = list(chunk)
            node.recompute_mbr()
            return node

        return self._str_pack(entries, make_leaf)

    def _str_pack_internal(self, children: List[_RNode], level: int) -> List[_RNode]:
        def make_internal(chunk: List[_RNode]) -> _RNode:
            node = _RNode(level=level)
            node.children = list(chunk)
            for child in chunk:
                child.parent = node
            node.recompute_mbr()
            return node

        return self._str_pack(children, make_internal)

    # ------------------------------------------------------------------ insertion
    def insert(self, point: Sequence[float], row_id: int) -> None:
        """Insert one point with the R* ChooseSubtree / split / reinsert machinery."""
        started = time.perf_counter()
        entry = _Entry(row_id, np.asarray(point, dtype=float))
        if entry.point.shape != (self.num_dims,):
            raise ValueError(f"point must have {self.num_dims} dimensions")
        self._insert_entry(entry, level=0, reinserted_levels=set())
        self._size += 1
        self._build_seconds += time.perf_counter() - started

    def _insert_entry(self, item, level: int, reinserted_levels: set) -> None:
        node = self._choose_subtree(item, level)
        if node.is_leaf:
            node.entries.append(item)
        else:
            node.children.append(item)
            item.parent = node
        self._extend_upward(node, item.mbr)
        if len(node.members()) > self.node_capacity:
            self._handle_overflow(node, reinserted_levels)

    def _choose_subtree(self, item, level: int) -> _RNode:
        node = self._root
        while node.level > level:
            children = node.children
            if node.level == level + 1 and node.level == 1:
                # Children are leaves: minimize overlap enlargement (R* heuristic).
                best = min(
                    children,
                    key=lambda child: (
                        self._overlap_enlargement(children, child, item.mbr),
                        child.mbr.enlargement(item.mbr),
                        child.mbr.area(),
                    ),
                )
            else:
                best = min(
                    children,
                    key=lambda child: (child.mbr.enlargement(item.mbr), child.mbr.area()),
                )
            node = best
        return node

    @staticmethod
    def _overlap_enlargement(siblings: List[_RNode], candidate: _RNode, mbr: MBR) -> float:
        enlarged = candidate.mbr.union(mbr)
        before = sum(
            candidate.mbr.overlap_area(other.mbr) for other in siblings if other is not candidate
        )
        after = sum(
            enlarged.overlap_area(other.mbr) for other in siblings if other is not candidate
        )
        return after - before

    def _extend_upward(self, node: _RNode, mbr: MBR) -> None:
        while node is not None:
            if node.mbr is None:
                node.recompute_mbr()
            else:
                node.mbr.extend(mbr)
            node = node.parent

    def _handle_overflow(self, node: _RNode, reinserted_levels: set) -> None:
        if (
            self.forced_reinsert
            and node is not self._root
            and node.level not in reinserted_levels
        ):
            reinserted_levels.add(node.level)
            self._reinsert(node, reinserted_levels)
        else:
            self._split(node, reinserted_levels)

    def _reinsert(self, node: _RNode, reinserted_levels: set) -> None:
        """Remove the 30% of members farthest from the node center and re-add them."""
        members = node.members()
        center = node.mbr.center()
        members.sort(
            key=lambda member: -float(np.sum((member.mbr.center() - center) ** 2))
        )
        removed_count = max(1, int(round(0.3 * len(members))))
        removed = members[:removed_count]
        kept = members[removed_count:]
        if node.is_leaf:
            node.entries = kept
        else:
            node.children = kept
        node.recompute_mbr()
        self._shrink_upward(node.parent)
        for member in removed:
            self._insert_entry(member, node.level, reinserted_levels)

    def _split(self, node: _RNode, reinserted_levels: set) -> None:
        members = node.members()
        first_group, second_group = self._rstar_split_groups(members)
        sibling = _RNode(level=node.level)
        if node.is_leaf:
            node.entries = first_group
            sibling.entries = second_group
        else:
            node.children = first_group
            sibling.children = second_group
            for child in second_group:
                child.parent = sibling
        node.recompute_mbr()
        sibling.recompute_mbr()

        parent = node.parent
        if parent is None:
            new_root = _RNode(level=node.level + 1)
            new_root.children = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbr()
            self._root = new_root
            return
        sibling.parent = parent
        parent.children.append(sibling)
        self._shrink_upward(parent)
        if len(parent.children) > self.node_capacity:
            self._handle_overflow(parent, reinserted_levels)

    def _rstar_split_groups(self, members: List) -> Tuple[List, List]:
        """R* split: choose the axis with minimal margin sum, then the distribution
        with minimal overlap (ties by area)."""
        best = None
        min_entries = self.min_entries
        for dim in range(self.num_dims):
            for sort_key in (
                lambda member: (float(member.mbr.lower[dim]), float(member.mbr.upper[dim])),
                lambda member: (float(member.mbr.upper[dim]), float(member.mbr.lower[dim])),
            ):
                ordered = sorted(members, key=sort_key)
                for split_at in range(min_entries, len(ordered) - min_entries + 1):
                    left = ordered[:split_at]
                    right = ordered[split_at:]
                    left_mbr = MBR.union_of(member.mbr for member in left)
                    right_mbr = MBR.union_of(member.mbr for member in right)
                    margin = left_mbr.margin() + right_mbr.margin()
                    overlap = left_mbr.overlap_area(right_mbr)
                    area = left_mbr.area() + right_mbr.area()
                    candidate = (margin, overlap, area, left, right)
                    if best is None or candidate[:3] < best[:3]:
                        best = candidate
        if best is None:
            middle = len(members) // 2
            return list(members[:middle]), list(members[middle:])
        return list(best[3]), list(best[4])

    def _shrink_upward(self, node: Optional[_RNode]) -> None:
        while node is not None:
            node.recompute_mbr()
            node = node.parent

    # ------------------------------------------------------------------ deletion
    def delete(self, row_id: int, point: Sequence[float]) -> bool:
        """Delete the entry with the given row id (point used to guide the search)."""
        target = np.asarray(point, dtype=float)
        leaf = self._find_leaf(self._root, row_id, target)
        if leaf is None:
            return False
        leaf.entries = [entry for entry in leaf.entries if entry.row_id != row_id]
        self._size -= 1
        self._condense(leaf)
        return True

    def _find_leaf(self, node: _RNode, row_id: int, point: np.ndarray) -> Optional[_RNode]:
        if node.mbr is not None and not node.mbr.contains_point(point):
            return None
        if node.is_leaf:
            if any(entry.row_id == row_id for entry in node.entries):
                return node
            return None
        for child in node.children:
            found = self._find_leaf(child, row_id, point)
            if found is not None:
                return found
        return None

    def _condense(self, leaf: _RNode) -> None:
        orphans: List[_Entry] = []
        node = leaf
        while node.parent is not None:
            parent = node.parent
            if len(node.members()) < self.min_entries:
                parent.children.remove(node)
                orphans.extend(self._collect_entries(node))
            else:
                node.recompute_mbr()
            node = parent
        self._root.recompute_mbr()
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        self._size -= len(orphans)
        for entry in orphans:
            self.insert(entry.point, entry.row_id)

    def _collect_entries(self, node: _RNode) -> List[_Entry]:
        if node.is_leaf:
            return list(node.entries)
        collected: List[_Entry] = []
        for child in node.children:
            collected.extend(self._collect_entries(child))
        return collected

    # ------------------------------------------------------------------ queries
    def range_query(self, box: MBR) -> List[Tuple[int, np.ndarray]]:
        """All ``(row_id, point)`` pairs inside ``box``."""
        results: List[Tuple[int, np.ndarray]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                for entry in node.entries:
                    if box.contains_point(entry.point):
                        results.append((entry.row_id, entry.point))
            else:
                stack.extend(node.children)
        return results

    def best_first(
        self,
        node_bound: Callable[[MBR], float],
        point_score: Callable[[np.ndarray], float],
    ) -> Iterator[Tuple[int, np.ndarray, float, int]]:
        """Best-first traversal by descending score.

        ``node_bound(mbr)`` must upper-bound ``point_score`` over every point in
        the MBR.  Yields ``(row_id, point, score, nodes_visited_so_far)`` in
        non-increasing score order — the branch-and-bound loop BRS needs.
        """
        counter = itertools.count()
        heap: List[Tuple[float, int, bool, object]] = []
        nodes_visited = 0
        if self._root.mbr is not None:
            heapq.heappush(heap, (-node_bound(self._root.mbr), next(counter), False, self._root))
        while heap:
            negative_bound, _, is_point, payload = heapq.heappop(heap)
            if is_point:
                entry = payload
                yield entry.row_id, entry.point, -negative_bound, nodes_visited
                continue
            node = payload
            nodes_visited += 1
            if node.is_leaf:
                for entry in node.entries:
                    heapq.heappush(
                        heap, (-point_score(entry.point), next(counter), True, entry)
                    )
            else:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    heapq.heappush(
                        heap, (-node_bound(child.mbr), next(counter), False, child)
                    )

    def iter_entries(self) -> Iterator[Tuple[int, np.ndarray]]:
        """All stored ``(row_id, point)`` pairs (test helper)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.row_id, entry.point
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------ stats
    def stats(self) -> IndexStats:
        num_nodes = 0
        num_leaves = 0
        memory = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            num_nodes += 1
            memory += 2 * 8 * self.num_dims  # the node MBR
            if node.is_leaf:
                num_leaves += 1
                memory += len(node.entries) * (8 + 8 * self.num_dims)
            else:
                memory += 8 * len(node.children)
                stack.extend(node.children)
        return IndexStats(
            name="rstar-tree",
            num_points=self._size,
            num_nodes=num_nodes,
            num_regions=num_leaves,
            height=self.height,
            branching=self.node_capacity,
            memory_bytes=memory,
            build_seconds=self._build_seconds,
        )
