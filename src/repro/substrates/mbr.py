"""Minimum bounding rectangles (MBRs) for the in-memory R*-tree."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MBR"]


class MBR:
    """An axis-aligned minimum bounding rectangle in ``d`` dimensions."""

    __slots__ = ("lower", "upper")

    def __init__(self, lower: Sequence[float], upper: Sequence[float]) -> None:
        self.lower = np.asarray(lower, dtype=float).copy()
        self.upper = np.asarray(upper, dtype=float).copy()
        if self.lower.shape != self.upper.shape or self.lower.ndim != 1:
            raise ValueError("lower and upper must be 1-d arrays of equal length")
        if np.any(self.lower > self.upper):
            raise ValueError("lower bound exceeds upper bound")

    # ------------------------------------------------------------- constructors
    @classmethod
    def from_point(cls, point: Sequence[float]) -> "MBR":
        return cls(point, point)

    @classmethod
    def from_points(cls, points: np.ndarray) -> "MBR":
        matrix = np.asarray(points, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise ValueError("from_points needs a non-empty (n, d) matrix")
        return cls(matrix.min(axis=0), matrix.max(axis=0))

    @classmethod
    def union_of(cls, rectangles: Iterable["MBR"]) -> "MBR":
        rectangles = list(rectangles)
        if not rectangles:
            raise ValueError("cannot take the union of zero rectangles")
        lower = np.min([r.lower for r in rectangles], axis=0)
        upper = np.max([r.upper for r in rectangles], axis=0)
        return cls(lower, upper)

    # ------------------------------------------------------------------ basics
    @property
    def num_dims(self) -> int:
        return len(self.lower)

    def copy(self) -> "MBR":
        return MBR(self.lower, self.upper)

    def area(self) -> float:
        """Hyper-volume of the rectangle."""
        return float(np.prod(self.upper - self.lower))

    def margin(self) -> float:
        """Sum of the edge lengths (the R* split heuristic's perimeter measure)."""
        return float(np.sum(self.upper - self.lower))

    def center(self) -> np.ndarray:
        return (self.lower + self.upper) / 2.0

    def union(self, other: "MBR") -> "MBR":
        return MBR(np.minimum(self.lower, other.lower), np.maximum(self.upper, other.upper))

    def enlargement(self, other: "MBR") -> float:
        """Area increase needed to also cover ``other``."""
        return self.union(other).area() - self.area()

    def intersects(self, other: "MBR") -> bool:
        return bool(np.all(self.lower <= other.upper) and np.all(other.lower <= self.upper))

    def overlap_area(self, other: "MBR") -> float:
        """Area of the intersection (0 when disjoint)."""
        lower = np.maximum(self.lower, other.lower)
        upper = np.minimum(self.upper, other.upper)
        extents = upper - lower
        if np.any(extents < 0):
            return 0.0
        return float(np.prod(extents))

    def contains_point(self, point: Sequence[float]) -> bool:
        values = np.asarray(point, dtype=float)
        return bool(np.all(self.lower <= values) and np.all(values <= self.upper))

    def extend_point(self, point: Sequence[float]) -> None:
        """Grow the rectangle in place to cover ``point``."""
        values = np.asarray(point, dtype=float)
        np.minimum(self.lower, values, out=self.lower)
        np.maximum(self.upper, values, out=self.upper)

    def extend(self, other: "MBR") -> None:
        """Grow the rectangle in place to cover ``other``."""
        np.minimum(self.lower, other.lower, out=self.lower)
        np.maximum(self.upper, other.upper, out=self.upper)

    # --------------------------------------------------- distances to a query point
    def min_abs_difference(self, dim: int, value: float) -> float:
        """Minimum ``|p_dim - value|`` over points in the rectangle."""
        if self.lower[dim] <= value <= self.upper[dim]:
            return 0.0
        return float(min(abs(self.lower[dim] - value), abs(self.upper[dim] - value)))

    def max_abs_difference(self, dim: int, value: float) -> float:
        """Maximum ``|p_dim - value|`` over points in the rectangle."""
        return float(max(abs(self.lower[dim] - value), abs(self.upper[dim] - value)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MBR):
            return NotImplemented
        return bool(np.array_equal(self.lower, other.lower) and np.array_equal(self.upper, other.upper))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MBR(lower={self.lower.tolist()}, upper={self.upper.tolist()})"
