"""Supporting data structures: sorted columns, bounded heaps, MBRs and an R*-tree.

These are the substrates the SD-Index and the baselines are built on.  They are
independent of the SD-Query semantics and usable on their own.
"""

from repro.substrates.bidirectional import FarthestFirstExplorer, NearestFirstExplorer
from repro.substrates.heaps import BoundedMaxHeap
from repro.substrates.mbr import MBR
from repro.substrates.rstartree import RStarTree
from repro.substrates.sorted_column import SortedColumn

__all__ = [
    "SortedColumn",
    "NearestFirstExplorer",
    "FarthestFirstExplorer",
    "BoundedMaxHeap",
    "MBR",
    "RStarTree",
]
