"""Small heap utilities used across the query algorithms."""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

__all__ = ["BoundedMaxHeap"]


class BoundedMaxHeap:
    """Keeps the ``k`` highest-scoring ``(score, item)`` pairs seen so far.

    Internally a min-heap of size at most ``k``: the root is the *worst* retained
    score, which doubles as the pruning threshold of every top-k algorithm
    ("the k-th best score so far").
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._heap: List[Tuple[float, int]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return len(self._heap) >= self.capacity

    def kth_score(self) -> Optional[float]:
        """The lowest retained score, or None while the heap is not yet full."""
        if not self.is_full:
            return None
        return self._heap[0][0]

    def would_accept(self, score: float) -> bool:
        """True if pushing ``score`` would change the retained set."""
        kth = self.kth_score()
        return kth is None or score > kth

    def push(self, score: float, item) -> bool:
        """Offer an item; returns True if it was retained."""
        entry = (float(score), self._counter, item)
        self._counter += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return True
        if entry[0] > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def items(self) -> List[Tuple[float, object]]:
        """Retained ``(score, item)`` pairs, best first."""
        ordered = sorted(self._heap, key=lambda entry: (-entry[0], entry[1]))
        return [(score, item) for score, _, item in ordered]

    def __iter__(self) -> Iterator[Tuple[float, object]]:
        return iter(self.items())
