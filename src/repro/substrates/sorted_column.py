"""A single dimension kept in sorted order, with value/rank lookups.

Both the adapted Threshold Algorithm baseline and the 1D subproblems of the
SD-Index (Section 5) keep each dimension in a sorted container and walk it from
either a query value (attractive dimensions) or from its extremes (repulsive
dimensions).  :class:`SortedColumn` is that container: it is an immutable,
numpy-backed sorted projection of one dataset column that remembers which row
each value came from.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SortedColumn"]


class SortedColumn:
    """One dataset column sorted ascending, carrying the originating row ids."""

    def __init__(self, values: Sequence[float], row_ids: Optional[Sequence[int]] = None) -> None:
        data = np.asarray(values, dtype=float)
        if data.ndim != 1:
            raise ValueError("a sorted column is built from a 1-d array")
        rows = (
            np.arange(len(data), dtype=np.int64)
            if row_ids is None
            else np.asarray(list(row_ids), dtype=np.int64)
        )
        if rows.shape != data.shape:
            raise ValueError("row_ids must align with values")
        order = np.argsort(data, kind="stable")
        self._values = data[order]
        self._rows = rows[order]

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        for row, value in zip(self._rows, self._values):
            yield int(row), float(value)

    @property
    def values(self) -> np.ndarray:
        """The sorted values (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def row_ids(self) -> np.ndarray:
        """Row ids aligned with :attr:`values` (read-only view)."""
        view = self._rows.view()
        view.flags.writeable = False
        return view

    def entry(self, position: int) -> Tuple[int, float]:
        """``(row_id, value)`` at a sorted position."""
        return int(self._rows[position]), float(self._values[position])

    # ------------------------------------------------------------------ lookups
    def rank_of(self, value: float) -> int:
        """Number of entries strictly smaller than ``value``."""
        return int(np.searchsorted(self._values, value, side="left"))

    def min(self) -> float:
        if not len(self):
            raise ValueError("column is empty")
        return float(self._values[0])

    def max(self) -> float:
        if not len(self):
            raise ValueError("column is empty")
        return float(self._values[-1])

    def farthest_distance(self, value: float) -> float:
        """Largest ``|v - value|`` over the column (0 for an empty column)."""
        if not len(self):
            return 0.0
        return max(abs(self.min() - value), abs(self.max() - value))

    def nearest_distance(self, value: float) -> float:
        """Smallest ``|v - value|`` over the column (0 for an empty column)."""
        if not len(self):
            return 0.0
        position = self.rank_of(value)
        best = np.inf
        if position < len(self):
            best = abs(float(self._values[position]) - value)
        if position > 0:
            best = min(best, abs(float(self._values[position - 1]) - value))
        return float(best)

    def memory_bytes(self) -> int:
        """Analytic memory estimate: one float and one id per entry."""
        return 16 * len(self)
