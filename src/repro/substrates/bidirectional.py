"""Bidirectional explorers over a :class:`SortedColumn` (Section 5, 1D subproblems).

Two access patterns are needed when a single dimension forms its own subproblem:

* an *attractive* dimension is explored nearest-first from the query value, using
  two pointers that start at the insertion position of the query value and move
  outwards (the paper's example on the ``Coverage`` column);
* a *repulsive* dimension is explored farthest-first, using two pointers that
  start at the two extremes of the sorted order and move inwards.

Both explorers yield ``(row_id, absolute_distance)`` pairs; the distance sequence
is monotone (non-decreasing for nearest-first, non-increasing for farthest-first),
which is exactly the property the threshold aggregation relies on.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.substrates.sorted_column import SortedColumn

__all__ = ["NearestFirstExplorer", "FarthestFirstExplorer"]


class NearestFirstExplorer:
    """Yield rows of a column ordered by increasing distance to a query value."""

    def __init__(self, column: SortedColumn, query_value: float) -> None:
        self._column = column
        self._query_value = float(query_value)
        position = column.rank_of(self._query_value)
        self._left = position - 1
        self._right = position
        self._last_distance: Optional[float] = None

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return self

    def _candidates(self) -> Tuple[Optional[float], Optional[float]]:
        left_distance = None
        right_distance = None
        if self._left >= 0:
            _, value = self._column.entry(self._left)
            left_distance = abs(value - self._query_value)
        if self._right < len(self._column):
            _, value = self._column.entry(self._right)
            right_distance = abs(value - self._query_value)
        return left_distance, right_distance

    def __next__(self) -> Tuple[int, float]:
        left_distance, right_distance = self._candidates()
        if left_distance is None and right_distance is None:
            raise StopIteration
        take_left = right_distance is None or (
            left_distance is not None and left_distance <= right_distance
        )
        if take_left:
            row, value = self._column.entry(self._left)
            self._left -= 1
        else:
            row, value = self._column.entry(self._right)
            self._right += 1
        distance = abs(value - self._query_value)
        self._last_distance = distance
        return row, distance

    def head_distance(self) -> Optional[float]:
        """Distance of the next entry without consuming it (None when exhausted)."""
        left_distance, right_distance = self._candidates()
        if left_distance is None and right_distance is None:
            return None
        if left_distance is None:
            return right_distance
        if right_distance is None:
            return left_distance
        return min(left_distance, right_distance)


class FarthestFirstExplorer:
    """Yield rows of a column ordered by decreasing distance to a query value."""

    def __init__(self, column: SortedColumn, query_value: float) -> None:
        self._column = column
        self._query_value = float(query_value)
        self._low = 0
        self._high = len(column) - 1

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return self

    def _candidates(self) -> Tuple[Optional[float], Optional[float]]:
        if self._low > self._high:
            return None, None
        _, low_value = self._column.entry(self._low)
        _, high_value = self._column.entry(self._high)
        return abs(low_value - self._query_value), abs(high_value - self._query_value)

    def __next__(self) -> Tuple[int, float]:
        low_distance, high_distance = self._candidates()
        if low_distance is None:
            raise StopIteration
        if low_distance >= high_distance:
            row, value = self._column.entry(self._low)
            self._low += 1
        else:
            row, value = self._column.entry(self._high)
            self._high -= 1
        return row, abs(value - self._query_value)

    def head_distance(self) -> Optional[float]:
        """Distance of the next entry without consuming it (None when exhausted)."""
        low_distance, high_distance = self._candidates()
        if low_distance is None:
            return None
        return max(low_distance, high_distance)
