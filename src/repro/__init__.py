"""SD-Query: top-k queries over a mixture of attractive and repulsive dimensions.

A from-scratch reproduction of Ranu & Singh, "Answering Top-k Queries Over a
Mixture of Attractive and Repulsive Dimensions" (PVLDB 5(3), 2011).

The primary entry points are:

* :class:`repro.SDIndex` -- the general top-k index (runtime ``k`` and weights),
* :class:`repro.Top1Index` -- the compact region index for apriori-known ``k``,
* :class:`repro.SDQuery` / :func:`repro.sd_score` -- the query model and exact scorer,
* :mod:`repro.baselines` -- sequential scan, adapted TA, BRS and PE comparators,
* :mod:`repro.data` -- synthetic dataset generators used by the experiments,
* :mod:`repro.experiments` -- regeneration of every figure and table of the paper,
* :mod:`repro.serving` -- the asyncio coalescing serving front end (HTTP + JSON),
* :mod:`repro.faults` -- the deterministic chaos-injection fault plane.
"""

from repro.core.angles import AngleGrid
from repro.core.batch import BatchQuerySpec, QuerySession, SessionSnapshot
from repro.core.deadline import NO_TIMEOUT, Deadline, DeadlineExceeded
from repro.core.epoch import Epoch, EpochManager
from repro.core.geometry import Angle
from repro.core.persistence import DurableIndex, SnapshotFormatError, WriteAheadLog
from repro.core.query import DimensionRole, QueryWeights, SDQuery, sd_score, sd_scores
from repro.core.results import (
    BatchResult,
    IndexStats,
    Match,
    ShardCoverage,
    TopKResult,
)
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex, ShardedXYIndex, ShardRouter
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from repro.faults import FaultPlane, FaultRule, InjectedFault
from repro.serving import (
    BreakerOpen,
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    SDQueryServer,
    ServingClient,
    ServingConfig,
)

__version__ = "0.1.0"

__all__ = [
    "Angle",
    "AngleGrid",
    "DimensionRole",
    "QueryWeights",
    "SDQuery",
    "sd_score",
    "sd_scores",
    "Match",
    "TopKResult",
    "BatchResult",
    "BatchQuerySpec",
    "QuerySession",
    "SessionSnapshot",
    "Epoch",
    "EpochManager",
    "DurableIndex",
    "SnapshotFormatError",
    "WriteAheadLog",
    "IndexStats",
    "ShardCoverage",
    "SDIndex",
    "ShardedIndex",
    "ShardedXYIndex",
    "ShardRouter",
    "Top1Index",
    "TopKIndex",
    "NO_TIMEOUT",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlane",
    "FaultRule",
    "InjectedFault",
    "BreakerOpen",
    "CircuitBreaker",
    "ResiliencePolicy",
    "RetryPolicy",
    "SDQueryServer",
    "ServingClient",
    "ServingConfig",
    "__version__",
]
