"""The adapted Threshold Algorithm (TA) baseline (Fagin et al., adapted per Section 6.1).

Each dimension is kept as a sorted list.  For a given query the algorithm walks
every dimension in order of decreasing *partial score contribution*:

* repulsive dimensions are walked farthest-first from the query value (their
  contribution ``alpha * |p_d - q_d|`` decreases along the walk),
* attractive dimensions are walked nearest-first from the query value (their
  contribution ``-beta * |p_d - q_d|`` also decreases along the walk).

Every point encountered under sorted access is fully scored by random access and
kept in a bounded heap; the walk stops once the k-th best full score reaches the
threshold obtained by summing the current positions' contributions — exactly the
TA stopping rule, with one-dimensional subproblems (which is what the SD-Index's
two-dimensional subproblems are compared against).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.base import TopKAlgorithm
from repro.core.query import SDQuery, make_fast_scorer
from repro.core.results import IndexStats, Match, TopKResult
from repro.substrates.bidirectional import FarthestFirstExplorer, NearestFirstExplorer
from repro.substrates.heaps import BoundedMaxHeap
from repro.substrates.sorted_column import SortedColumn

__all__ = ["ThresholdAlgorithm"]


class ThresholdAlgorithm(TopKAlgorithm):
    """TA over per-dimension sorted lists with bidirectional sorted access."""

    name = "TA"

    def __init__(self, data, repulsive, attractive, row_ids=None) -> None:
        super().__init__(data, repulsive, attractive, row_ids=row_ids)
        self._columns: Dict[int, SortedColumn] = {
            dim: SortedColumn(self.data[:, dim], row_ids=self.row_ids)
            for dim in self.repulsive + self.attractive
        }
        self._row_position = {int(row): i for i, row in enumerate(self.row_ids)}

    def query(self, query: SDQuery) -> TopKResult:
        self.check_query(query)
        alpha_of = dict(zip(query.repulsive, query.alpha))
        beta_of = dict(zip(query.attractive, query.beta))

        explorers = []
        weights = []
        signs = []
        for dim in query.repulsive:
            explorers.append(FarthestFirstExplorer(self._columns[dim], query.point[dim]))
            weights.append(alpha_of[dim])
            signs.append(1.0)
        for dim in query.attractive:
            explorers.append(NearestFirstExplorer(self._columns[dim], query.point[dim]))
            weights.append(beta_of[dim])
            signs.append(-1.0)

        heap = BoundedMaxHeap(query.k)
        seen: set = set()
        last_partial: List[float] = [math.inf] * len(explorers)
        candidates_examined = 0
        full_evaluations = 0
        fast_score = make_fast_scorer(query)

        while True:
            progressed = False
            for position, explorer in enumerate(explorers):
                try:
                    row, distance = next(explorer)
                except StopIteration:
                    last_partial[position] = -math.inf
                    continue
                progressed = True
                candidates_examined += 1
                last_partial[position] = signs[position] * weights[position] * distance
                if row in seen:
                    continue
                seen.add(row)
                point = self.data[self._row_position[row]]
                score = fast_score(point)
                full_evaluations += 1
                heap.push(score, int(row))
            threshold = sum(last_partial)
            kth = heap.kth_score()
            if kth is not None and kth >= threshold:
                break
            if not progressed:
                break

        matches = [
            Match(
                row_id=row,
                score=score,
                point=tuple(self.data[self._row_position[row]]),
            )
            for score, row in heap.items()
        ]
        return TopKResult(
            matches=matches,
            candidates_examined=candidates_examined,
            full_evaluations=full_evaluations,
            algorithm=self.name,
        )

    def stats(self) -> IndexStats:
        memory = sum(column.memory_bytes() for column in self._columns.values())
        return IndexStats(name=self.name, num_points=len(self.data), memory_bytes=memory)
