"""PE: progressive exploration of per-dimension indexes (Xin, Han & Chang, adapted).

The original "progressive and selective merge" computes top-k answers for ad-hoc
ranking functions by exploring the joint space of per-attribute hierarchical
indexes: the search state is a hyper-cell (a cross product of one interval per
dimension), cells are visited in order of their score upper bound, and a visited
cell is either split along one dimension or, once it has become narrow enough,
its points are materialized and scored.

This adaptation keeps each dimension in a sorted array (a balanced one-dimension
hierarchy) and represents a cell by one sorted-order interval per dimension.  The
bound of a cell is the SD-score upper bound obtained from the per-dimension value
ranges, identical in spirit to the BRS bound but over the joint space of the
per-attribute indexes rather than over R-tree MBRs.  Cells are refined best-first
by splitting their widest interval at its median; a cell whose population drops
below a small threshold is scanned exactly.  As in the paper, PE behaves well on
very low dimensionality and degrades towards a sequential scan as the number of
dimensions grows (the joint space fragments exponentially), which is the
behaviour Figure 7 reports.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import TopKAlgorithm
from repro.core.query import SDQuery, sd_score, sd_scores
from repro.core.results import IndexStats, Match, TopKResult
from repro.substrates.heaps import BoundedMaxHeap

__all__ = ["ProgressiveExplorationTopK"]


class ProgressiveExplorationTopK(TopKAlgorithm):
    """Best-first exploration of the joint space of per-dimension sorted indexes."""

    name = "PE"

    #: A cell whose every interval holds at most this many rows is scanned exactly.
    _SCAN_THRESHOLD = 64

    #: Work budget: once the number of visited cells exceeds this multiple of the
    #: dataset size, the remaining unseen points are scanned directly.  The joint
    #: space fragments exponentially with dimensionality, and the original paper's
    #: own evaluation shows PE degenerating to a sequential scan around six
    #: dimensions — the budget makes that degradation graceful instead of letting
    #: the frontier blow up.
    _CELL_BUDGET_FACTOR = 0.5

    def __init__(self, data, repulsive, attractive, row_ids=None) -> None:
        super().__init__(data, repulsive, attractive, row_ids=row_ids)
        self._dims = list(self.repulsive + self.attractive)
        # Per dimension: row positions sorted by value, and the sorted values.
        self._sorted_positions: Dict[int, np.ndarray] = {}
        self._sorted_values: Dict[int, np.ndarray] = {}
        for dim in self._dims:
            order = np.argsort(self.data[:, dim], kind="stable")
            self._sorted_positions[dim] = order
            self._sorted_values[dim] = self.data[order, dim]

    # ------------------------------------------------------------------ bounds
    def _interval_bound(self, dim: int, lo: int, hi: int, query: SDQuery,
                        weight: float, attractive: bool) -> float:
        """Upper bound of this dimension's contribution over sorted positions [lo, hi)."""
        values = self._sorted_values[dim]
        low_value = float(values[lo])
        high_value = float(values[hi - 1])
        q_value = query.point[dim]
        if attractive:
            if low_value <= q_value <= high_value:
                nearest = 0.0
            else:
                nearest = min(abs(low_value - q_value), abs(high_value - q_value))
            return -weight * nearest
        farthest = max(abs(low_value - q_value), abs(high_value - q_value))
        return weight * farthest

    def _cell_bound(self, cell: Dict[int, Tuple[int, int]], query: SDQuery,
                    alpha_of: Dict[int, float], beta_of: Dict[int, float]) -> float:
        bound = 0.0
        for dim in query.repulsive:
            lo, hi = cell[dim]
            bound += self._interval_bound(dim, lo, hi, query, alpha_of[dim], attractive=False)
        for dim in query.attractive:
            lo, hi = cell[dim]
            bound += self._interval_bound(dim, lo, hi, query, beta_of[dim], attractive=True)
        return bound

    def _cell_rows(self, cell: Dict[int, Tuple[int, int]]) -> np.ndarray:
        """Row positions contained in every interval of the cell (set intersection)."""
        best_dim = min(self._dims, key=lambda dim: cell[dim][1] - cell[dim][0])
        lo, hi = cell[best_dim]
        candidates = self._sorted_positions[best_dim][lo:hi]
        mask = np.ones(len(candidates), dtype=bool)
        for dim in self._dims:
            if dim == best_dim:
                continue
            lo, hi = cell[dim]
            values = self.data[candidates, dim]
            low_value = self._sorted_values[dim][lo]
            high_value = self._sorted_values[dim][hi - 1]
            mask &= (values >= low_value) & (values <= high_value)
        return candidates[mask]

    # ------------------------------------------------------------------ querying
    def query(self, query: SDQuery) -> TopKResult:
        self.check_query(query)
        n = len(self.data)
        if n == 0:
            return TopKResult(matches=[], algorithm=self.name)
        alpha_of = dict(zip(query.repulsive, query.alpha))
        beta_of = dict(zip(query.attractive, query.beta))

        heap = BoundedMaxHeap(query.k)
        seen: set = set()
        counter = itertools.count()
        root_cell = {dim: (0, n) for dim in self._dims}
        root_bound = self._cell_bound(root_cell, query, alpha_of, beta_of)
        frontier: List[Tuple[float, int, Dict[int, Tuple[int, int]]]] = [
            (-root_bound, next(counter), root_cell)
        ]
        candidates_examined = 0
        full_evaluations = 0
        cells_visited = 0
        cell_budget = max(256, int(self._CELL_BUDGET_FACTOR * n))

        while frontier:
            negative_bound, _, cell = heapq.heappop(frontier)
            bound = -negative_bound
            cells_visited += 1
            kth = heap.kth_score()
            if kth is not None and kth >= bound:
                break
            if cells_visited > cell_budget:
                # Exploration is no longer paying off: finish with a direct scan of
                # every point not yet evaluated (keeps the answer exact).
                all_scores = sd_scores(self.data, query)
                for position in range(n):
                    row = int(self.row_ids[position])
                    if row in seen:
                        continue
                    seen.add(row)
                    candidates_examined += 1
                    full_evaluations += 1
                    heap.push(float(all_scores[position]), row)
                break
            widths = {dim: cell[dim][1] - cell[dim][0] for dim in self._dims}
            if max(widths.values()) <= self._SCAN_THRESHOLD:
                for position in self._cell_rows(cell):
                    row = int(self.row_ids[position])
                    if row in seen:
                        continue
                    seen.add(row)
                    candidates_examined += 1
                    score = sd_score(self.data[position], query)
                    full_evaluations += 1
                    heap.push(score, row)
                continue
            # Split the widest interval at its median value position.
            split_dim = max(self._dims, key=lambda dim: widths[dim])
            lo, hi = cell[split_dim]
            middle = (lo + hi) // 2
            for new_range in ((lo, middle), (middle, hi)):
                if new_range[0] >= new_range[1]:
                    continue
                child = dict(cell)
                child[split_dim] = new_range
                child_bound = self._cell_bound(child, query, alpha_of, beta_of)
                kth = heap.kth_score()
                if kth is not None and child_bound <= kth:
                    continue
                heapq.heappush(frontier, (-child_bound, next(counter), child))

        matches = [
            Match(
                row_id=row,
                score=score,
                point=tuple(self.data[int(np.where(self.row_ids == row)[0][0])]),
            )
            for score, row in heap.items()
        ]
        return TopKResult(
            matches=matches,
            candidates_examined=candidates_examined,
            full_evaluations=full_evaluations,
            nodes_visited=cells_visited,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------ updates
    def insert(self, point: Sequence[float], row_id: int) -> None:
        """Insert a point by splicing it into every per-dimension sorted array.

        The per-attribute indexes are flat sorted arrays in this adaptation, so an
        insert costs O(n) per dimension — the behaviour the insertion-cost
        experiment (Figure 8b) reports for PE.
        """
        vector = np.asarray(point, dtype=float).reshape(1, -1)
        if vector.shape[1] != self.data.shape[1]:
            raise ValueError(f"point must have {self.data.shape[1]} dimensions")
        new_position = len(self.data)
        self.data = np.vstack([self.data, vector])
        self.row_ids = np.append(self.row_ids, np.int64(row_id))
        for dim in self._dims:
            value = float(vector[0, dim])
            insert_at = int(np.searchsorted(self._sorted_values[dim], value))
            self._sorted_values[dim] = np.insert(self._sorted_values[dim], insert_at, value)
            self._sorted_positions[dim] = np.insert(
                self._sorted_positions[dim], insert_at, new_position
            )

    def stats(self) -> IndexStats:
        memory = sum(
            self._sorted_positions[dim].nbytes + self._sorted_values[dim].nbytes
            for dim in self._dims
        )
        return IndexStats(name=self.name, num_points=len(self.data), memory_bytes=memory)
