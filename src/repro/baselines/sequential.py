"""Sequential scans: the exact, index-free oracles every other algorithm is checked against.

Two variants are provided:

* :class:`SequentialScan` — numpy-vectorized scoring.  This is the fastest way
  to scan in Python and the fairest representation of a well-implemented scan,
  but its per-point cost is paid in C while every index structure here pays it
  in the interpreter.
* :class:`PurePythonScan` — the same scan with per-point Python scoring, i.e.
  the per-point cost model the paper's Java competitors share.  The experiment
  harness reports it alongside the vectorized scan so the pruning benefit of the
  indexes can be read independently of the numpy constant factor.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import TopKAlgorithm
from repro.core.query import SDQuery, make_fast_scorer, sd_scores
from repro.core.results import BatchResult, Match, TopKResult
from repro.substrates.heaps import BoundedMaxHeap

__all__ = ["SequentialScan", "PurePythonScan"]


class SequentialScan(TopKAlgorithm):
    """Score every point with the vectorized exact scorer and keep the best ``k``."""

    name = "SeqScan"

    def batch_query(self, queries, k=None, alpha=None, beta=None) -> BatchResult:
        """Vectorized batch scan: the correctness oracle for batched indexes.

        Scores every point against every query in one term-ordered kernel (the
        same floating-point order as :func:`repro.core.query.make_fast_scorer`,
        so scores are bit-identical to the index paths) and selects each top-k
        with the deterministic ``(-score, row_id)`` tie-break.  Accepts the
        same inputs as :meth:`repro.core.sdindex.SDIndex.batch_query`.
        """
        from repro.core.batch import BatchQuerySpec, select_topk

        spec = BatchQuerySpec.coerce(
            self.repulsive,
            self.attractive,
            self.data.shape[1],
            queries,
            k=k,
            alpha=alpha,
            beta=beta,
        )
        m = len(spec)
        n = len(self.data)
        results = [None] * m
        # One kernel per term-order signature (normally a single group), so
        # queries that declared their roles in a non-index order still score
        # in their own floating-point term order.
        for (rep_order, att_order), members in spec.order_groups().items():
            scores = np.zeros((len(members), n))
            for dim in rep_order:
                weight = spec.alpha[members, spec.repulsive.index(dim)]
                scores += weight[:, None] * np.abs(
                    self.data[:, dim][None, :] - spec.points[members, dim][:, None]
                )
            for dim in att_order:
                weight = spec.beta[members, spec.attractive.index(dim)]
                scores -= weight[:, None] * np.abs(
                    self.data[:, dim][None, :] - spec.points[members, dim][:, None]
                )
            for row, j in enumerate(members):
                top = select_topk(scores[row], self.row_ids, int(min(spec.ks[j], n)))
                matches = [
                    Match(
                        row_id=int(self.row_ids[position]),
                        score=float(scores[row, position]),
                        point=tuple(self.data[position]),
                    )
                    for position in top
                ]
                results[j] = TopKResult(
                    matches=matches,
                    candidates_examined=n,
                    full_evaluations=n,
                    algorithm=f"{self.name}/batch",
                )
        return BatchResult(results=results, algorithm=f"{self.name}/batch")

    def query(self, query: SDQuery) -> TopKResult:
        self.check_query(query)
        scores = sd_scores(self.data, query)
        k = min(query.k, len(scores))
        if k == 0:
            return TopKResult(matches=[], algorithm=self.name)
        # select_topk keeps the deterministic (-score, row_id) tie-break, so the
        # single-query oracle agrees with the batch oracle even on exact ties.
        from repro.core.batch import select_topk

        top_positions = select_topk(scores, self.row_ids, k)
        matches = [
            Match(
                row_id=int(self.row_ids[position]),
                score=float(scores[position]),
                point=tuple(self.data[position]),
            )
            for position in top_positions
        ]
        return TopKResult(
            matches=matches,
            candidates_examined=len(scores),
            full_evaluations=len(scores),
            algorithm=self.name,
        )


class PurePythonScan(TopKAlgorithm):
    """Sequential scan whose per-point scoring runs in the interpreter.

    Useful as an apples-to-apples lower bound for the pure-Python index
    structures (see DESIGN.md / EXPERIMENTS.md on substrate constant factors).
    """

    name = "SeqScan-py"

    def query(self, query: SDQuery) -> TopKResult:
        self.check_query(query)
        score = make_fast_scorer(query)
        heap = BoundedMaxHeap(max(query.k, 1))
        for position in range(len(self.data)):
            heap.push(score(self.data[position]), position)
        matches = [
            Match(
                row_id=int(self.row_ids[position]),
                score=float(value),
                point=tuple(self.data[position]),
            )
            for value, position in heap.items()
        ]
        return TopKResult(
            matches=matches,
            candidates_examined=len(self.data),
            full_evaluations=len(self.data),
            algorithm=self.name,
        )
