"""Common interface for top-k algorithms (the SD-Index and every baseline)."""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from repro.core.query import SDQuery
from repro.core.results import IndexStats, TopKResult

__all__ = ["TopKAlgorithm"]


class TopKAlgorithm(abc.ABC):
    """A top-k query algorithm built once over a dataset.

    Subclasses receive the full ``(n, m)`` data matrix plus the dimension roles
    at construction time (mirroring how the paper builds each competitor once per
    dataset) and answer arbitrary :class:`SDQuery` objects afterwards.
    """

    #: Short name used in experiment reports (e.g. ``"SD-Index"``, ``"TA"``).
    name: str = "top-k"

    def __init__(
        self,
        data: np.ndarray,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        row_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=float)
        if self.data.ndim != 2:
            raise ValueError("data must be an (n, m) matrix")
        self.repulsive = tuple(int(d) for d in repulsive)
        self.attractive = tuple(int(d) for d in attractive)
        self.row_ids = (
            np.arange(len(self.data), dtype=np.int64)
            if row_ids is None
            else np.asarray(list(row_ids), dtype=np.int64)
        )
        if len(self.row_ids) != len(self.data):
            raise ValueError("row_ids must align with the data matrix")

    def check_query(self, query: SDQuery) -> None:
        """Validate that the query's dimension roles match the build-time roles."""
        if set(query.repulsive) != set(self.repulsive) or set(query.attractive) != set(
            self.attractive
        ):
            raise ValueError(
                "query dimension roles do not match the roles this algorithm was built for"
            )
        if query.num_dims != self.data.shape[1]:
            raise ValueError(
                f"query has {query.num_dims} dimensions, data has {self.data.shape[1]}"
            )

    @abc.abstractmethod
    def query(self, query: SDQuery) -> TopKResult:
        """Answer a top-k SD-Query."""

    def stats(self) -> IndexStats:
        """Default statistics: just the raw data footprint."""
        return IndexStats(
            name=self.name,
            num_points=len(self.data),
            memory_bytes=int(self.data.nbytes),
        )
