"""BRS: branch-and-bound processing of ranked queries over an R*-tree (Tao et al.).

The baseline indexes the dataset in an in-memory R*-tree and performs a
best-first branch-and-bound search.  For the SD-score an exact upper bound over a
minimum bounding rectangle is available in closed form:

``bound(MBR) = sum_i alpha_i * max_{p in MBR} |p_i - q_i|
              - sum_j beta_j * min_{p in MBR} |p_j - q_j|``

because the per-dimension terms are independent.  The original paper partitions
the space into regions where the scoring function is monotone and runs a
constrained top-k query per region; the per-MBR bound above is what those
constrained searches compute implicitly, so this adaptation is the strongest
reasonable version of the baseline (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import TopKAlgorithm
from repro.core.query import SDQuery
from repro.core.results import IndexStats, Match, TopKResult
from repro.substrates.mbr import MBR
from repro.substrates.rstartree import RStarTree, default_node_capacity

__all__ = ["BRSTopK"]


class BRSTopK(TopKAlgorithm):
    """Branch-and-bound top-k over an in-memory R*-tree."""

    name = "BRS"

    def __init__(
        self,
        data,
        repulsive,
        attractive,
        row_ids=None,
        node_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(data, repulsive, attractive, row_ids=row_ids)
        capacity = node_capacity or default_node_capacity(self.data.shape[1])
        self.tree = RStarTree.bulk_load(self.data, row_ids=self.row_ids, node_capacity=capacity)

    # ------------------------------------------------------------------ scoring
    @staticmethod
    def _point_score(point: np.ndarray, query: SDQuery) -> float:
        score = 0.0
        for weight, dim in zip(query.alpha, query.repulsive):
            score += weight * abs(float(point[dim]) - query.point[dim])
        for weight, dim in zip(query.beta, query.attractive):
            score -= weight * abs(float(point[dim]) - query.point[dim])
        return score

    @staticmethod
    def _mbr_bound(box: MBR, query: SDQuery) -> float:
        bound = 0.0
        for weight, dim in zip(query.alpha, query.repulsive):
            bound += weight * box.max_abs_difference(dim, query.point[dim])
        for weight, dim in zip(query.beta, query.attractive):
            bound -= weight * box.min_abs_difference(dim, query.point[dim])
        return bound

    # ------------------------------------------------------------------ querying
    def query(self, query: SDQuery) -> TopKResult:
        self.check_query(query)
        matches = []
        candidates_examined = 0
        nodes_visited = 0
        traversal = self.tree.best_first(
            node_bound=lambda box: self._mbr_bound(box, query),
            point_score=lambda point: self._point_score(point, query),
        )
        for row_id, point, score, visited in traversal:
            candidates_examined += 1
            nodes_visited = visited
            matches.append(Match(row_id=int(row_id), score=float(score), point=tuple(point)))
            if len(matches) >= query.k:
                break
        return TopKResult(
            matches=matches,
            candidates_examined=candidates_examined,
            full_evaluations=candidates_examined,
            nodes_visited=nodes_visited,
            algorithm=self.name,
        )

    # ------------------------------------------------------------------ updates
    def insert(self, point: Sequence[float], row_id: int) -> None:
        """Insert a point into the backing R*-tree (used by the update benchmarks)."""
        self.tree.insert(point, row_id)

    def delete(self, row_id: int, point: Sequence[float]) -> bool:
        """Delete a point from the backing R*-tree."""
        return self.tree.delete(row_id, point)

    def stats(self) -> IndexStats:
        stats = self.tree.stats()
        stats.name = self.name
        return stats
