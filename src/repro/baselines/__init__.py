"""Baseline top-k algorithms the paper compares against (Section 6.1).

Every baseline implements the :class:`repro.baselines.base.TopKAlgorithm`
interface: build once over a dataset with fixed dimension roles, then answer
:class:`repro.core.query.SDQuery` instances.
"""

from repro.baselines.base import TopKAlgorithm
from repro.baselines.brs import BRSTopK
from repro.baselines.pe import ProgressiveExplorationTopK
from repro.baselines.sequential import PurePythonScan, SequentialScan
from repro.baselines.ta import ThresholdAlgorithm

__all__ = [
    "TopKAlgorithm",
    "SequentialScan",
    "PurePythonScan",
    "ThresholdAlgorithm",
    "BRSTopK",
    "ProgressiveExplorationTopK",
]
