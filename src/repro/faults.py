"""Deterministic, seed-driven fault injection plane (DESIGN.md section 9).

PR 5 proved crash hooks earn their keep: ``install_fault_hook`` let the
recovery suite kill a subprocess *between* two specific writes and assert
the WAL contract byte by byte.  But that hook lives inside
:mod:`repro.core.persistence`, fires only on durability boundaries, and can
only do whatever the installed callable does.  The rest of the stack — shard
probes, kernel dispatch, epoch pin/publish, coalescer flushes — had no
injection surface at all, so "what happens when one shard is slow" was
untestable without monkeypatching internals.

This module generalizes the idea into a first-class *fault plane*:

* **Named fault points.**  Every instrumented site declares itself with
  :func:`declare_fault_point` at import time and calls :func:`fire` inline.
  The registry is the contract: tests assert every declared point is
  actually exercised (no rotting injection sites), and the reverse scan
  asserts no site fires an undeclared name.
* **Deterministic rules.**  A :class:`FaultPlane` holds :class:`FaultRule`\\ s
  — each one targets a point (exact name or ``fnmatch`` glob, optionally a
  ``key`` such as a shard id), picks an action (``raise``, ``delay`` or
  ``hang``), and injects with a given probability from its **own seeded
  stream**.  The same seed always yields the same storm, so a chaos failure
  reproduces exactly; hit/injection counters make storms auditable.
* **Zero cost when idle.**  :func:`fire` is one module-global read and a
  ``None`` check when no plane is installed — cheap enough for serving-path
  call sites.

Faults raised by the plane are :class:`InjectedFault`, carrying the point
name and a ``transient`` flag — the signal the resilience layer
(:mod:`repro.serving.breaker`, :class:`repro.core.sharding.ShardedIndex`)
uses to decide between retry/degrade and fail-fast.  This module depends on
nothing but the standard library, so every layer of the stack may import it
without cycles.
"""

from __future__ import annotations

import fnmatch
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultPlane",
    "declare_fault_point",
    "fault_points",
    "fire",
    "install_fault_plane",
    "installed_fault_plane",
    "fault_plane",
]

#: Actions a rule may take when it decides to inject.
_ACTIONS = ("raise", "delay", "hang")

#: Upper bound on how long a ``hang`` blocks even if never released — a
#: stuck chaos test should fail loudly, not wedge the whole suite.
_MAX_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """A fault raised by the plane at a named injection point.

    ``transient`` is the classification contract with the resilience layer:
    transient faults model recoverable conditions (a flaky probe, a slow
    disk) and are eligible for retry and graceful degradation; permanent
    ones model bugs and always propagate.
    """

    def __init__(self, point: str, transient: bool = True, key=None) -> None:
        self.point = point
        self.transient = bool(transient)
        self.key = key
        suffix = "" if key is None else f" (key={key!r})"
        super().__init__(f"injected fault at {point!r}{suffix}")


# ------------------------------------------------------------------ registry
_REGISTRY: Dict[str, str] = {}
_REGISTRY_LOCK = threading.Lock()


def declare_fault_point(name: str, description: str) -> str:
    """Register a named fault point (idempotent); returns the name.

    Instrumented modules declare their points at import time, next to the
    :func:`fire` call sites, so importing the stack populates the registry.
    The tripwire tests read it back through :func:`fault_points`.
    """
    with _REGISTRY_LOCK:
        _REGISTRY.setdefault(name, description)
    return name


def fault_points() -> Dict[str, str]:
    """All declared fault points, ``name -> description`` (a copy)."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


# --------------------------------------------------------------------- rules
@dataclass(frozen=True)
class FaultRule:
    """One injection rule of a :class:`FaultPlane`.

    ``point`` is an exact fault-point name or an ``fnmatch`` glob
    (``"wal.append.*"``).  ``key`` narrows the rule to sites that fire with
    a matching key (e.g. one shard id) — ``None`` matches every key.
    ``rate`` is the per-hit injection probability drawn from the rule's own
    seeded stream; ``times`` caps the total injections (``None`` =
    unlimited).  For ``delay`` and ``hang``, ``delay_seconds`` is the stall
    length (a hang with ``delay_seconds=0`` blocks until the plane releases
    it, bounded by the module's hang cap).
    """

    point: str
    action: str = "raise"
    rate: float = 1.0
    key: Optional[object] = None
    delay_seconds: float = 0.0
    times: Optional[int] = None
    transient: bool = True

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; use one of {_ACTIONS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")

    def matches(self, point: str, key) -> bool:
        if self.key is not None and key != self.key:
            return False
        if point == self.point:
            return True
        return fnmatch.fnmatchcase(point, self.point)


class FaultPlane:
    """A set of seeded fault rules, installable as the process fault plane.

    Each rule draws from its own ``random.Random`` stream seeded by
    ``(seed, rule_index)``, so whether hit *n* of a point injects depends
    only on the seed and the hit sequence — never on thread scheduling of
    *other* points.  ``sleep`` is injectable so tests can compress storms.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule],
        seed: int = 0,
        sleep=time.sleep,
    ) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._sleep = sleep
        self._lock = threading.Lock()
        # One independent stream per rule, derived from (seed, rule index)
        # with a large odd multiplier so nearby seeds do not share streams.
        self._streams = [
            random.Random(self.seed * 1_000_003 + index)
            for index in range(len(self.rules))
        ]
        self._injected = [0] * len(self.rules)
        self.hits: Dict[str, int] = {}
        self.injections: Dict[str, int] = {}
        #: Set to release every in-flight and future ``hang`` immediately.
        self._released = threading.Event()

    # ------------------------------------------------------------------ firing
    def fire(self, point: str, key=None) -> None:
        """One hit of ``point``; injects according to the matching rules."""
        actions: List[Tuple[FaultRule, int]] = []
        with self._lock:
            self.hits[point] = self.hits.get(point, 0) + 1
            for index, rule in enumerate(self.rules):
                if not rule.matches(point, key):
                    continue
                if rule.times is not None and self._injected[index] >= rule.times:
                    continue
                if rule.rate < 1.0 and self._streams[index].random() >= rule.rate:
                    continue
                self._injected[index] += 1
                self.injections[point] = self.injections.get(point, 0) + 1
                actions.append((rule, index))
        # Stalls and raises happen outside the lock: a hanging rule must not
        # serialize every other thread's (unrelated) fault-point hits.
        for rule, _index in actions:
            if rule.action == "delay":
                self._sleep(rule.delay_seconds)
            elif rule.action == "hang":
                timeout = rule.delay_seconds or _MAX_HANG_SECONDS
                self._released.wait(min(timeout, _MAX_HANG_SECONDS))
        for rule, _index in actions:
            if rule.action == "raise":
                raise InjectedFault(point, transient=rule.transient, key=key)

    def release_hangs(self) -> None:
        """Unblock every rule currently (or later) hanging."""
        self._released.set()

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Hit and injection counters per point (a consistent copy)."""
        with self._lock:
            return {"hits": dict(self.hits), "injections": dict(self.injections)}

    def total_injections(self) -> int:
        with self._lock:
            return sum(self.injections.values())

    # ------------------------------------------------------------------ parsing
    @classmethod
    def from_specs(
        cls, specs: Iterable[str], seed: int = 0, sleep=time.sleep
    ) -> "FaultPlane":
        """Build a plane from CLI-style specs.

        Each spec is ``point:action[:rate][:option=value...]`` with options
        ``key=`` (int or string), ``delay=`` (seconds), ``times=`` (int) and
        ``transient=`` (0/1), e.g.::

            shard.probe:raise:0.4:key=1
            coalescer.flush:delay:1.0:delay=0.002
            wal.append.synced:raise:0.25:transient=0
        """
        rules = []
        for spec in specs:
            parts = [part.strip() for part in str(spec).split(":")]
            if len(parts) < 2 or not parts[0] or not parts[1]:
                raise ValueError(
                    f"fault spec {spec!r} must look like 'point:action[:rate][:k=v]'"
                )
            point, action = parts[0], parts[1]
            rate = 1.0
            rest = parts[2:]
            if rest and "=" not in rest[0]:
                rate = float(rest[0])
                rest = rest[1:]
            options: Dict[str, object] = {}
            for item in rest:
                name, sep, value = item.partition("=")
                if not sep:
                    raise ValueError(f"bad fault option {item!r} in {spec!r}")
                if name == "key":
                    options["key"] = int(value) if value.lstrip("-").isdigit() else value
                elif name == "delay":
                    options["delay_seconds"] = float(value)
                elif name == "times":
                    options["times"] = int(value)
                elif name == "transient":
                    options["transient"] = value not in ("0", "false", "False")
                else:
                    raise ValueError(f"unknown fault option {name!r} in {spec!r}")
            rules.append(FaultRule(point=point, action=action, rate=rate, **options))
        return cls(rules, seed=seed, sleep=sleep)


# -------------------------------------------------------------- installation
_PLANE: Optional[FaultPlane] = None
_PLANE_LOCK = threading.Lock()


def install_fault_plane(plane: Optional[FaultPlane]) -> None:
    """Install (or clear, with None) the process-wide fault plane."""
    global _PLANE
    with _PLANE_LOCK:
        _PLANE = plane


def installed_fault_plane() -> Optional[FaultPlane]:
    """The currently installed plane, if any."""
    return _PLANE


def fire(point: str, key=None) -> None:
    """One hit of a named fault point (no-op unless a plane is installed).

    The instrumentation call sites use this module-level entry so the idle
    cost is a single global read; ``key`` carries site context a rule may
    narrow on (the sharded engine passes the shard id).
    """
    plane = _PLANE
    if plane is not None:
        plane.fire(point, key=key)


@contextmanager
def fault_plane(plane: FaultPlane):
    """Scoped installation: install ``plane``, restore the previous on exit.

    On exit any hanging rules are released first, so a test that times out a
    hang can still tear down cleanly.
    """
    previous = _PLANE
    install_fault_plane(plane)
    try:
        yield plane
    finally:
        plane.release_hangs()
        install_fault_plane(previous)
