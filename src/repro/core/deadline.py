"""Deadline budgets for cooperative cancellation (DESIGN.md section 9).

A request's timeout used to live entirely in the asyncio layer: the waiting
future was cancelled, but the kernel work it had queued kept running to
completion on the executor thread.  Under a fault storm that is exactly
backwards — the slow work is the thing that must stop.  A :class:`Deadline`
is the budget threaded from :meth:`repro.serving.server.SDQueryServer.submit`
through the coalescer into the engines, which check it *cooperatively* at
their natural yield points (batch entry, between bound-ordered shard
rounds) and either stop with :class:`DeadlineExceeded` or — when the engine
is configured for graceful degradation — return what they have, explicitly
flagged partial.

The clock is injectable (and must be monotonic — wall-clock steps must
never expire or extend a budget); tests drive it by hand.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["Deadline", "DeadlineExceeded", "NO_TIMEOUT"]


class DeadlineExceeded(Exception):
    """A deadline budget ran out before the work completed."""

    def __init__(self, budget: float) -> None:
        self.budget = float(budget)
        super().__init__(f"deadline exceeded after {budget:.3f}s budget")


class _NoTimeout:
    """Singleton sentinel: the caller explicitly wants *no* deadline.

    Distinct from ``None``, which at the serving API means "use the
    configured default" — without the sentinel there was no way to ask for
    an unbounded request on a server with a default timeout.
    """

    _instance = None

    def __new__(cls) -> "_NoTimeout":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NO_TIMEOUT"

    def __reduce__(self):
        return (_NoTimeout, ())


#: Pass as ``timeout=`` to request an unbounded wait where ``None`` means
#: "use the configured default" (see ``SDQueryServer.submit``).
NO_TIMEOUT = _NoTimeout()


class Deadline:
    """A monotonic time budget checked cooperatively along the serving path."""

    __slots__ = ("budget", "_clock", "_expires")

    def __init__(
        self,
        budget_seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_seconds < 0:
            raise ValueError(f"budget must be >= 0, got {budget_seconds}")
        self.budget = float(budget_seconds)
        self._clock = clock
        self._expires = clock() + self.budget

    @classmethod
    def after(
        cls,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> Optional["Deadline"]:
        """A deadline ``seconds`` from now, or None for an unbounded budget."""
        if seconds is None:
            return None
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self._expires - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget has run out."""
        if self.expired:
            raise DeadlineExceeded(self.budget)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget:.3f}s, remaining={self.remaining():.3f}s)"
