"""Query model and exact scoring for SD-Queries.

An *SD-Query* (Definition 1 in the paper) asks for the ``k`` points of a dataset
that maximize

.. math::

    \\mathrm{SDscore}(p, q) = \\sum_{i \\in D} \\alpha_i |p_i - q_i|
                              - \\sum_{j \\in S} \\beta_j |p_j - q_j|

where ``D`` is the set of *repulsive* dimensions (distance is rewarded) and ``S``
the set of *attractive* dimensions (distance is penalized).  This module holds the
query description objects plus reference (exact, non-indexed) scoring used both by
the sequential-scan oracle and by the random-access step of every index.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "DimensionRole",
    "QueryWeights",
    "SDQuery",
    "sd_score",
    "sd_scores",
    "make_fast_scorer",
    "normalized_angle",
]

ArrayLike = Union[Sequence[float], np.ndarray]


class DimensionRole(enum.Enum):
    """Role a dimension plays in the scoring function."""

    REPULSIVE = "repulsive"
    ATTRACTIVE = "attractive"
    IGNORED = "ignored"

    def sign(self) -> int:
        """Return +1 for repulsive, -1 for attractive, 0 for ignored dimensions."""
        if self is DimensionRole.REPULSIVE:
            return 1
        if self is DimensionRole.ATTRACTIVE:
            return -1
        return 0


def _as_tuple(values: Optional[ArrayLike], length: int, default: float) -> Tuple[float, ...]:
    """Normalize a weight specification to a tuple of ``length`` floats."""
    if values is None:
        return (float(default),) * length
    if np.isscalar(values):
        return (float(values),) * length  # type: ignore[arg-type]
    result = tuple(float(v) for v in values)
    if len(result) != length:
        raise ValueError(
            f"expected {length} weights, got {len(result)}: {result!r}"
        )
    return result


@dataclass(frozen=True)
class QueryWeights:
    """Per-dimension weights ``alpha`` (repulsive) and ``beta`` (attractive).

    Weights must be strictly positive: a zero weight is equivalent to dropping the
    dimension from the query, which callers should express by removing the
    dimension instead.
    """

    alpha: Tuple[float, ...]
    beta: Tuple[float, ...]

    def __post_init__(self) -> None:
        for name, values in (("alpha", self.alpha), ("beta", self.beta)):
            for value in values:
                if not math.isfinite(value) or value <= 0.0:
                    raise ValueError(f"{name} weights must be finite and > 0, got {value!r}")

    @classmethod
    def uniform(cls, num_repulsive: int, num_attractive: int, value: float = 1.0) -> "QueryWeights":
        """Equal weights for every dimension (the paper's default for examples)."""
        return cls(alpha=(value,) * num_repulsive, beta=(value,) * num_attractive)


@dataclass(frozen=True)
class SDQuery:
    """A fully specified SD-Query.

    Parameters
    ----------
    point:
        The query object ``q`` as a sequence of coordinates covering every
        dimension of the dataset (including ignored ones).
    repulsive:
        Indexes of dimensions in ``D`` (distance from the query is rewarded).
    attractive:
        Indexes of dimensions in ``S`` (distance from the query is penalized).
    k:
        Number of results requested.
    weights:
        Optional :class:`QueryWeights`; defaults to all ones.
    """

    point: Tuple[float, ...]
    repulsive: Tuple[int, ...]
    attractive: Tuple[int, ...]
    k: int = 1
    weights: QueryWeights = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "point", tuple(float(v) for v in self.point))
        object.__setattr__(self, "repulsive", tuple(int(d) for d in self.repulsive))
        object.__setattr__(self, "attractive", tuple(int(d) for d in self.attractive))
        if self.weights is None:
            object.__setattr__(
                self,
                "weights",
                QueryWeights.uniform(len(self.repulsive), len(self.attractive)),
            )
        self.validate()

    # ------------------------------------------------------------------ validation
    def validate(self) -> None:
        """Raise ``ValueError`` if the query is internally inconsistent."""
        num_dims = len(self.point)
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not self.repulsive and not self.attractive:
            raise ValueError("query must name at least one repulsive or attractive dimension")
        seen = set()
        for dim in self.repulsive + self.attractive:
            if dim < 0 or dim >= num_dims:
                raise ValueError(f"dimension index {dim} out of range for a {num_dims}-d point")
            if dim in seen:
                raise ValueError(f"dimension {dim} used more than once")
            seen.add(dim)
        if len(self.weights.alpha) != len(self.repulsive):
            raise ValueError(
                f"{len(self.repulsive)} repulsive dimensions but "
                f"{len(self.weights.alpha)} alpha weights"
            )
        if len(self.weights.beta) != len(self.attractive):
            raise ValueError(
                f"{len(self.attractive)} attractive dimensions but "
                f"{len(self.weights.beta)} beta weights"
            )
        for value in self.point:
            if not math.isfinite(value):
                raise ValueError(f"query coordinates must be finite, got {value!r}")

    # ------------------------------------------------------------------ helpers
    @property
    def num_dims(self) -> int:
        """Dimensionality of the query point."""
        return len(self.point)

    @property
    def alpha(self) -> Tuple[float, ...]:
        """Weights of the repulsive dimensions, in the order of :attr:`repulsive`."""
        return self.weights.alpha

    @property
    def beta(self) -> Tuple[float, ...]:
        """Weights of the attractive dimensions, in the order of :attr:`attractive`."""
        return self.weights.beta

    def role_of(self, dim: int) -> DimensionRole:
        """Return the role of dimension ``dim`` in this query."""
        if dim in self.repulsive:
            return DimensionRole.REPULSIVE
        if dim in self.attractive:
            return DimensionRole.ATTRACTIVE
        return DimensionRole.IGNORED

    def roles(self) -> Mapping[int, DimensionRole]:
        """Mapping from dimension index to role for every scored dimension."""
        mapping = {dim: DimensionRole.REPULSIVE for dim in self.repulsive}
        mapping.update({dim: DimensionRole.ATTRACTIVE for dim in self.attractive})
        return mapping

    def with_k(self, k: int) -> "SDQuery":
        """Return a copy of this query asking for ``k`` results."""
        return SDQuery(
            point=self.point,
            repulsive=self.repulsive,
            attractive=self.attractive,
            k=k,
            weights=self.weights,
        )

    def with_weights(self, alpha: ArrayLike, beta: ArrayLike) -> "SDQuery":
        """Return a copy of this query with different weights."""
        weights = QueryWeights(
            alpha=_as_tuple(alpha, len(self.repulsive), 1.0),
            beta=_as_tuple(beta, len(self.attractive), 1.0),
        )
        return SDQuery(
            point=self.point,
            repulsive=self.repulsive,
            attractive=self.attractive,
            k=self.k,
            weights=weights,
        )

    @classmethod
    def simple(
        cls,
        point: ArrayLike,
        repulsive: Iterable[int],
        attractive: Iterable[int],
        k: int = 1,
        alpha: Optional[ArrayLike] = None,
        beta: Optional[ArrayLike] = None,
    ) -> "SDQuery":
        """Convenience constructor accepting scalars or sequences for the weights."""
        repulsive = tuple(repulsive)
        attractive = tuple(attractive)
        weights = QueryWeights(
            alpha=_as_tuple(alpha, len(repulsive), 1.0),
            beta=_as_tuple(beta, len(attractive), 1.0),
        )
        return cls(
            point=tuple(point),
            repulsive=repulsive,
            attractive=attractive,
            k=k,
            weights=weights,
        )


# ---------------------------------------------------------------------- scoring
def sd_score(point: ArrayLike, query: SDQuery) -> float:
    """Exact SD-score of a single ``point`` against ``query`` (Equation 3).

    Higher is better.  The function is intentionally straightforward — it is the
    reference implementation every index is validated against.
    """
    values = np.asarray(point, dtype=float)
    if values.shape != (query.num_dims,):
        raise ValueError(
            f"point has shape {values.shape}, expected ({query.num_dims},)"
        )
    score = 0.0
    for weight, dim in zip(query.alpha, query.repulsive):
        score += weight * abs(values[dim] - query.point[dim])
    for weight, dim in zip(query.beta, query.attractive):
        score -= weight * abs(values[dim] - query.point[dim])
    return float(score)


def sd_scores(points: np.ndarray, query: SDQuery) -> np.ndarray:
    """Vectorized SD-scores for a ``(n, m)`` matrix of points.

    Used by the sequential-scan baseline and for bulk verification in tests.
    """
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2 or matrix.shape[1] != query.num_dims:
        raise ValueError(
            f"points must have shape (n, {query.num_dims}), got {matrix.shape}"
        )
    scores = np.zeros(matrix.shape[0], dtype=float)
    query_vec = np.asarray(query.point, dtype=float)
    for weight, dim in zip(query.alpha, query.repulsive):
        scores += weight * np.abs(matrix[:, dim] - query_vec[dim])
    for weight, dim in zip(query.beta, query.attractive):
        scores -= weight * np.abs(matrix[:, dim] - query_vec[dim])
    return scores


def make_fast_scorer(query: SDQuery):
    """Build a low-overhead scorer ``score(row_values) -> float`` for one query.

    Threshold-style algorithms evaluate the full score of thousands of individual
    candidate rows per query; going through :func:`sd_score` (which validates and
    converts its input) for each of them dominates the running time in pure
    Python.  The returned closure performs the same arithmetic on an indexable
    row (numpy row or sequence) without any conversion or validation — it is
    exactly Equation 3 unrolled.
    """
    repulsive_terms = [(float(w), int(d), float(query.point[d]))
                       for w, d in zip(query.alpha, query.repulsive)]
    attractive_terms = [(float(w), int(d), float(query.point[d]))
                        for w, d in zip(query.beta, query.attractive)]

    def score(row_values) -> float:
        total = 0.0
        for weight, dim, q_value in repulsive_terms:
            total += weight * abs(row_values[dim] - q_value)
        for weight, dim, q_value in attractive_terms:
            total -= weight * abs(row_values[dim] - q_value)
        return total

    return score


def normalized_angle(alpha: float, beta: float) -> float:
    """Angle ``theta = atan2(beta, alpha)`` in radians (Equation 5).

    The 2D score ``alpha*|dy| - beta*|dx|`` ranks identically to
    ``cos(theta)*|dy| - sin(theta)*|dx|`` scaled by ``sqrt(alpha^2 + beta^2)``;
    all 2D index structures work in this normalized form so that projections for
    different weight vectors are directly comparable (Section 4.2, observation 2).
    """
    if alpha < 0 or beta < 0:
        raise ValueError(f"weights must be non-negative, got alpha={alpha}, beta={beta}")
    if alpha == 0 and beta == 0:
        raise ValueError("alpha and beta cannot both be zero")
    return math.atan2(beta, alpha)
