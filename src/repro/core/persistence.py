"""Durable index snapshots and write-ahead recovery (DESIGN.md section 7).

Every engine so far lives only in process memory: a restart rebuilds the
SDIndex from the raw dataset and silently forgets every update applied since
build.  This module adds the standard database pairing of *checkpoints* plus a
*logical write-ahead log* (cf. the recovery machinery surveyed in the Cambridge
Report and ProvSQL's persistence of derived state alongside base data,
PAPERS.md):

* **Snapshots.**  :func:`save_engine` serializes an engine — the flattened
  session arrays (:class:`~repro.core.batch._FlatTree` leaf arrays, validity
  masks, per-angle bounds), the aggregator's row bookkeeping (deleted ids,
  row-id high-water mark), the projection-tree / angular-partition parameters
  and, for :class:`~repro.core.sharding.ShardedIndex`, the router map plus one
  sub-manifest per shard — into a directory of raw ``.npy`` payloads under a
  JSON manifest carrying a format version and per-file checksums.
  :func:`load_engine` restores the engine; ``mmap=True`` memory-maps every
  array for a near-instant warm start (the expensive projection trees are
  rebuilt *lazily*, only when a reflatten, a legacy query or an update first
  needs them — the vectorized serving path runs straight off the restored
  arrays).
* **Write-ahead log.**  :class:`WriteAheadLog` journals ``insert`` /
  ``delete`` / ``bulk_insert`` / ``bulk_delete`` / ``rebalance`` records,
  length-prefixed and CRC-checksummed, with an fsync-on-commit policy knob.
  A torn final record (the normal crash shape) is truncated and ignored —
  it was never acknowledged; a checksum failure *before* the tail raises
  :class:`SnapshotFormatError` instead of silently serving corrupt data.
* **Durability wrapper.**  :class:`DurableIndex` pairs an engine with a
  snapshot directory and a WAL: mutations append to the log before they are
  acknowledged, :meth:`DurableIndex.checkpoint` streams a new snapshot while
  writers keep running (the capture pins one epoch through the PR 4
  :class:`~repro.core.epoch.EpochManager` and copies only the small
  bookkeeping under the writer lock), and :meth:`DurableIndex.recover`
  replays the WAL tail onto the loaded snapshot so the recovered engine
  answers bit-identically to the pre-crash one.

The recovery invariant (stated in DESIGN.md section 7 and enforced by
``tests/integration/test_crash_recovery.py``): after a crash at *any* point,
``recover()`` either yields an engine whose top-k answers are bit-identical to
an uncrashed engine that applied exactly the acknowledged prefix of the op
stream, or raises :class:`SnapshotFormatError` — never a silently wrong
answer.
"""

from __future__ import annotations

import gc
import json
import os
import shutil
import struct
import threading
import weakref
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.core.aggregate import SubproblemAggregator
from repro.core.angles import AngleGrid
from repro.core.batch import QuerySession, SessionState, _FlatTree
from repro.core.epoch import EpochManager
from repro.core.geometry import Angle
from repro.core.isoline import Envelope, EnvelopeSide
from repro.core.lsm import DeltaState, Level, LsmSession, LsmWorld
from repro.core.pairing import DimensionPairing
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex, ShardRouter, _ShardTopology
from repro.core.top1 import Top1Index, _RunningTopKRegions
from repro.core.topk import TopKIndex
from repro.substrates.sorted_column import SortedColumn

__all__ = [
    "FORMAT_VERSION",
    "SnapshotFormatError",
    "MmapGuard",
    "WriteAheadLog",
    "DurableIndex",
    "save_engine",
    "load_engine",
    "read_wal_tail",
    "recover",
    "install_fault_hook",
]

#: Snapshot format version written by this build; readers accept exactly the
#: versions they know.  Bump on any incompatible layout change and keep the
#: golden fixture of every shipped version loading (tests/golden).
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
ARRAY_DIR = "arrays"
CURRENT_NAME = "CURRENT"
WAL_NAME = "wal.log"

_CHUNK = 1 << 20


class SnapshotFormatError(RuntimeError):
    """A snapshot or WAL failed validation: unknown version, bad checksum,
    truncated payload, missing manifest, or mid-file log corruption.

    Raised instead of ever serving state that cannot be proven intact."""


# ----------------------------------------------------------------- fault hook
#: Test-only crash injection: when set, called with a named fault point at
#: every durability-critical boundary (see ``_fault`` call sites).  The hook
#: may raise or ``os._exit`` to simulate a crash between two specific writes.
#: The same points are also registered with the general :mod:`repro.faults`
#: plane, which fires *after* the legacy hook — ``install_fault_hook`` keeps
#: its crash-test contract, while seed-driven chaos runs target these points
#: through :func:`repro.faults.install_fault_plane` like any other.
_FAULT_HOOK: Optional[Callable[[str], None]] = None

#: Durability-boundary fault points (non-transient by default: a raise here
#: simulates a torn write, and recovery — not a retry — is the mitigation).
for _point, _about in (
    ("snapshot.array.written", "one array file written, before its fsync"),
    ("snapshot.manifest.before", "arrays durable, manifest not yet written"),
    ("snapshot.manifest.written", "manifest written, before its fsync"),
    ("wal.append.written", "WAL record appended, before the WAL fsync"),
    ("wal.append.synced", "WAL record fsynced, before the caller resumes"),
    ("wal.rotate.written", "rotated WAL written to its temp file"),
    ("wal.rotate.replaced", "rotated WAL renamed over the live log"),
    ("wal.rotate.synced", "rotated WAL and its directory fsynced"),
    ("checkpoint.current.before", "snapshot durable, CURRENT not yet updated"),
    ("checkpoint.current.written", "CURRENT written, before its fsync"),
):
    faults.declare_fault_point(_point, _about)


def install_fault_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install (or clear, with None) the crash-injection hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def _fault(point: str) -> None:
    if _FAULT_HOOK is not None:
        _FAULT_HOOK(point)
    faults.fire(point)


# -------------------------------------------------------------- small helpers
def _fsync_file(handle) -> None:
    handle.flush()
    os.fsync(handle.fileno())


def _fsync_dir(path: Path) -> None:
    """Persist a directory entry (rename/create durability on POSIX)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX or permission oddity
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def _crc_of_file(path: Path) -> int:
    crc = 0
    with open(path, "rb") as handle:
        while True:
            block = handle.read(_CHUNK)
            if not block:
                return crc
            crc = zlib.crc32(block, crc)


class _CrcWriter:
    """File proxy accumulating CRC32 and byte count as ``np.save`` streams.

    Saves the checkpoint from re-reading every array it just wrote: the
    manifest checksum is computed on the single write pass.
    """

    def __init__(self, handle) -> None:
        self._handle = handle
        self.crc = 0
        self.size = 0

    def write(self, data) -> int:
        written = self._handle.write(data)
        self.crc = zlib.crc32(data, self.crc)
        self.size += written
        return written

    def __getattr__(self, name):
        return getattr(self._handle, name)


def _angle_exact(cos: float, sin: float) -> Angle:
    """Rebuild an :class:`Angle` with bit-identical components.

    The public constructor re-normalizes ``(cos, sin)``, which can perturb the
    last ulp; scores computed through a restored angle must match the
    pre-checkpoint engine bit for bit, so restore bypasses the normalization.
    """
    angle = Angle.__new__(Angle)
    object.__setattr__(angle, "cos", float(cos))
    object.__setattr__(angle, "sin", float(sin))
    object.__setattr__(angle, "_radians", float(np.arctan2(sin, cos)))
    return angle


def _grid_payload(grid: AngleGrid) -> List[List[float]]:
    return [[angle.cos, angle.sin] for angle in grid]


def _grid_from_payload(payload: Sequence[Sequence[float]]) -> AngleGrid:
    return AngleGrid(tuple(_angle_exact(c, s) for c, s in payload))


class Deferred:
    """A lazily built stand-in that materializes the real object on first use.

    ``load(..., mmap=True)`` owes its near-instant warm start to never
    rebuilding the projection trees: the vectorized serving path runs off the
    restored flat arrays alone.  The trees are still *owed* — a reflatten, a
    legacy query or the first update needs them — so the restored engines hold
    one of these per tree, carrying a builder closure over the checkpointed
    live rows.  Attribute access materializes exactly once (under a lock) and
    then forwards forever.
    """

    def __init__(self, builder: Callable[[], Any], spec: Optional[Dict[str, Any]] = None) -> None:
        self._builder = builder
        self._real: Any = None
        self._lock = threading.Lock()
        #: Checkpoint-visible parameters of the not-yet-built object, so a
        #: save of a freshly loaded engine can re-serialize them without
        #: forcing the build it exists to avoid.
        self.spec = spec

    @property
    def materialized(self) -> bool:
        return self._real is not None

    def _materialize(self) -> Any:
        if self._real is None:
            with self._lock:
                if self._real is None:
                    self._real = self._builder()
                    # Release the builder: its closure pins the checkpoint-era
                    # arrays, which must not outlive their only consumer.
                    self._builder = None
        return self._real

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_") and name in ("_builder", "_real", "_lock"):
            raise AttributeError(name)  # pragma: no cover - guard only
        return getattr(self._materialize(), name)

    def __len__(self) -> int:
        return len(self._materialize())


# -------------------------------------------------------------- snapshot I/O
class _Capture:
    """A consistent cut of one engine, pinned while it streams to disk.

    ``meta`` is the JSON payload, ``arrays`` maps array names to (immutable)
    numpy arrays, ``children`` holds nested captures (one per shard).
    ``pins`` are release callables (epoch unpins); ``locks`` are acquired
    locks held for the whole write (only the ``concurrency="unsafe"`` engines
    need that — their states mutate in place, so writers block until the
    stream finishes; snapshot-mode engines keep writing concurrently).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.meta: Dict[str, Any] = {}
        self.arrays: Dict[str, np.ndarray] = {}
        self.children: Dict[str, "_Capture"] = {}
        self.pins: List[Callable[[], None]] = []
        self.locks: List[Any] = []

    def close(self) -> None:
        for child in self.children.values():
            child.close()
        for release in self.pins:
            release()
        self.pins = []
        for lock in reversed(self.locks):
            lock.release()
        self.locks = []


def _write_capture(capture: _Capture, path: Path, extra: Optional[Dict] = None) -> None:
    """Stream a capture into ``path``: arrays first, the manifest last.

    The manifest is the commit point — a crash mid-stream leaves a directory
    without a (valid) manifest, which every loader rejects loudly.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    (path / ARRAY_DIR).mkdir(exist_ok=True)
    files: Dict[str, Dict[str, Any]] = {}
    for name, array in capture.arrays.items():
        rel = f"{ARRAY_DIR}/{name}.npy"
        full = path / rel
        with open(full, "wb") as handle:
            writer = _CrcWriter(handle)
            np.save(writer, np.asarray(array))
            _fsync_file(handle)
        _fault("snapshot.array.written")
        files[name] = {"file": rel, "bytes": writer.size, "crc32": writer.crc}
    # The array *files* are durable; their directory entries need their own
    # fsync, or a power failure after the checkpoint commits (and prunes the
    # previous snapshot) could leave CURRENT pointing at a snapshot with no
    # arrays — permanently unrecoverable.
    _fsync_dir(path / ARRAY_DIR)
    children: Dict[str, str] = {}
    for name, child in capture.children.items():
        _write_capture(child, path / name)
        children[name] = name
    manifest = {
        "format_version": FORMAT_VERSION,
        "engine": capture.kind,
        "payload": capture.meta,
        "arrays": files,
        "children": children,
        "extra": dict(extra or {}),
    }
    _fault("snapshot.manifest.before")
    tmp = path / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1, sort_keys=True)
        handle.write("\n")
        _fsync_file(handle)
    os.replace(tmp, path / MANIFEST_NAME)
    _fsync_dir(path)
    _fsync_dir(path.parent)
    _fault("snapshot.manifest.written")


def _read_manifest(path: Path) -> Dict[str, Any]:
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotFormatError(f"missing snapshot manifest: {manifest_path}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot manifest: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    return manifest


class MmapGuard:
    """Tracks the ``mmap.mmap`` handles behind one ``load_engine(mmap=True)``.

    ``np.load(mmap_mode="r")`` keeps a file descriptor and an address-space
    mapping alive for every array, and on this platform ``mmap.close()``
    succeeds even while a numpy view still points into the mapping — a later
    read through such a view is a dangling-pointer crash, not an exception.
    The guard therefore holds *weak* references to the loaded arrays next to
    their raw maps: :meth:`close` only unmaps regions whose arrays are
    provably dead (after a ``gc.collect()`` to break the epoch/session
    reference cycles) and counts every still-referenced mapping as *leaked*
    instead of pulling the pages out from under a live reader.

    Engines loaded with ``mmap=True`` carry their guard as ``_mmap_guard``
    and close it from their own ``close()``; calling :meth:`close` twice is
    a no-op.
    """

    def __init__(self) -> None:
        self._maps: List[Tuple[Any, Any]] = []  # (weakref-to-array, mmap.mmap)
        self._closed = False
        self._registered = 0
        self.leaked = 0

    def register(self, array: np.ndarray) -> None:
        """Track one freshly-mapped array (no-op for non-memmap arrays)."""
        handle = getattr(array, "_mmap", None)
        if handle is not None:
            self._maps.append((weakref.ref(array), handle))
            self._registered += 1

    @property
    def num_maps(self) -> int:
        """Mappings registered over the guard's lifetime (stable after close)."""
        return self._registered

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> int:
        """Drop every mapping whose array is dead; returns the leak count.

        Callers must first release their own references to the mapped arrays
        (dispose sessions, clear caches): anything still reachable keeps its
        mapping open — reported via ``leaked`` — because unmapping under a
        live array would turn the next read into undefined behavior.
        """
        if self._closed:
            return self.leaked
        self._closed = True
        # The session/epoch graph is cyclic (EpochManager <-> Epoch), so the
        # final references to mapped arrays often die only on a cycle sweep.
        gc.collect()
        leaked = 0
        for ref, handle in self._maps:
            if ref() is not None:
                leaked += 1
                continue
            try:
                handle.close()
            except (BufferError, ValueError):
                leaked += 1
        self.leaked = leaked
        self._maps = []
        return leaked


#: Guard collecting the maps of the ``load_engine`` call running on this
#: thread; ``_restore_sharded`` loads its per-shard children through nested
#: ``_load_arrays`` calls, which register into the same (outermost) guard.
_ACTIVE_GUARD = threading.local()


def _load_arrays(
    path: Path, manifest: Dict[str, Any], mmap: bool, verify: Optional[bool]
) -> Dict[str, np.ndarray]:
    """Load every manifest-listed array, validating sizes (always) and
    checksums (by default only for full loads — an mmap load exists to avoid
    touching every page; pass ``verify=True`` to force the full check)."""
    if verify is None:
        verify = not mmap
    arrays: Dict[str, np.ndarray] = {}
    for name, entry in manifest["arrays"].items():
        full = Path(path) / entry["file"]
        if not full.is_file():
            raise SnapshotFormatError(f"snapshot array missing: {full}")
        size = os.path.getsize(full)
        if size != entry["bytes"]:
            raise SnapshotFormatError(
                f"snapshot array {entry['file']} truncated or resized: "
                f"{size} bytes on disk, {entry['bytes']} in manifest"
            )
        if verify and _crc_of_file(full) != entry["crc32"]:
            raise SnapshotFormatError(
                f"snapshot array {entry['file']} failed its checksum"
            )
        try:
            array = np.load(full, mmap_mode="r" if mmap else None)
        except ValueError as exc:
            raise SnapshotFormatError(
                f"snapshot array {entry['file']} is not a valid .npy payload: {exc}"
            ) from exc
        if not mmap:
            # Restored states are published as immutable epochs; freezing the
            # arrays makes an accidental in-place patch fail loudly and routes
            # maintenance through the copy-on-write path — exactly the same
            # contract a memory-mapped (read-only) load has.
            array.setflags(write=False)
        else:
            guard = getattr(_ACTIVE_GUARD, "guard", None)
            if guard is not None:
                guard.register(array)
        arrays[name] = array
    return arrays


# ---------------------------------------------------------------- WAL format
OP_INSERT = 1
OP_DELETE = 2
OP_BULK_INSERT = 3
OP_BULK_DELETE = 4
OP_REBALANCE = 5
OP_REBUILD = 6
#: LSM structure ops (DESIGN.md section 11).  A flush carries no payload; a
#: compact carries the merged level seqs in the row-id field.  Journaling them
#: lets ``recover()`` rebuild the exact delta+levels layout, not just the
#: logical row set — the level seq space is deterministic given the snapshot's
#: ``next_seq`` and the replayed op order.
OP_FLUSH = 7
OP_COMPACT = 8

_OP_NAMES = {
    OP_INSERT: "insert",
    OP_DELETE: "delete",
    OP_BULK_INSERT: "bulk_insert",
    OP_BULK_DELETE: "bulk_delete",
    OP_REBALANCE: "rebalance",
    OP_REBUILD: "rebuild",
    OP_FLUSH: "lsm_flush",
    OP_COMPACT: "lsm_compact",
}

_WAL_MAGIC = b"SDWAL001"
_WAL_BASE = struct.Struct("<Q")  # base lsn after the magic
#: Record header: lsn, payload length, payload crc32, header crc32.  The
#: header carries its own checksum so a corrupted *length* field is provably
#: corruption (raise) rather than being misread as a torn tail — without it,
#: an inflated length would swallow the following acknowledged records.
_RECORD = struct.Struct("<QIII")
_PAYLOAD = struct.Struct("<BII")  # op, row count, dim count


def _record_header(lsn: int, length: int, payload_crc: int) -> bytes:
    head = _RECORD.pack(lsn, length, payload_crc, 0)[:-4]
    return head + struct.pack("<I", zlib.crc32(head))


def _encode_record(op: int, row_ids: np.ndarray, matrix: Optional[np.ndarray]) -> bytes:
    ids = np.ascontiguousarray(row_ids, dtype=np.int64)
    if matrix is None:
        coords = b""
        dims = 0
    else:
        block = np.ascontiguousarray(matrix, dtype=np.float64)
        if block.ndim != 2 or len(block) != len(ids):
            raise ValueError("WAL matrix must be (n, d) aligned with row_ids")
        coords = block.tobytes()
        dims = block.shape[1]
    return _PAYLOAD.pack(op, len(ids), dims) + ids.tobytes() + coords


def _decode_record(payload: bytes) -> Tuple[int, np.ndarray, Optional[np.ndarray]]:
    if len(payload) < _PAYLOAD.size:
        raise SnapshotFormatError("WAL payload shorter than its header")
    op, count, dims = _PAYLOAD.unpack_from(payload)
    expected = _PAYLOAD.size + 8 * count + 8 * count * dims
    if op not in _OP_NAMES or len(payload) != expected:
        raise SnapshotFormatError(
            f"malformed WAL payload (op={op}, n={count}, d={dims}, "
            f"{len(payload)} bytes, expected {expected})"
        )
    ids = np.frombuffer(payload, dtype=np.int64, count=count, offset=_PAYLOAD.size)
    matrix = None
    if dims:
        matrix = np.frombuffer(
            payload,
            dtype=np.float64,
            count=count * dims,
            offset=_PAYLOAD.size + 8 * count,
        ).reshape(count, dims)
    return op, ids, matrix


class WriteAheadLog:
    """An append-only, checksummed journal of logical index mutations.

    Records are length-prefixed (``lsn, length, crc32`` header) so the tail
    torn by a crash is detected exactly: an *incomplete* final record — or a
    complete-length final record whose checksum fails, the shape a partially
    flushed page leaves — is truncated on open (it was never acknowledged).
    A checksum or continuity failure anywhere *before* the tail is corruption
    and raises :class:`SnapshotFormatError`.

    ``fsync`` selects the commit policy: ``"commit"`` (default) fsyncs every
    append before acknowledging it — the no-acknowledged-write-lost
    guarantee; ``"os"`` leaves flushing to the OS page cache — faster, and
    bounded loss on power failure (process crashes still lose nothing).
    """

    FSYNC_POLICIES = ("commit", "os")

    def __init__(self, path, fsync: str = "commit") -> None:
        if fsync not in self.FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; use one of {self.FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._closed = False
        # A crash mid-rotation may leave the written-aside file behind; it was
        # never the live log (os.replace is the commit point), so drop it.
        stale = self.path.with_suffix(".log.tmp")
        if stale.exists():
            stale.unlink()
        if self.path.exists():
            self.base_lsn, self._lsn, end = self._scan()
            self._file = open(self.path, "r+b")
            # Drop any torn tail so new appends continue from the last intact
            # record instead of landing after garbage.
            self._file.truncate(end)
            self._file.seek(end)
        else:
            self.base_lsn = 0
            self._lsn = 0
            self._file = open(self.path, "w+b")
            self._file.write(_WAL_MAGIC + _WAL_BASE.pack(0))
            _fsync_file(self._file)
            # The file's *directory entry* must be durable too, on every
            # policy: under ``fsync="os"`` nothing later syncs the directory
            # on the append path, so a crash could otherwise lose the whole
            # log file while the engine had acknowledged its writes.
            _fsync_dir(self.path.parent)

    # ------------------------------------------------------------------ state
    @property
    def end_lsn(self) -> int:
        """LSN of the last intact record (== total mutations journaled)."""
        return self._lsn

    def _header_size(self) -> int:
        return len(_WAL_MAGIC) + _WAL_BASE.size

    @staticmethod
    def _valid_record_follows(handle, after: int, min_lsn: int) -> bool:
        """True if any later offset parses as a checksum-valid record header.

        The tear-vs-corruption discriminator: storage may persist a torn
        final append's pages out of order (payload sectors before the header
        sector), so a bad record with only garbage after it must be treated
        as an unacknowledged tail.  But if a valid record *follows* the bad
        one, acknowledged data sits past the damage — that is corruption and
        must be loud, never silently truncated away.  A random 20-byte window
        passes the header CRC with probability 2^-32 per offset; requiring a
        later LSN as well makes a false positive (which would only turn a
        truncate into a loud error) negligible.  Only runs once per open, on
        the first invalid record, over the remainder of the file.
        """
        handle.seek(after)
        remainder = handle.read()
        for position in range(len(remainder) - _RECORD.size + 1):
            window = remainder[position : position + _RECORD.size]
            rec_lsn, _length, _crc, head_crc = _RECORD.unpack(window)
            if zlib.crc32(window[:-4]) == head_crc and rec_lsn > min_lsn:
                return True
        return False

    def _scan(self) -> Tuple[int, int, int]:
        """Validate the file; returns (base_lsn, last_lsn, end_offset).

        Streams record by record (one record in memory at a time — recovery
        of a large un-checkpointed tail must not materialize the whole log);
        on the first invalid record it either truncates (torn,
        never-acknowledged tail: nothing valid follows) or raises
        (corruption: a valid record follows the damage).
        """
        with open(self.path, "rb") as handle:
            head = handle.read(self._header_size())
            if len(head) < self._header_size() or head[: len(_WAL_MAGIC)] != _WAL_MAGIC:
                raise SnapshotFormatError(f"not a WAL file: {self.path}")
            (base,) = _WAL_BASE.unpack(head[len(_WAL_MAGIC) :])
            lsn = base
            offset = self._header_size()
            while True:
                start = offset
                header = handle.read(_RECORD.size)
                if not header:
                    return base, lsn, offset
                if len(header) < _RECORD.size:
                    return base, lsn, offset  # torn header
                rec_lsn, length, crc, head_crc = _RECORD.unpack(header)
                bad = zlib.crc32(header[:-4]) != head_crc or rec_lsn != lsn + 1
                end = start + _RECORD.size + length
                if not bad:
                    payload = handle.read(length)
                    if len(payload) < length:
                        return base, lsn, offset  # torn payload (header intact)
                    bad = zlib.crc32(payload) != crc
                    resync_from = end
                else:
                    # The length field is untrusted: resync past the header.
                    resync_from = start + 1
                if bad:
                    if self._valid_record_follows(handle, resync_from, lsn):
                        raise SnapshotFormatError(
                            f"WAL corruption at offset {start} (record after "
                            f"lsn {lsn}, with intact records beyond it)"
                        )
                    return base, lsn, offset
                lsn = rec_lsn
                offset = end

    # ------------------------------------------------------------------ write
    def append(self, op: int, row_ids, matrix=None) -> int:
        """Journal one mutation; returns its LSN once durable per policy."""
        if self._closed:
            raise RuntimeError("WAL is closed")
        payload = _encode_record(op, np.asarray(row_ids, dtype=np.int64), matrix)
        with self._lock:
            lsn = self._lsn + 1
            start = self._file.tell()
            try:
                self._file.write(_record_header(lsn, len(payload), zlib.crc32(payload)))
                self._file.write(payload)
                _fault("wal.append.written")
                self._file.flush()
                if self.fsync == "commit":
                    os.fsync(self._file.fileno())
            except BaseException:
                # Roll the stranded bytes back so the log stays appendable: a
                # failed (unacknowledged) append must not leave a record that
                # a retry would duplicate at the same LSN — which the next
                # open would rightly reject as mid-file corruption.
                try:
                    self._file.truncate(start)
                    self._file.seek(start)
                except OSError:
                    pass  # disk truly gone; the open-time scan will judge it
                raise
            _fault("wal.append.synced")
            self._lsn = lsn
            return lsn

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        with self._lock:
            if not self._closed:
                _fsync_file(self._file)

    def rotate(self, base_lsn: int) -> None:
        """Atomically restart the log at ``base_lsn``, keeping any newer tail.

        Called after a checkpoint whose snapshot covers everything up to
        ``base_lsn``: the superseded prefix is dropped and records past it
        (mutations that raced the checkpoint stream) are copied verbatim into
        the fresh file, so the log stays bounded by the checkpoint cadence
        under sustained write load.  Written aside and swapped in with
        ``os.replace``, so a crash mid-rotation leaves either the old intact
        log or the new complete one — never a half-truncated header.
        """
        with self._lock:
            if not self.base_lsn <= base_lsn <= self._lsn:
                raise ValueError(
                    f"cannot rotate WAL to base {base_lsn}: log covers "
                    f"({self.base_lsn}, {self._lsn}]"
                )
            _fsync_file(self._file)
            tmp = self.path.with_suffix(".log.tmp")
            with open(tmp, "wb") as out:
                out.write(_WAL_MAGIC + _WAL_BASE.pack(base_lsn))
                with open(self.path, "rb") as source:
                    source.seek(self._header_size())
                    while True:
                        header = source.read(_RECORD.size)
                        if len(header) < _RECORD.size:
                            break
                        rec_lsn, length, _crc, _hcrc = _RECORD.unpack(header)
                        payload = source.read(length)
                        if rec_lsn > base_lsn:
                            out.write(header)
                            out.write(payload)
                _fsync_file(out)
            _fault("wal.rotate.written")
            os.replace(tmp, self.path)
            _fault("wal.rotate.replaced")
            # Persist the rename on every fsync policy: without the directory
            # fsync a crash right after rotation can resurrect the old log
            # tail (records the checkpoint already superseded).
            _fsync_dir(self.path.parent)
            _fault("wal.rotate.synced")
            self._file.close()
            self._file = open(self.path, "r+b")
            self._file.seek(0, os.SEEK_END)
            self.base_lsn = base_lsn

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------- read
    def replay(self, after_lsn: int = 0):
        """Yield ``(lsn, op, row_ids, matrix)`` for every record past ``after_lsn``.

        Reads from disk (the open handle's appends are flushed first), so it
        reflects exactly what recovery would see.
        """
        self.sync()
        with open(self.path, "rb") as handle:
            handle.seek(self._header_size())
            lsn = self.base_lsn
            while lsn < self._lsn:
                header = handle.read(_RECORD.size)
                rec_lsn, length, _crc, _head_crc = _RECORD.unpack(header)
                payload = handle.read(length)
                lsn = rec_lsn
                if lsn > after_lsn:
                    op, ids, matrix = _decode_record(payload)
                    yield lsn, op, ids, matrix


def read_wal_tail(path, after_lsn: int = 0):
    """Yield ``(lsn, op, row_ids, matrix)`` past ``after_lsn``, read-only.

    The follower-side counterpart of :meth:`WriteAheadLog.replay`: opening a
    :class:`WriteAheadLog` *mutates* the file (it truncates a torn tail), so
    a process that merely tails a log another process is appending to must
    never construct one.  This reader validates the same checksums but stops
    at the first invalid record — under a live writer that is simply an
    append racing the read (or an unacknowledged torn tail after a crash),
    and every record at or below the writer's flushed ``end_lsn`` is
    guaranteed intact before it.  Checksum damage with provably intact
    records beyond it is still corruption and raises.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        head_size = len(_WAL_MAGIC) + _WAL_BASE.size
        head = handle.read(head_size)
        if len(head) < head_size or head[: len(_WAL_MAGIC)] != _WAL_MAGIC:
            raise SnapshotFormatError(f"not a WAL file: {path}")
        (lsn,) = _WAL_BASE.unpack(head[len(_WAL_MAGIC) :])
        offset = head_size
        while True:
            start = offset
            header = handle.read(_RECORD.size)
            if len(header) < _RECORD.size:
                return  # end of log (or torn header)
            rec_lsn, length, crc, head_crc = _RECORD.unpack(header)
            bad = zlib.crc32(header[:-4]) != head_crc or rec_lsn != lsn + 1
            if not bad:
                payload = handle.read(length)
                if len(payload) < length:
                    return  # torn payload
                bad = zlib.crc32(payload) != crc
                resync_from = start + _RECORD.size + length
            else:
                resync_from = start + 1
            if bad:
                if WriteAheadLog._valid_record_follows(handle, resync_from, lsn):
                    raise SnapshotFormatError(
                        f"WAL corruption at offset {start} (record after "
                        f"lsn {lsn}, with intact records beyond it)"
                    )
                return
            lsn = rec_lsn
            offset = start + _RECORD.size + length
            handle.seek(offset)
            if lsn > after_lsn:
                op, ids, matrix = _decode_record(payload)
                yield lsn, op, ids, matrix


# ------------------------------------------------------- aggregator snapshots
def _capture_aggregator(agg: SubproblemAggregator) -> _Capture:
    """Pin a consistent cut of one aggregator plus its serving session.

    The writer lock is held only long enough to pin the session epoch and copy
    the small bookkeeping (deleted ids, high-water mark, counters); the big
    arrays belong to the pinned immutable :class:`SessionState` and stream out
    after the lock drops.  Under ``concurrency="unsafe"`` the state mutates in
    place, so the lock stays held until the capture closes.
    """
    capture = _Capture("aggregator")
    agg.write_lock.acquire()
    hold = agg.concurrency == "unsafe"
    try:
        session = agg.serving_session()
        view = session.snapshot()  # reflattens first if stale; pins the epoch
        capture.pins.append(view.close)
        state = view.state
        capture.meta = {
            "concurrency": agg.concurrency,
            "compaction": agg.compaction,
            "lsm_options": dict(agg._lsm_options),
            "repulsive": list(agg.repulsive),
            "attractive": list(agg.attractive),
            "num_dims": int(agg._num_dims),
            "branching": int(agg.branching),
            "leaf_capacity": int(agg.leaf_capacity),
            "pairing_strategy": agg.pairing_strategy,
            "pairs": [list(pair) for pair in agg.pairing.pairs],
            "leftover_repulsive": list(agg.pairing.leftover_repulsive),
            "leftover_attractive": list(agg.pairing.leftover_attractive),
            "angles": _grid_payload(agg.angle_grid),
            "max_row_id": int(agg._max_row_id),
            "mutations": int(agg._mutations),
            "session": {
                "seed_pool": int(session._seed_pool),
                "reflatten_threshold": float(session.reflatten_threshold),
                "reflattens": int(session.reflattens),
                "patched_inserts": int(session.patched_inserts),
                "patched_deletes": int(session.patched_deletes),
                "num_live": int(state.num_live),
                "appended": int(state.appended),
                "tombstoned": int(state.tombstoned),
            },
        }
        if isinstance(state, LsmWorld):
            # A layered world: per-level execution states plus the delta.
            # Everything below the meta is immutable once pinned, so the
            # array assembly streams after the lock drops.
            capture.meta["session"].update(
                {
                    "kind": "lsm",
                    "flush_rows": int(session.flush_rows),
                    "fanout": int(session.fanout),
                    "background": bool(session.background),
                    "flushes": int(session.flushes),
                    "compactions": int(session.compactions),
                    "delta_absorbed_deletes": int(session.delta_absorbed_deletes),
                    "next_seq": int(session._next_seq),
                }
            )
            capture.meta["levels"] = [
                {
                    "seq": int(level.seq),
                    "num_live": int(level.state.num_live),
                    "appended": int(level.state.appended),
                    "tombstoned": int(level.state.tombstoned),
                    "pair_flats": [
                        {
                            "rep_dim": int(rep),
                            "att_dim": int(att),
                            "num_leaves": int(flat.num_leaves),
                            "appended": int(flat.appended),
                            "dead": int(flat.dead),
                        }
                        for rep, att, flat in level.state.pairs
                    ],
                }
                for level in state.levels
            ]
            column_dims = (
                [int(dim) for dim in state.levels[0].state.col_values]
                if state.levels
                else [int(dim) for dim in agg._column_dims]
            )
            capture.meta["column_dims"] = column_dims
        else:
            capture.meta["session"]["kind"] = "flat"
            capture.meta["pair_flats"] = [
                {
                    "rep_dim": int(rep),
                    "att_dim": int(att),
                    "num_leaves": int(flat.num_leaves),
                    "appended": int(flat.appended),
                    "dead": int(flat.dead),
                }
                for rep, att, flat in state.pairs
            ]
            capture.meta["column_dims"] = [int(dim) for dim in state.col_values]
        deleted = np.fromiter(
            sorted(agg._deleted), dtype=np.int64, count=len(agg._deleted)
        )
    except BaseException:
        capture.close()
        agg.write_lock.release()
        raise
    if hold:
        capture.locks.append(agg.write_lock)
    else:
        agg.write_lock.release()
    arrays = capture.arrays
    arrays["deleted"] = deleted
    if isinstance(state, LsmWorld):
        _capture_lsm_arrays(agg, state, arrays)
        return capture
    arrays["rows"] = state.rows
    arrays["matrix"] = state.matrix
    arrays["live"] = state.live
    arrays["row_order"] = state.row_order
    arrays["sorted_rows"] = state.sorted_rows
    for p, (_rep, _att, flat) in enumerate(state.pairs):
        _capture_pair_arrays(arrays, f"pair{p}", flat, state.pair_leaf_of_position[p])
    for dim in state.col_values:
        arrays[f"col{dim}_values"] = state.col_values[dim]
        arrays[f"col{dim}_positions"] = state.col_positions[dim]
    return capture


def _capture_pair_arrays(
    arrays: Dict[str, np.ndarray],
    prefix: str,
    flat: _FlatTree,
    leaf_of_position: np.ndarray,
) -> None:
    arrays[f"{prefix}_rows"] = flat.rows
    arrays[f"{prefix}_x"] = flat.x
    arrays[f"{prefix}_y"] = flat.y
    arrays[f"{prefix}_live"] = flat.live
    arrays[f"{prefix}_leaf_bounds"] = flat.leaf_bounds
    arrays[f"{prefix}_leaf_min_x"] = flat.leaf_min_x
    arrays[f"{prefix}_leaf_max_x"] = flat.leaf_max_x
    arrays[f"{prefix}_leaf_min_y"] = flat.leaf_min_y
    arrays[f"{prefix}_leaf_max_y"] = flat.leaf_max_y
    arrays[f"{prefix}_leaf_of_pos"] = flat.leaf_of_pos
    arrays[f"{prefix}_grid_cos"] = flat.grid_cos
    arrays[f"{prefix}_grid_sin"] = flat.grid_sin
    arrays[f"{prefix}_grid_rad"] = flat.grid_rad
    arrays[f"{prefix}_leaf_of_position"] = leaf_of_position


def _capture_lsm_arrays(
    agg: SubproblemAggregator, world: LsmWorld, arrays: Dict[str, np.ndarray]
) -> None:
    """Arrays of one pinned :class:`LsmWorld` (levels verbatim, delta verbatim).

    The top-level ``rows``/``matrix`` are the world's *live* rows concatenated
    in level order — the aggregator's row bookkeeping, sorted-column seeds and
    deferred tree builders all restore from that flat view, exactly as they do
    from a legacy single-state snapshot whose rows happen to be all live.
    """
    live_rows = world.live_row_ids()
    live_matrix = world.live_matrix() if world.num_live else np.empty(
        (0, agg._num_dims), dtype=float
    )
    arrays["rows"] = live_rows
    arrays["matrix"] = live_matrix
    arrays["live"] = np.ones(len(live_rows), dtype=bool)
    for dim in agg._column_dims:
        order = np.argsort(live_matrix[:, dim], kind="stable").astype(np.int64)
        arrays[f"col{dim}_values"] = np.ascontiguousarray(live_matrix[order, dim])
        arrays[f"col{dim}_positions"] = order
    for i, level in enumerate(world.levels):
        state = level.state
        arrays[f"lvl{i}_rows"] = state.rows
        arrays[f"lvl{i}_matrix"] = state.matrix
        arrays[f"lvl{i}_live"] = state.live
        arrays[f"lvl{i}_row_order"] = state.row_order
        arrays[f"lvl{i}_sorted_rows"] = state.sorted_rows
        for p, (_rep, _att, flat) in enumerate(state.pairs):
            _capture_pair_arrays(
                arrays, f"lvl{i}_pair{p}", flat, state.pair_leaf_of_position[p]
            )
        for dim in state.col_values:
            arrays[f"lvl{i}_col{dim}_values"] = state.col_values[dim]
            arrays[f"lvl{i}_col{dim}_positions"] = state.col_positions[dim]
    arrays["delta_rows"] = world.delta.rows
    arrays["delta_matrix"] = world.delta.matrix
    arrays["delta_live"] = world.delta.live


def _restore_flat_tree(
    arrays: Dict[str, np.ndarray],
    prefix: str,
    meta: Dict[str, Any],
) -> _FlatTree:
    flat = _FlatTree.__new__(_FlatTree)
    flat.rows = arrays[f"{prefix}_rows"]
    flat.x = arrays[f"{prefix}_x"]
    flat.y = arrays[f"{prefix}_y"]
    flat.live = arrays[f"{prefix}_live"]
    flat.leaf_bounds = arrays[f"{prefix}_leaf_bounds"]
    flat.leaf_min_x = arrays[f"{prefix}_leaf_min_x"]
    flat.leaf_max_x = arrays[f"{prefix}_leaf_max_x"]
    flat.leaf_of_pos = arrays[f"{prefix}_leaf_of_pos"]
    flat.num_leaves = int(meta["num_leaves"])
    flat.appended = int(meta["appended"])
    flat.dead = int(meta["dead"])
    flat.grid_cos = arrays[f"{prefix}_grid_cos"]
    flat.grid_sin = arrays[f"{prefix}_grid_sin"]
    flat.grid_rad = arrays[f"{prefix}_grid_rad"]
    # The bound grid rides in the snapshot itself (it may be finer than the
    # aggregator's partition grid since PR 10); rebuild the angle tuple from
    # the stored components so maintenance loops stay aligned with the bounds.
    flat.angles = tuple(
        Angle(cos=float(c), sin=float(s))
        for c, s in zip(flat.grid_cos, flat.grid_sin)
    )
    # Pre-PR-10 snapshots carry no per-leaf y extrema; substitute the inert
    # infinite box so the second-pass box bound degrades to a no-op instead of
    # mispruning — format v1 stays fully readable.
    min_y = arrays.get(f"{prefix}_leaf_min_y")
    max_y = arrays.get(f"{prefix}_leaf_max_y")
    flat.leaf_min_y = (
        min_y if min_y is not None else np.full(flat.num_leaves, -np.inf)
    )
    flat.leaf_max_y = (
        max_y if max_y is not None else np.full(flat.num_leaves, np.inf)
    )
    flat._pos_of_row = None
    return flat


def _restore_aggregator(
    payload: Dict[str, Any], arrays: Dict[str, np.ndarray]
) -> SubproblemAggregator:
    """Rebuild an aggregator plus its serving session from checkpoint arrays.

    The serving :class:`SessionState` is restored verbatim (every kernel input
    byte-for-byte as checkpointed) and published as the session's first epoch;
    the projection trees and sorted-column refreshes are deferred behind
    :class:`Deferred` builders over the checkpointed live rows, so a loaded
    engine serves immediately and only pays the tree build when maintenance
    first needs it.
    """
    agg = SubproblemAggregator.__new__(SubproblemAggregator)
    agg.concurrency = payload["concurrency"]
    # Pre-LSM snapshots (format v1 golden fixtures) carry no compaction key:
    # they restore as legacy in-place sessions, bit-identical to before.
    agg.compaction = payload.get("compaction", "legacy")
    agg._lsm_options = dict(payload.get("lsm_options", {"background": True}))
    agg._write_lock = threading.RLock()
    agg._num_dims = int(payload["num_dims"])
    agg.repulsive = tuple(int(d) for d in payload["repulsive"])
    agg.attractive = tuple(int(d) for d in payload["attractive"])
    agg.angle_grid = _grid_from_payload(payload["angles"])
    agg.branching = int(payload["branching"])
    agg.leaf_capacity = int(payload["leaf_capacity"])
    agg.pairing_strategy = payload["pairing_strategy"]
    agg.pairing = DimensionPairing(
        pairs=tuple((int(r), int(a)) for r, a in payload["pairs"]),
        leftover_repulsive=tuple(int(d) for d in payload["leftover_repulsive"]),
        leftover_attractive=tuple(int(d) for d in payload["leftover_attractive"]),
    )

    rows = arrays["rows"]
    matrix = arrays["matrix"]
    live = arrays["live"]
    deleted_ids = arrays["deleted"]
    # Row bookkeeping: every checkpointed row (live or tombstoned) maps to its
    # matrix position; deleted ids whose physical rows were compacted away by
    # an earlier reflatten keep a sentinel entry so ``__len__`` and the
    # id-reuse guard stay exact (their positions are never dereferenced —
    # ``point`` and ``_build`` filter on ``_deleted`` first).
    base = {int(row): i for i, row in enumerate(rows)}
    for row in deleted_ids:
        base.setdefault(int(row), -1)
    agg._base_rows = base
    agg._base_matrix = matrix
    agg._extra_points = {}
    agg._deleted = set(int(row) for row in deleted_ids)
    agg._max_row_id = int(payload["max_row_id"])
    agg._mutations = int(payload["mutations"])

    agg._column_dims = list(agg.pairing.leftover_repulsive) + list(
        agg.pairing.leftover_attractive
    )
    agg._columns = {}
    for dim in agg._column_dims:
        # The session's maintained sorted splice is already in sorted order;
        # bypass the constructor's argsort.  Tombstoned rows may linger — the
        # legacy streams skip rows in ``_deleted``.
        column = SortedColumn.__new__(SortedColumn)
        column._values = np.asarray(arrays[f"col{dim}_values"])
        column._rows = np.asarray(rows[arrays[f"col{dim}_positions"]])
        agg._columns[dim] = column
    # Columns holding tombstoned rows must be flagged dirty: a session rebuild
    # maps ``column.row_ids`` to live positions, and a dead id there would
    # resolve to a wrong position (or out of range) and corrupt the rebuilt
    # sorted-column state.  The refresh on first use drops the dead rows.
    agg._columns_dirty = bool(agg._column_dims) and not bool(np.all(live))

    def make_pair_builder(rep_dim: int, att_dim: int) -> Callable[[], TopKIndex]:
        def build() -> TopKIndex:
            keep = np.asarray(live, dtype=bool)
            return TopKIndex(
                x=np.asarray(matrix[:, att_dim])[keep],
                y=np.asarray(matrix[:, rep_dim])[keep],
                angle_grid=agg.angle_grid,
                branching=agg.branching,
                leaf_capacity=agg.leaf_capacity,
                row_ids=[int(r) for r in rows[keep]],
            )

        return build

    agg._pair_indexes = [
        Deferred(make_pair_builder(rep, att)) for rep, att in agg.pairing.pairs
    ]
    agg._sessions = []
    agg._serving_session = None
    agg._closed = False

    # Serving session: the checkpointed execution state, republished verbatim.
    meta = payload["session"]
    scored = set(agg.repulsive) | set(agg.attractive)
    if meta.get("kind", "flat") == "lsm":
        session = _restore_lsm_session(agg, payload, arrays, scored)
        agg._serving_session = session
        agg._register_session(session)
        return agg
    session = QuerySession.__new__(QuerySession)
    session._aggregator = agg
    session._seed_pool = int(meta["seed_pool"])
    session.reflatten_threshold = float(meta["reflatten_threshold"])
    session.concurrency = agg.concurrency
    session.epochs = EpochManager()
    session.reflattens = int(meta["reflattens"])
    session.patched_inserts = int(meta["patched_inserts"])
    session.patched_deletes = int(meta["patched_deletes"])
    session._dirty = False
    session._generation = agg._mutations

    state = _restore_session_state(
        agg,
        payload["pair_flats"],
        arrays,
        "",
        {**meta, "column_dims": payload["column_dims"]},
        scored,
    )
    session.epochs.publish(state)
    agg._serving_session = session
    agg._register_session(session)
    return agg


def _restore_session_state(
    agg: SubproblemAggregator,
    pair_flats: List[Dict[str, Any]],
    arrays: Dict[str, np.ndarray],
    prefix: str,
    meta: Dict[str, Any],
    scored: set,
) -> SessionState:
    """One frozen execution state from ``{prefix}rows``/``{prefix}pair{p}_*``."""
    rows = arrays[f"{prefix}rows"]
    matrix = arrays[f"{prefix}matrix"]
    pairs: List[Tuple[int, int, _FlatTree]] = []
    leaf_of_position: List[np.ndarray] = []
    for p, flat_meta in enumerate(pair_flats):
        flat = _restore_flat_tree(arrays, f"{prefix}pair{p}", flat_meta)
        pairs.append((int(flat_meta["rep_dim"]), int(flat_meta["att_dim"]), flat))
        leaf_of_position.append(arrays[f"{prefix}pair{p}_leaf_of_position"])
    return SessionState(
        rows=rows,
        matrix=matrix,
        live=arrays[f"{prefix}live"],
        num_live=int(meta["num_live"]),
        row_order=arrays[f"{prefix}row_order"],
        sorted_rows=arrays[f"{prefix}sorted_rows"],
        columns_by_dim={dim: matrix[:, dim] for dim in scored},
        pairs=pairs,
        pair_leaf_of_position=leaf_of_position,
        col_values={
            int(dim): arrays[f"{prefix}col{dim}_values"] for dim in meta["column_dims"]
        },
        col_positions={
            int(dim): arrays[f"{prefix}col{dim}_positions"]
            for dim in meta["column_dims"]
        },
        appended=int(meta["appended"]),
        tombstoned=int(meta["tombstoned"]),
    )


def _restore_lsm_session(
    agg: SubproblemAggregator,
    payload: Dict[str, Any],
    arrays: Dict[str, np.ndarray],
    scored: set,
) -> LsmSession:
    """Rebuild an :class:`LsmSession` publishing the checkpointed world.

    Every level's arrays restore verbatim (mmap-able, immutable); the delta's
    row-id lookup structures are recomputed from its arrays (cheap — the delta
    is bounded by the flush threshold).
    """
    meta = payload["session"]
    session = LsmSession.__new__(LsmSession)
    session._aggregator = agg
    session._seed_pool = int(meta["seed_pool"])
    session.reflatten_threshold = float(meta["reflatten_threshold"])
    session.concurrency = agg.concurrency
    session.epochs = EpochManager()
    session.reflattens = int(meta["reflattens"])
    session.patched_inserts = int(meta["patched_inserts"])
    session.patched_deletes = int(meta["patched_deletes"])
    session._dirty = False
    session._generation = agg._mutations
    session.flush_rows = int(meta["flush_rows"])
    session.fanout = int(meta["fanout"])
    session.background = bool(meta["background"])
    session.auto_compaction = True
    session.flushes = int(meta["flushes"])
    session.compactions = int(meta["compactions"])
    session.delta_absorbed_deletes = int(meta["delta_absorbed_deletes"])
    session._next_seq = int(meta["next_seq"])
    session._maintain_lock = threading.Lock()
    session._compactor = None
    session._maintenance_error = None

    column_dims = payload["column_dims"]
    levels = []
    for i, level_meta in enumerate(payload["levels"]):
        state = _restore_session_state(
            agg,
            level_meta["pair_flats"],
            arrays,
            f"lvl{i}_",
            {**level_meta, "column_dims": column_dims},
            scored,
        )
        levels.append(Level(int(level_meta["seq"]), state))

    delta_rows = np.asarray(arrays["delta_rows"], dtype=np.int64)
    delta_matrix = np.asarray(arrays["delta_matrix"], dtype=float)
    delta_live = np.asarray(arrays["delta_live"], dtype=bool)
    order = np.argsort(delta_rows, kind="stable").astype(np.int64)
    delta = DeltaState(
        rows=delta_rows,
        matrix=delta_matrix,
        live=delta_live,
        num_live=int(delta_live.sum()),
        sorted_rows=delta_rows[order],
        row_order=order,
        columns_by_dim={
            dim: np.ascontiguousarray(delta_matrix[:, dim]) for dim in scored
        },
    )
    session.epochs.publish(LsmWorld(tuple(levels), delta))
    return session


# ----------------------------------------------------------- engine captures
def _capture_sdindex(index: SDIndex) -> _Capture:
    capture = _capture_aggregator(index._aggregator)
    capture.kind = "sdindex"
    return capture


def _restore_sdindex(
    payload: Dict[str, Any], arrays: Dict[str, np.ndarray], _path, _mmap, _verify
) -> SDIndex:
    index = SDIndex.__new__(SDIndex)
    index._aggregator = _restore_aggregator(payload, arrays)
    index.repulsive = index._aggregator.repulsive
    index.attractive = index._aggregator.attractive
    index.num_dims = index._aggregator._num_dims
    return index


def _encode_index_options(options: Dict[str, Any]) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for key, value in options.items():
        if isinstance(value, AngleGrid):
            encoded[key] = {"__angle_grid__": _grid_payload(value)}
        elif isinstance(value, (type(None), bool, int, float, str)):
            encoded[key] = value
        elif isinstance(value, (list, tuple)):
            encoded[key] = list(value)
        else:
            raise ValueError(
                f"index option {key!r}={value!r} is not snapshot-serializable"
            )
    return encoded


def _decode_index_options(options: Dict[str, Any]) -> Dict[str, Any]:
    decoded: Dict[str, Any] = {}
    for key, value in options.items():
        if isinstance(value, dict) and "__angle_grid__" in value:
            decoded[key] = _grid_from_payload(value["__angle_grid__"])
        else:
            decoded[key] = value
    return decoded


def _capture_sharded(engine: ShardedIndex) -> _Capture:
    """One consistent cut of the whole sharded engine.

    Holding the engine writer lock excludes every mutation path (updates and
    rebalances all serialize on it), so the topology, the router map, the
    engine bookkeeping and each shard's pinned session epoch are captured at
    one point in time; the per-shard array streams run after the lock drops
    (or under it, for ``concurrency="unsafe"``).
    """
    if engine.closed:
        raise RuntimeError("ShardedIndex is closed")
    capture = _Capture("sharded")
    engine._write_lock.acquire()
    try:
        topology = engine._topology.current_state()
        router = topology.router
        assignments = router.assignments()
        assigned_rows = np.fromiter(
            sorted(assignments), dtype=np.int64, count=len(assignments)
        )
        assigned_shards = np.asarray(
            [assignments[int(row)] for row in assigned_rows], dtype=np.int64
        )
        capture.meta = {
            "concurrency": engine.concurrency,
            "repulsive": list(engine.repulsive),
            "attractive": list(engine.attractive),
            "num_dims": int(engine.num_dims),
            "num_shards": int(router.num_shards),
            "partitioner": router.partitioner,
            "range_dim": router.range_dim,
            "boundaries": None
            if router.boundaries is None
            else [float(b) for b in router.boundaries],
            "salt": int(router.salt),
            "rebalance_threshold": float(engine.rebalance_threshold),
            "parallel": bool(engine.parallel),
            "max_workers": engine._max_workers,
            "index_options": _encode_index_options(engine._index_options),
            "max_row_id": int(engine._max_row_id),
            "rebalances": int(engine.rebalances),
        }
        capture.arrays["router_rows"] = assigned_rows
        capture.arrays["router_shards"] = assigned_shards
        capture.arrays["deleted"] = np.fromiter(
            sorted(engine._deleted), dtype=np.int64, count=len(engine._deleted)
        )
        for s, shard in enumerate(topology.shards):
            capture.children[f"shard-{s}"] = _capture_aggregator(shard)
    except BaseException:
        capture.close()
        engine._write_lock.release()
        raise
    if engine.concurrency == "unsafe":
        capture.locks.append(engine._write_lock)
    else:
        engine._write_lock.release()
    return capture


def _restore_sharded(
    payload: Dict[str, Any], arrays: Dict[str, np.ndarray], path, mmap, verify
) -> ShardedIndex:
    engine = ShardedIndex.__new__(ShardedIndex)
    engine.repulsive = tuple(int(d) for d in payload["repulsive"])
    engine.attractive = tuple(int(d) for d in payload["attractive"])
    engine.num_dims = int(payload["num_dims"])
    engine.concurrency = payload["concurrency"]
    engine.rebalance_threshold = float(payload["rebalance_threshold"])
    engine.parallel = bool(payload["parallel"])
    engine._max_workers = payload["max_workers"]
    engine._index_options = _decode_index_options(payload["index_options"])
    engine._executor = None
    engine._closed = False
    engine._write_lock = threading.RLock()
    engine._deleted = set(int(row) for row in arrays["deleted"])
    engine._max_row_id = int(payload["max_row_id"])
    engine.rebalances = int(payload["rebalances"])
    engine.serve_stats = {
        "probes": 0,
        "pruned": 0,
        "rounds": 0,
        "skipped": 0,
        "retries": 0,
    }
    # Resilience policy is runtime serving configuration, not index state:
    # a restored engine starts in the legacy fail-fast mode until the owner
    # attaches a policy, exactly like a freshly constructed one.
    engine.resilience = None
    engine._breakers = None

    router = ShardRouter(
        int(payload["num_shards"]),
        payload["partitioner"],
        payload["range_dim"],
        boundaries=None
        if payload["boundaries"] is None
        else np.asarray(payload["boundaries"], dtype=float),
    )
    router.salt = int(payload["salt"])
    router._shard_of = {
        int(row): int(shard)
        for row, shard in zip(arrays["router_rows"], arrays["router_shards"])
    }
    shards = []
    for s in range(router.num_shards):
        child_dir = Path(path) / f"shard-{s}"
        child_manifest = _read_manifest(child_dir)
        if child_manifest["engine"] != "aggregator":
            raise SnapshotFormatError(
                f"shard snapshot {child_dir} holds a "
                f"{child_manifest['engine']!r} payload, expected an aggregator"
            )
        child_arrays = _load_arrays(child_dir, child_manifest, mmap, verify)
        shards.append(_restore_aggregator(child_manifest["payload"], child_arrays))
    engine._topology = EpochManager()
    engine._topology.publish(_ShardTopology(router, tuple(shards)))
    return engine


def _capture_topk(index: TopKIndex) -> _Capture:
    capture = _Capture("topk")
    index._write_lock.acquire()
    try:
        flat = index.flat_session()
        epoch = index.flat_epochs.pin()
        capture.pins.append(epoch.release)
        tree = index.tree
        if isinstance(tree, Deferred) and not tree.materialized:
            # Saving a freshly loaded index: the tree parameters live on the
            # Deferred's spec — reading them through the proxy would force the
            # very build the warm start deferred.
            spec = tree.spec
            branching = spec["branching"]
            leaf_capacity = spec["leaf_capacity"]
            rebuild_threshold = spec["rebuild_threshold"]
            tombstones = np.asarray(spec["tombstones"], dtype=np.int64)
        else:
            branching = tree.branching
            leaf_capacity = tree.leaf_capacity
            rebuild_threshold = tree.rebuild_threshold
            tombstones = np.fromiter(
                sorted(tree._tombstones), dtype=np.int64, count=len(tree._tombstones)
            )
        capture.meta = {
            "concurrency": index.concurrency,
            "angles": _grid_payload(index.angle_grid),
            "branching": int(branching),
            "leaf_capacity": int(leaf_capacity),
            "rebuild_threshold": float(rebuild_threshold),
            "flat_threshold": float(index._flat_threshold),
            "session_reflattens": int(index.session_reflattens),
            "flat": {
                "num_leaves": int(flat.num_leaves),
                "appended": int(flat.appended),
                "dead": int(flat.dead),
            },
        }
        capture.arrays = {
            # The tree's tombstone set rides along so the restored index keeps
            # the exact id-reuse guard and auto-id assignment until the next
            # rebuild clears them — the same contract as the live tree.
            "tombstones": tombstones,
            "flat_rows": flat.rows,
            "flat_x": flat.x,
            "flat_y": flat.y,
            "flat_live": flat.live,
            "flat_leaf_bounds": flat.leaf_bounds,
            "flat_leaf_min_x": flat.leaf_min_x,
            "flat_leaf_max_x": flat.leaf_max_x,
            "flat_leaf_min_y": flat.leaf_min_y,
            "flat_leaf_max_y": flat.leaf_max_y,
            "flat_leaf_of_pos": flat.leaf_of_pos,
            "flat_grid_cos": flat.grid_cos,
            "flat_grid_sin": flat.grid_sin,
            "flat_grid_rad": flat.grid_rad,
        }
    except BaseException:
        capture.close()
        index._write_lock.release()
        raise
    if index.concurrency == "unsafe":
        capture.locks.append(index._write_lock)
    else:
        index._write_lock.release()
    return capture


def _restore_topk(
    payload: Dict[str, Any], arrays: Dict[str, np.ndarray], _path, _mmap, _verify
) -> TopKIndex:
    index = TopKIndex.__new__(TopKIndex)
    index.angle_grid = _grid_from_payload(payload["angles"])
    flat = _restore_flat_tree(arrays, "flat", payload["flat"])
    rows, x, y, live = flat.rows, flat.x, flat.y, flat.live
    branching = int(payload["branching"])
    leaf_capacity = int(payload["leaf_capacity"])
    rebuild_threshold = float(payload["rebuild_threshold"])

    tombstones = arrays["tombstones"]

    def build_tree():
        from repro.core.projection_tree import ProjectionTree

        keep = np.asarray(live, dtype=bool)
        tree = ProjectionTree(
            np.asarray(x)[keep],
            np.asarray(y)[keep],
            angles=tuple(index.angle_grid),
            branching=branching,
            leaf_capacity=leaf_capacity,
            row_ids=[int(r) for r in rows[keep]],
            rebuild_threshold=rebuild_threshold,
        )
        # Re-seed the checkpointed tombstones: their ids stay unusable (and
        # count toward the rebuild garbage) until a rebuild clears them,
        # exactly as on the pre-checkpoint tree.
        tree._tombstones.update(int(r) for r in tombstones)
        return tree

    index.tree = Deferred(
        build_tree,
        spec={
            "branching": branching,
            "leaf_capacity": leaf_capacity,
            "rebuild_threshold": rebuild_threshold,
            "tombstones": tombstones,
        },
    )
    index._flat = flat
    index._flat_dirty = False
    index._flat_threshold = float(payload["flat_threshold"])
    index.concurrency = payload["concurrency"]
    index._write_lock = threading.RLock()
    index.flat_epochs = EpochManager()
    index.flat_epochs.publish(flat)
    index.session_reflattens = int(payload["session_reflattens"])
    return index


def _capture_top1(index: Top1Index) -> _Capture:
    capture = _Capture("top1")
    with index._write_lock:
        points = sorted(index._points.items())
        pending = sorted(index._pending.items())
        capture.meta = {
            "k": int(index.k),
            "cos": index.angle.cos,
            "sin": index.angle.sin,
            "score_scale": index.score_scale,
            "mutations": int(index._mutations),
            "build_seconds": float(index._build_seconds),
            "lower_layers": len(index._lower_layers),
            "upper_layers": len(index._upper_layers),
            "klists": sorted(index._klists),
        }
        capture.arrays["points_rows"] = np.asarray(
            [row for row, _ in points], dtype=np.int64
        )
        capture.arrays["points_xy"] = np.asarray(
            [xy for _, xy in points], dtype=float
        ).reshape(len(points), 2)
        capture.arrays["pending_rows"] = np.asarray(
            [row for row, _ in pending], dtype=np.int64
        )
        capture.arrays["pending_xy"] = np.asarray(
            [xy for _, xy in pending], dtype=float
        ).reshape(len(pending), 2)
        for side, layers in (
            ("lower", index._lower_layers),
            ("upper", index._upper_layers),
        ):
            for i, envelope in enumerate(layers):
                capture.arrays[f"{side}{i}_owners"] = np.asarray(
                    envelope.owners, dtype=np.int64
                )
                capture.arrays[f"{side}{i}_breaks"] = np.asarray(
                    envelope.breakpoints, dtype=float
                )
        for name, structure in index._klists.items():
            sets = structure.candidate_sets
            offsets = np.zeros(len(sets) + 1, dtype=np.int64)
            np.cumsum([len(members) for members in sets], out=offsets[1:])
            members = np.asarray(
                [row for group in sets for row in group], dtype=np.int64
            )
            capture.arrays[f"klist_{name}_breaks"] = np.asarray(
                structure.breakpoints, dtype=float
            )
            capture.arrays[f"klist_{name}_offsets"] = offsets
            capture.arrays[f"klist_{name}_members"] = members
    return capture


def _restore_top1(
    payload: Dict[str, Any], arrays: Dict[str, np.ndarray], _path, _mmap, _verify
) -> Top1Index:
    index = Top1Index.__new__(Top1Index)
    index.angle = _angle_exact(payload["cos"], payload["sin"])
    index.k = int(payload["k"])
    index.score_scale = float(payload["score_scale"])
    index._points = {
        int(row): (float(x), float(y))
        for row, (x, y) in zip(arrays["points_rows"], arrays["points_xy"])
    }
    index._pending = {
        int(row): (float(x), float(y))
        for row, (x, y) in zip(arrays["pending_rows"], arrays["pending_xy"])
    }
    index._build_seconds = float(payload["build_seconds"])
    index._region_cache = None
    index._mutations = int(payload["mutations"])
    index._write_lock = threading.RLock()
    index.view_epochs = EpochManager()
    index._view_built_at = -1
    index._owner_rows = set()
    index._lower_layers = []
    index._upper_layers = []
    index._klists = {}
    for side, count, target in (
        ("lower", payload["lower_layers"], index._lower_layers),
        ("upper", payload["upper_layers"], index._upper_layers),
    ):
        enum_side = (
            EnvelopeSide.LOWER_PROJECTIONS
            if side == "lower"
            else EnvelopeSide.UPPER_PROJECTIONS
        )
        for i in range(count):
            envelope = Envelope(
                enum_side,
                [int(r) for r in arrays[f"{side}{i}_owners"]],
                [float(b) for b in arrays[f"{side}{i}_breaks"]],
            )
            target.append(envelope)
            index._owner_rows.update(envelope.owners)
    for name in payload["klists"]:
        structure = _RunningTopKRegions.__new__(_RunningTopKRegions)
        structure.breakpoints = [float(b) for b in arrays[f"klist_{name}_breaks"]]
        offsets = arrays[f"klist_{name}_offsets"]
        members = arrays[f"klist_{name}_members"]
        structure.candidate_sets = [
            tuple(int(r) for r in members[offsets[i] : offsets[i + 1]])
            for i in range(len(offsets) - 1)
        ]
        index._klists[name] = structure
        index._owner_rows.update(structure.indexed_rows())
    return index


_CAPTURE_BY_TYPE: List[Tuple[type, Callable]] = [
    (SDIndex, _capture_sdindex),
    (ShardedIndex, _capture_sharded),
    (TopKIndex, _capture_topk),
    (Top1Index, _capture_top1),
]

def _restore_aggregator_kind(payload, arrays, _path, _mmap, _verify):
    # Shard children are written with kind="aggregator"; exposing the kind
    # through load_engine lets a worker process mmap-load exactly one shard's
    # sub-snapshot without restoring its siblings.
    return _restore_aggregator(payload, arrays)


_RESTORE_BY_KIND: Dict[str, Callable] = {
    "sdindex": _restore_sdindex,
    "sharded": _restore_sharded,
    "aggregator": _restore_aggregator_kind,
    "topk": _restore_topk,
    "top1": _restore_top1,
}


def capture_engine(engine) -> _Capture:
    """Pin a consistent, streamable cut of any supported engine."""
    for engine_type, capture in _CAPTURE_BY_TYPE:
        if isinstance(engine, engine_type):
            return capture(engine)
    raise TypeError(f"no snapshot support for {type(engine).__name__}")


def save_engine(engine, path, extra: Optional[Dict] = None) -> Path:
    """Write a standalone snapshot of ``engine`` at ``path`` (a directory).

    Writers keep running while the snapshot streams (snapshot-concurrency
    engines; ``"unsafe"`` engines hold their writer lock for the duration).
    """
    capture = capture_engine(engine)
    try:
        _write_capture(capture, Path(path), extra=extra)
    finally:
        capture.close()
    return Path(path)


def load_engine(path, mmap: bool = False, verify: Optional[bool] = None, expect: Optional[str] = None):
    """Load an engine snapshot written by :func:`save_engine`.

    ``mmap=True`` memory-maps the arrays (read-only) for a near-instant warm
    start; updates then route through the copy-on-write patch path.  ``verify``
    forces (or skips) the per-file checksum pass — the default checks on full
    loads and trusts sizes alone under mmap.  ``expect`` pins the engine kind
    (the facade ``load`` classmethods use it) and raises
    :class:`SnapshotFormatError` on a mismatch.
    """
    path = Path(path)
    manifest = _read_manifest(path)
    kind = manifest["engine"]
    if expect is not None and kind != expect:
        raise SnapshotFormatError(
            f"snapshot at {path} holds a {kind!r} engine, expected {expect!r}"
        )
    try:
        restore = _RESTORE_BY_KIND[kind]
    except KeyError:
        raise SnapshotFormatError(f"unknown engine kind {kind!r} in {path}") from None
    if not mmap:
        arrays = _load_arrays(path, manifest, mmap, verify)
        return restore(manifest["payload"], arrays, path, mmap, verify)
    # Collect every mapping (including nested per-shard loads) into one guard
    # so the engine's close() can release the file handles afterwards.
    guard = MmapGuard()
    previous = getattr(_ACTIVE_GUARD, "guard", None)
    _ACTIVE_GUARD.guard = guard
    try:
        arrays = _load_arrays(path, manifest, mmap, verify)
        engine = restore(manifest["payload"], arrays, path, mmap, verify)
    finally:
        _ACTIVE_GUARD.guard = previous
    engine._mmap_guard = guard
    return engine


# ------------------------------------------------------------ durable engine
_KIND_2D = ("topk", "top1")


def _take_over_maintenance(engine) -> None:
    """Claim LSM maintenance scheduling from an engine that self-schedules.

    Joins any in-flight background compaction first, so no unjournaled
    structure flip races the takeover; no-op for engines without LSM
    maintenance (legacy aggregators, 2D indexes, sharded engines).
    """
    disable = getattr(engine, "set_auto_compaction", None)
    if disable is None:
        return
    disable(False)
    quiesce = getattr(engine, "quiesce_maintenance", None)
    if quiesce is not None:
        quiesce()


def _engine_kind(engine) -> str:
    if isinstance(engine, SDIndex):
        return "sdindex"
    if isinstance(engine, ShardedIndex):
        return "sharded"
    if isinstance(engine, TopKIndex):
        return "topk"
    if isinstance(engine, Top1Index):
        return "top1"
    raise TypeError(f"no durability support for {type(engine).__name__}")


def _apply_record(engine, kind: str, op: int, ids: np.ndarray, matrix) -> None:
    """Replay one WAL record onto a restored engine (exact ids, exact order)."""
    if op == OP_INSERT:
        if kind in _KIND_2D:
            engine.insert(float(matrix[0, 0]), float(matrix[0, 1]), row_id=int(ids[0]))
        else:
            engine.insert(matrix[0], row_id=int(ids[0]))
    elif op == OP_DELETE:
        engine.delete(int(ids[0]))
    elif op == OP_BULK_INSERT:
        if kind in _KIND_2D:
            for row, point in zip(ids, matrix):
                engine.insert(float(point[0]), float(point[1]), row_id=int(row))
        else:
            engine.bulk_insert(matrix, row_ids=[int(r) for r in ids])
    elif op == OP_BULK_DELETE:
        if kind in _KIND_2D:
            for row in ids:
                engine.delete(int(row))
        else:
            engine.bulk_delete([int(r) for r in ids])
    elif op == OP_REBALANCE:
        engine.rebalance()
    elif op == OP_REBUILD:
        engine.rebuild()
    elif op == OP_FLUSH:
        engine.flush()
    elif op == OP_COMPACT:
        engine.compact([int(s) for s in ids])
    else:  # pragma: no cover - decode already validated the op byte
        raise SnapshotFormatError(f"unknown WAL op {op}")


class DurableIndex:
    """An engine paired with a snapshot directory and a write-ahead log.

    Layout of ``path``::

        CURRENT           -> name of the active snapshot directory
        snapshot-000001/  -> MANIFEST.json + arrays/*.npy (+ shard-*/)
        wal.log           -> length-prefixed, checksummed mutation journal

    Mutations apply to the engine and append to the WAL before they are
    acknowledged; :meth:`checkpoint` streams a fresh snapshot (writers keep
    running — the capture pins an epoch and copies only small bookkeeping
    under the lock), flips ``CURRENT`` atomically, prunes superseded snapshot
    directories and rotates the log when it safely can.  :meth:`recover`
    loads the ``CURRENT`` snapshot and replays the WAL tail past the
    snapshot's recorded LSN, yielding an engine bit-identical (in its
    answers) to the pre-crash one.
    """

    def __init__(self, engine, path, wal: WriteAheadLog, kind: str, snapshot_seq: int,
                 last_recovery: Optional[Dict[str, Any]] = None) -> None:
        self._engine = engine
        self.path = Path(path)
        self._wal = wal
        self.kind = kind
        self._snapshot_seq = snapshot_seq
        self._lock = threading.RLock()
        #: Serializes whole checkpoints against each other (mutations only
        #: contend on ``_lock``, and only for a checkpoint's brief capture
        #: phase): two concurrent checkpoints must never share a sequence
        #: number or interleave writes into one snapshot directory.
        self._checkpoint_lock = threading.Lock()
        #: Set when an op applied to the engine but its journal append failed:
        #: live state is ahead of the log, so further mutations or checkpoints
        #: would make the divergence durable.  Reads stay allowed.
        self._poisoned: Optional[str] = None
        self.last_recovery = dict(last_recovery or {})
        # LSM engines: the wrapper takes over maintenance scheduling so every
        # flush/compact lands in the journal, in apply order — recover() then
        # rebuilds the exact delta+levels structure, not just the row set.
        # (Sharded engines keep their own per-shard auto compaction: structure
        # ops never change answers, so replay stays exact either way.)
        _take_over_maintenance(engine)

    # ------------------------------------------------------------ construction
    @classmethod
    def create(cls, engine, path, fsync: str = "commit", extra: Optional[Dict] = None) -> "DurableIndex":
        """Make ``engine`` durable at ``path`` (must not already hold one)."""
        path = Path(path)
        kind = _engine_kind(engine)
        if (path / CURRENT_NAME).exists():
            raise FileExistsError(f"a durable index already lives at {path}")
        path.mkdir(parents=True, exist_ok=True)
        wal = WriteAheadLog(path / WAL_NAME, fsync=fsync)
        durable = cls(engine, path, wal, kind, snapshot_seq=0)
        durable.checkpoint(extra=extra)
        return durable

    @classmethod
    def recover(
        cls,
        path,
        mmap: bool = False,
        fsync: str = "commit",
        verify: Optional[bool] = None,
    ) -> "DurableIndex":
        """Load the ``CURRENT`` snapshot and replay the WAL tail onto it.

        ``last_recovery`` on the returned wrapper reports the cut: the
        snapshot's LSN, how many records were replayed, the replay wall time
        and the checkpoint's ``extra`` payload (used by the workload runner to
        resume scripts mid-way).  Raises :class:`SnapshotFormatError` on any
        detected corruption rather than serving doubtful state.
        """
        import time

        path = Path(path)
        current_path = path / CURRENT_NAME
        if not current_path.is_file():
            raise SnapshotFormatError(f"no durable index at {path} (missing CURRENT)")
        snapshot_name = current_path.read_text(encoding="utf-8").strip()
        snapshot_dir = path / snapshot_name
        manifest = _read_manifest(snapshot_dir)
        engine = load_engine(snapshot_dir, mmap=mmap, verify=verify)
        kind = manifest["engine"]
        extra = dict(manifest.get("extra", {}))
        snapshot_lsn = int(extra.pop("wal_lsn", 0))
        wal_path = path / WAL_NAME
        if not wal_path.exists():
            raise SnapshotFormatError(f"missing write-ahead log: {wal_path}")
        wal = WriteAheadLog(wal_path, fsync=fsync)
        # Claim maintenance before replaying: a replayed insert must not let
        # the engine self-schedule a flush the journal knows nothing about —
        # the journaled OP_FLUSH/OP_COMPACT records alone drive structure, so
        # the recovered delta+levels layout is exactly the pre-crash one.
        _take_over_maintenance(engine)
        replayed = 0
        started = time.perf_counter()
        for _lsn, op, ids, matrix in wal.replay(after_lsn=snapshot_lsn):
            _apply_record(engine, kind, op, ids, matrix)
            replayed += 1
        replay_seconds = time.perf_counter() - started
        try:
            seq = int(snapshot_name.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            seq = 0
        return cls(
            engine,
            path,
            wal,
            kind,
            snapshot_seq=seq,
            last_recovery={
                "snapshot": snapshot_name,
                "snapshot_lsn": snapshot_lsn,
                "replayed": replayed,
                "recovered_lsn": snapshot_lsn + replayed,
                "replay_seconds": replay_seconds,
                "extra": extra,
            },
        )

    # ----------------------------------------------------------------- basics
    @property
    def engine(self):
        """The wrapped engine (reads may go straight to it)."""
        return self._engine

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def end_lsn(self) -> int:
        return self._wal.end_lsn

    def __len__(self) -> int:
        return len(self._engine)

    def __getattr__(self, name: str):
        # Read-side surface (query, batch_query, snapshot, stats, point, ...)
        # passes through.  Every method that mutates *logical* state needs a
        # journaling wrapper below (insert/delete/bulk_*/rebalance/rebuild) —
        # forwarding one unjournaled would let an acknowledged op sequence
        # become unreplayable.  Maintenance that only rebuilds derived state
        # (refresh_session, reflatten) is safe to forward.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._engine, name)

    def close(self) -> None:
        self._wal.close()
        if hasattr(self._engine, "close"):
            self._engine.close()

    def __enter__(self) -> "DurableIndex":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -------------------------------------------------------------- mutations
    # Apply first (so auto-assigned row ids are known), then journal, then
    # acknowledge: an op is recoverable iff its append returned, which is
    # exactly the acknowledged-write guarantee (a crash in between loses an
    # op the caller never saw succeed).
    def _check_poison(self) -> None:
        if self._poisoned is not None:
            raise RuntimeError(
                f"durable index is poisoned ({self._poisoned}); the engine "
                "holds an op its journal does not — recover() from disk for "
                "a consistent state"
            )

    def _journal(self, op: int, row_ids, matrix=None) -> None:
        """Append one record for an op already applied to the engine.

        If the append fails, the live engine is ahead of the journal: the op
        was applied but is not recoverable.  The wrapper poisons itself —
        further mutations and checkpoints would make the divergence durable,
        so they refuse; reads stay available and recover() restores the
        consistent (journal-covered) state.
        """
        try:
            self._wal.append(op, row_ids, matrix)
        except BaseException as exc:
            self._poisoned = (
                f"{_OP_NAMES.get(op, op)} applied but not journaled: {exc}"
            )
            raise

    def _maintain_engine(self) -> None:
        """Run due LSM maintenance and journal each structure op it applied.

        Called after every journaled mutation (the engine's own post-write
        trigger is disabled by the wrapper): apply-then-journal per op, the
        same acknowledged-write contract as the mutations themselves — a
        crash between the two loses an op recovery simply re-plans.
        """
        maintain = getattr(self._engine, "lsm_maintain", None)
        if maintain is None:
            return
        for op in maintain():
            if op[0] == "flush":
                self._journal(OP_FLUSH, [])
            else:
                self._journal(OP_COMPACT, [int(seq) for seq in op[1]])

    def insert(self, *point, row_id: Optional[int] = None) -> int:
        # Mirror the wrapped engines' signatures exactly, including the
        # positional row_id they all accept: (point[, row_id]) for the n-dim
        # engines, (x, y[, row_id]) for the 2D ones.
        width = 2 if self.kind in _KIND_2D else 1
        if len(point) == width + 1 and row_id is None:
            point, row_id = point[:width], point[width]
        elif len(point) != width:
            raise TypeError(
                f"insert() takes {width} positional coordinate argument(s) "
                f"plus an optional row_id, got {len(point)}"
            )
        with self._lock:
            self._check_poison()
            if self.kind in _KIND_2D:
                x, y = point
                row = self._engine.insert(x, y, row_id=row_id)
                vector = np.asarray([[float(x), float(y)]], dtype=float)
            else:
                (vector_in,) = point
                row = self._engine.insert(vector_in, row_id=row_id)
                vector = np.asarray(vector_in, dtype=float)[None, :]
            self._journal(OP_INSERT, [row], vector)
            self._maintain_engine()
            return row

    def delete(self, row_id: int) -> None:
        with self._lock:
            self._check_poison()
            self._engine.delete(row_id)
            self._journal(OP_DELETE, [int(row_id)])
            self._maintain_engine()

    def bulk_insert(self, points, row_ids: Optional[Sequence[int]] = None) -> List[int]:
        with self._lock:
            self._check_poison()
            ids = self._engine.bulk_insert(points, row_ids=row_ids)
            if ids:
                self._journal(OP_BULK_INSERT, ids, np.asarray(points, dtype=float))
                self._maintain_engine()
            return ids

    def bulk_delete(self, row_ids: Sequence[int]) -> None:
        with self._lock:
            self._check_poison()
            self._engine.bulk_delete(row_ids)
            if len(row_ids):
                self._journal(OP_BULK_DELETE, [int(r) for r in row_ids])
                self._maintain_engine()

    def rebalance(self) -> bool:
        with self._lock:
            self._check_poison()
            moved = self._engine.rebalance()
            self._journal(OP_REBALANCE, [])
            return moved

    def rebuild(self) -> None:
        """Journaled engine rebuild (e.g. ``TopKIndex.rebuild``).

        A rebuild clears the tree's tombstone set, which changes what a later
        ``insert(row_id=...)`` accepts — so replay must perform it at the
        same point in the op stream or an acknowledged sequence could become
        unreplayable.
        """
        with self._lock:
            self._check_poison()
            self._engine.rebuild()
            self._journal(OP_REBUILD, [])

    def lsm_maintain(self) -> List[Tuple]:
        """Journaled explicit LSM maintenance; returns the ops applied."""
        with self._lock:
            self._check_poison()
            ops = self._engine.lsm_maintain()
            for op in ops:
                if op[0] == "flush":
                    self._journal(OP_FLUSH, [])
                else:
                    self._journal(OP_COMPACT, [int(seq) for seq in op[1]])
            return ops

    def flush(self) -> bool:
        """Journaled explicit delta flush (False when the delta was empty)."""
        with self._lock:
            self._check_poison()
            flushed = self._engine.flush()
            if flushed:
                self._journal(OP_FLUSH, [])
            return flushed

    def compact(self, seqs: Optional[Sequence[int]] = None):
        """Journaled explicit level merge; returns the seqs actually merged."""
        with self._lock:
            self._check_poison()
            merged = self._engine.compact(seqs)
            if merged is not None:
                self._journal(OP_COMPACT, [int(seq) for seq in merged])
            return merged

    def maybe_rebalance(self) -> bool:
        # Delegate the trigger policy to the engine (never duplicate it); the
        # rebalances counter tells us whether one actually ran — the boolean
        # alone cannot, since a rebalance that moved no rows still bumps the
        # hash salt / refits boundaries and must be journaled for replay.
        with self._lock:
            self._check_poison()
            before = self._engine.rebalances
            moved = self._engine.maybe_rebalance()
            if self._engine.rebalances != before:
                self._journal(OP_REBALANCE, [])
            return moved

    # ------------------------------------------------------------- checkpoint
    def checkpoint(self, extra: Optional[Dict] = None) -> Path:
        """Stream a fresh snapshot and atomically make it the recovery root.

        The brief locked phase syncs the WAL, notes its LSN and pins the
        engine capture; mutations resume while the arrays stream out.  The
        ``CURRENT`` flip is the commit point — a crash anywhere before it
        recovers from the previous snapshot plus the (complete) WAL, a crash
        after it from the new one.  Superseded snapshot directories are
        pruned afterwards, and the WAL is rotated whenever no mutation raced
        the checkpoint.
        """
        with self._checkpoint_lock:
            with self._lock:
                self._check_poison()
                self._wal.sync()
                lsn = self._wal.end_lsn
                capture = capture_engine(self._engine)
            self._snapshot_seq += 1
            name = f"snapshot-{self._snapshot_seq:06d}"
            try:
                _write_capture(
                    capture,
                    self.path / name,
                    extra={**(extra or {}), "wal_lsn": lsn},
                )
            finally:
                capture.close()
            _fault("checkpoint.current.before")
            tmp = self.path / (CURRENT_NAME + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(name + "\n")
                _fsync_file(handle)
            os.replace(tmp, self.path / CURRENT_NAME)
            _fsync_dir(self.path)
            _fault("checkpoint.current.written")
            for stale in self.path.glob("snapshot-*"):
                if stale.is_dir() and stale.name != name:
                    shutil.rmtree(stale, ignore_errors=True)
            # Drop the journal prefix the new snapshot covers; mutations that
            # raced the stream survive as the copied tail (appends hold
            # ``_lock``, which rotate's caller-side lock below excludes).
            with self._lock:
                self._wal.rotate(lsn)
            return self.path / name


def recover(path, mmap: bool = False, fsync: str = "commit", verify: Optional[bool] = None) -> DurableIndex:
    """Module-level convenience for :meth:`DurableIndex.recover`."""
    return DurableIndex.recover(path, mmap=mmap, fsync=fsync, verify=verify)
