"""Horizontally sharded serving over hash- or range-partitioned row sets.

PRs 1-2 made a *single* index fast: the vectorized batch engine shares one
flattened traversal across queries and the maintained :class:`QuerySession`
survives updates in place.  One monolithic flat view is still one flat view —
every query's candidate enumeration touches arrays proportional to the whole
dataset, and one insert storm reflattens everything at once.  This module adds
the standard scale-out step for top-k serving (cf. NeedleTail's
density/locality-aware any-k serving, arxiv 1611.04705, PAPERS.md):

* **Partitioning.**  A :class:`ShardRouter` splits rows across ``K`` shards,
  either by a multiplicative hash of the row id (uniform, locality-free) or by
  range over one scored dimension (quantile boundaries fitted at build time —
  the locality-aware layout that makes bound pruning bite).  Every row lives in
  exactly one shard; the router remembers the assignment so deletes and
  rebalances route exactly.
* **Per-shard engines.**  Each shard owns a full
  :class:`repro.core.aggregate.SubproblemAggregator` — its own projection
  trees, sorted columns and maintained serving :class:`QuerySession` — so
  updates patch K small flat views instead of one monolithic one, and a
  garbage-triggered reflatten re-walks only the dirty shard.
* **Bound-ordered pruned serving.**  Before touching any shard, the engine
  collects one admissible upper bound per (query, shard) from the collapsed
  flat leaf arrays (:meth:`QuerySession.upper_bounds` — O(1) pseudo-leaves, not
  a traversal).  Each query then visits shards in descending bound order;
  after every round the running global k-th best score tightens, and a shard
  whose bound misses it (minus the engine's usual float slack) is skipped
  outright.  Bounds for skipped shards are admissible, so results are
  *bit-identical* to the unsharded flat engine: identical scores, identical
  row ids, the same ``(-score, row_id)`` tie-break.
* **Parallel shard probes.**  Independent probes of one round run on a shared
  :class:`concurrent.futures.ThreadPoolExecutor` — the numpy kernels release
  the GIL, so multi-core hosts overlap shard work; merging stays in submission
  order so the answer never depends on scheduling.
* **Rebalancing.**  Skewed inserts (a hot range, a monotone key) concentrate
  rows in few shards.  :meth:`ShardedIndex.rebalance` refits the router on the
  live data (fresh quantiles for range layouts) and rebuilds the shard
  aggregators; :meth:`ShardedIndex.maybe_rebalance` does so only once the
  max/mean shard-size skew crosses a threshold.  Rebalancing preserves the
  full result set — it only moves rows.

See DESIGN.md section 5 for the policy discussion and the quickstart example
for construction.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.core.aggregate import SubproblemAggregator, claim_row_id
from repro.core.batch import BatchQuerySpec, SessionSnapshot, _prune_bound
from repro.core.deadline import Deadline, DeadlineExceeded
from repro.core.epoch import EpochManager, validate_concurrency
from repro.core.query import SDQuery
from repro.core.results import BatchResult, IndexStats, ShardCoverage, TopKResult

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a runtime cycle)
    from repro.serving.breaker import CircuitBreaker, ResiliencePolicy

__all__ = ["ShardRouter", "ShardedIndex", "ShardedSnapshot", "ShardedXYIndex"]

#: Fault point inside every shard probe attempt (``key`` = the integer shard
#: id), fired before the shard kernel runs — the injection surface for
#: per-shard fault storms (DESIGN.md §9).
_FP_PROBE = faults.declare_fault_point(
    "shard.probe", "one shard probe attempt in the bound-ordered serving loop"
)

#: splitmix64 stream increment and finalizer constants (Steele et al.).
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_SPLITMIX_MIX1 = 0xBF58476D1CE4E5B9
_SPLITMIX_MIX2 = 0x94D049BB133111EB

_UINT64_MASK = (1 << 64) - 1

#: Default max/mean shard-size skew tolerated before ``maybe_rebalance`` acts.
_DEFAULT_SKEW_THRESHOLD = 2.0


def _hash_shards(row_ids: np.ndarray, num_shards: int, salt: int = 0) -> np.ndarray:
    """Deterministic avalanche hash (splitmix64 finalizer) of each row id.

    ``salt`` selects an independent layout: a rebalance of a hash-partitioned
    index bumps it so skew accumulated by non-uniform deletes actually
    disperses.  The finalizer's full avalanche matters there — layouts under
    different salts must be uncorrelated, or the surviving (skewed) id
    population would just rotate to a new shard instead of spreading out.
    """
    with np.errstate(over="ignore"):
        z = row_ids.astype(np.uint64) + np.uint64(
            (salt * _SPLITMIX_GAMMA) & _UINT64_MASK
        )
        z = (z ^ (z >> np.uint64(30))) * np.uint64(_SPLITMIX_MIX1)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(_SPLITMIX_MIX2)
        z = z ^ (z >> np.uint64(31))
        return (z % np.uint64(num_shards)).astype(np.int64)


class ShardRouter:
    """Assigns rows to shards and remembers where every live row lives.

    Two partitioners:

    ``"hash"``
        Multiplicative hash of the row id — uniform regardless of data
        distribution, no locality.
    ``"range"``
        Quantile boundaries over one scored dimension (``range_dim``), fitted
        from the build data via :meth:`refit`.  Gives shards disjoint value
        ranges, which is what lets the serving loop prune whole shards whose
        range is provably too far from a query.

    The explicit ``row_id -> shard`` map (rather than re-deriving the rule) is
    what keeps deletes exact across :meth:`refit` calls: a row is always
    removed from the shard it actually lives in, never from where the current
    rule *would* put it.
    """

    def __init__(
        self,
        num_shards: int,
        partitioner: str = "hash",
        range_dim: Optional[int] = None,
        boundaries: Optional[np.ndarray] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if partitioner not in ("hash", "range"):
            raise ValueError(
                f"unknown partitioner {partitioner!r}; use 'hash' or 'range'"
            )
        if partitioner == "range" and range_dim is None:
            raise ValueError("range partitioning requires range_dim")
        self.num_shards = int(num_shards)
        self.partitioner = partitioner
        self.range_dim = None if range_dim is None else int(range_dim)
        self.boundaries = (
            None if boundaries is None else np.asarray(boundaries, dtype=float)
        )
        #: Reshuffle counter mixed into the hash (bumped by rebalances).
        self.salt = 0
        self._shard_of: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._shard_of)

    def refit(self, matrix: np.ndarray, reshuffle: bool = False) -> None:
        """Refit the partitioning rule to a data matrix.

        Range layouts take fresh quantile boundaries from the matrix.  Hash
        layouts are data-independent, so a refit only changes anything when
        ``reshuffle`` is set (a rebalance): the salt is bumped, giving a new
        uniform layout that disperses delete-induced skew.
        """
        if self.partitioner == "hash":
            if reshuffle:
                self.salt += 1
            return
        if len(matrix) == 0:
            return
        quantiles = np.arange(1, self.num_shards) / self.num_shards
        self.boundaries = np.quantile(matrix[:, self.range_dim], quantiles)

    def route(self, row_ids: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Shard of each (new) row under the current rule, without assigning."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if self.num_shards == 1:
            return np.zeros(len(row_ids), dtype=np.int64)
        if self.partitioner == "hash":
            return _hash_shards(row_ids, self.num_shards, self.salt)
        if self.boundaries is None:
            # Built over empty data: no quantiles to fit yet.  Everything
            # lands in shard 0 until a rebalance refits on live rows.
            return np.zeros(len(row_ids), dtype=np.int64)
        return np.searchsorted(
            self.boundaries, matrix[:, self.range_dim], side="right"
        ).astype(np.int64)

    def assign(self, row_ids: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Route new rows and record their assignment; returns the shard ids."""
        shards = self.route(row_ids, matrix)
        for row, shard in zip(row_ids, shards):
            self._shard_of[int(row)] = int(shard)
        return shards

    def shard_of(self, row_id: int) -> int:
        """The shard a live row is assigned to."""
        try:
            return self._shard_of[int(row_id)]
        except KeyError:
            raise KeyError(f"row id {row_id} not present") from None

    def release(self, row_id: int) -> int:
        """Forget a deleted row's assignment; returns the shard it lived in."""
        shard = self.shard_of(row_id)
        del self._shard_of[int(row_id)]
        return shard

    def counts(self) -> np.ndarray:
        """Live rows per shard."""
        counts = np.zeros(self.num_shards, dtype=np.int64)
        for shard in self._shard_of.values():
            counts[shard] += 1
        return counts

    def assignments(self) -> Dict[int, int]:
        """Snapshot of the full ``row_id -> shard`` map (for invariant tests)."""
        return dict(self._shard_of)


class _ShardTopology:
    """One epoch of the sharded layout: the router plus its shard aggregators.

    Published through the engine's topology :class:`EpochManager` so a probe
    that pinned an epoch keeps a consistent (router, shards) pair even while
    :meth:`ShardedIndex.rebalance` swaps in a refitted successor.
    """

    __slots__ = ("router", "shards")

    def __init__(self, router: ShardRouter, shards: Tuple[SubproblemAggregator, ...]) -> None:
        self.router = router
        self.shards = shards


class ShardedIndex:
    """K-shard SD-Query serving engine with bound-ordered pruned fan-out.

    Construction mirrors :class:`repro.core.sdindex.SDIndex` (same dimension
    roles, same index options forwarded to every shard) plus the sharding
    knobs; :meth:`query` / :meth:`batch_query` accept the same inputs and
    return results bit-identical to the unsharded flat engine.  Updates route
    through the :class:`ShardRouter`; ``serve_stats`` records, per serving
    call, how many shard probes ran versus were pruned by the bound order.

    **Concurrency.**  Under the default ``concurrency="snapshot"`` every
    serving call pins a consistent cut — the topology epoch plus one session
    epoch per shard — before touching any data, so ``insert`` /
    ``bulk_delete`` / :meth:`rebalance` running on other threads can never
    tear an in-flight probe (DESIGN.md section 6).  Writers serialize on an
    internal lock; :meth:`snapshot` hands the same pinned cut to callers that
    want repeatable reads across several queries.  ``concurrency="unsafe"``
    keeps the legacy in-place patching (single-threaded mutation only).
    """

    def __init__(
        self,
        data: np.ndarray,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        num_shards: int = 4,
        partitioner: str = "hash",
        range_dim: Optional[int] = None,
        rebalance_threshold: float = _DEFAULT_SKEW_THRESHOLD,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        row_ids: Optional[Sequence[int]] = None,
        concurrency: str = "snapshot",
        resilience: Optional["ResiliencePolicy"] = None,
        **index_options,
    ) -> None:
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("data must be an (n, m) matrix of points")
        validate_concurrency(concurrency)
        self.repulsive = tuple(int(d) for d in repulsive)
        self.attractive = tuple(int(d) for d in attractive)
        self.num_dims = matrix.shape[1]
        used = set(self.repulsive) | set(self.attractive)
        if len(used) != len(self.repulsive) + len(self.attractive):
            raise ValueError("repulsive and attractive dimensions must be disjoint")
        if not used:
            raise ValueError(
                "at least one repulsive or attractive dimension is required"
            )
        if any(d < 0 or d >= self.num_dims for d in used):
            raise ValueError("dimension indexes out of range")

        rows = (
            np.arange(len(matrix), dtype=np.int64)
            if row_ids is None
            else np.asarray([int(r) for r in row_ids], dtype=np.int64)
        )
        if len(rows) != len(matrix):
            raise ValueError("row_ids must align with the data matrix")
        if len(np.unique(rows)) != len(rows):
            raise ValueError("row ids must be unique")

        if partitioner == "range" and range_dim is None:
            # Default to the first attractive dimension: attraction penalizes
            # distance, so range-disjoint shards are the ones bound pruning
            # can rule out.
            range_dim = (self.attractive or self.repulsive)[0]
        self.concurrency = concurrency
        self.rebalance_threshold = float(rebalance_threshold)
        self.parallel = bool(parallel)
        self._max_workers = max_workers
        self._index_options = dict(index_options)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        #: Serializes writers (updates and rebalances) and the brief pin phase
        #: of snapshots, so every snapshot is a consistent cross-shard cut.
        self._write_lock = threading.RLock()
        self._deleted: set = set()
        self._max_row_id = int(rows.max()) if len(rows) else -1
        self.rebalances = 0
        #: Counters of the most recent serving call: ``probes`` and ``pruned``
        #: count (query, shard) pairs probed vs skipped by the bound order;
        #: ``rounds`` counts the bound-ordered visit waves; ``skipped`` and
        #: ``retries`` count shards abandoned vs re-probed by the resilience
        #: policy.
        self.serve_stats: Dict[str, int] = {
            "probes": 0,
            "pruned": 0,
            "rounds": 0,
            "skipped": 0,
            "retries": 0,
        }

        #: Fault-domain policy (DESIGN.md §9).  ``None`` keeps the legacy
        #: fail-fast contract: no retries, no breakers, every probe error
        #: propagates, answers stay bit-identical to the flat engine.  The
        #: policy builds its own breakers, so this module never imports the
        #: serving layer at runtime.
        self.resilience = resilience
        self._breakers: Optional[List["CircuitBreaker"]] = (
            None if resilience is None else resilience.build_breakers(int(num_shards))
        )

        #: Epoch-published (router, shards) pairs; rebalance swaps whole
        #: topologies so in-flight probes never see a half-refitted router.
        self._topology = EpochManager()
        router = ShardRouter(num_shards, partitioner, range_dim)
        router.refit(matrix)
        shards = router.assign(rows, matrix)
        self._topology.publish(
            _ShardTopology(
                router,
                tuple(
                    self._build_shard(rows[shards == s], matrix[shards == s])
                    for s in range(router.num_shards)
                ),
            )
        )

    # ------------------------------------------------------------------ basics
    def _build_shard(
        self, rows: np.ndarray, matrix: np.ndarray
    ) -> SubproblemAggregator:
        return SubproblemAggregator(
            matrix.reshape(len(rows), self.num_dims),
            repulsive=self.repulsive,
            attractive=self.attractive,
            row_ids=[int(r) for r in rows],
            concurrency=self.concurrency,
            **self._index_options,
        )

    @property
    def router(self) -> ShardRouter:
        """The current topology's router (swapped wholesale by rebalances).

        Read atomically: a rebalance racing this read may reclaim the old
        topology *epoch*, but the returned topology object stays intact for
        the holder.
        """
        return self._topology.current_state().router

    @property
    def _shards(self) -> Tuple[SubproblemAggregator, ...]:
        """The current topology's shard aggregators (atomic unpinned read)."""
        return self._topology.current_state().shards

    @property
    def topology_version(self) -> int:
        """Version of the current shard topology (bumped by rebalances)."""
        return self._topology.version

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def shard_sizes(self) -> List[int]:
        """Live rows per shard."""
        return [len(shard) for shard in self._shards]

    def skew(self) -> float:
        """Max shard size over the balanced (mean) size; 1.0 is perfect balance."""
        sizes = self.shard_sizes()
        total = sum(sizes)
        if total == 0:
            return 1.0
        return max(sizes) / (total / self.num_shards)

    def point(self, row_id: int) -> np.ndarray:
        """Random access to a live point's full coordinate vector."""
        return self._shards[self.router.shard_of(row_id)].point(row_id)

    def shard(self, index: int) -> SubproblemAggregator:
        """Direct access to one shard's aggregator (tests and benchmarks)."""
        return self._shards[index]

    # ------------------------------------------------------------------ updates
    def _claim_row_id(self, row_id: Optional[int]) -> int:
        row_id = claim_row_id(
            row_id,
            self._max_row_id,
            self._deleted.__contains__,
            self.router._shard_of.__contains__,
        )
        self._max_row_id = max(self._max_row_id, row_id)
        return row_id

    def insert(self, point: Sequence[float], row_id: Optional[int] = None) -> int:
        """Insert a point; the router picks its shard.  Returns the row id."""
        vector = np.asarray(point, dtype=float)
        if vector.shape != (self.num_dims,):
            raise ValueError(f"point must have {self.num_dims} dimensions")
        with self._write_lock:
            row_id = self._claim_row_id(row_id)
            shard = int(
                self.router.assign(
                    np.asarray([row_id], dtype=np.int64), vector[None, :]
                )[0]
            )
            self._shards[shard].insert(vector, row_id=row_id)
            return row_id

    def bulk_insert(
        self, points, row_ids: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Insert many points at once (one bulk patch per touched shard)."""
        matrix = np.asarray(points, dtype=float)
        if matrix.size == 0:
            matrix = matrix.reshape(0, self.num_dims)
        if matrix.ndim != 2 or matrix.shape[1] != self.num_dims:
            raise ValueError(
                f"points must have shape (m, {self.num_dims}), got {matrix.shape}"
            )
        with self._write_lock:
            if row_ids is None:
                ids = [self._claim_row_id(None) for _ in range(len(matrix))]
            else:
                ids = [int(r) for r in row_ids]
                if len(ids) != len(matrix):
                    raise ValueError("row_ids must align with the points")
                if len(set(ids)) != len(ids):
                    raise ValueError("row ids must be unique")
                ids = [self._claim_row_id(r) for r in ids]
            if not ids:
                return []
            id_array = np.asarray(ids, dtype=np.int64)
            shards = self.router.assign(id_array, matrix)
            for s in range(self.num_shards):
                members = shards == s
                if members.any():
                    self._shards[s].bulk_insert(
                        matrix[members], row_ids=[int(r) for r in id_array[members]]
                    )
            return ids

    def delete(self, row_id: int) -> None:
        """Delete a row from the shard it lives in.

        Raises ``KeyError("row id N not present")`` for an unknown or
        already-deleted id — the same contract as the flat engines.
        """
        with self._write_lock:
            shard = self.router.release(row_id)
            self._deleted.add(int(row_id))
            self._shards[shard].delete(row_id)

    def bulk_delete(self, row_ids: Sequence[int]) -> None:
        """Delete many rows at once (one bulk patch per touched shard)."""
        ids = [int(r) for r in row_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("row ids must be unique")
        with self._write_lock:
            # Validate everything up front so a bad id cannot half-apply the batch.
            shards = [self.router.shard_of(row) for row in ids]
            grouped: Dict[int, List[int]] = {}
            for row, shard in zip(ids, shards):
                grouped.setdefault(shard, []).append(row)
            for row in ids:
                self.router.release(row)
                self._deleted.add(row)
            for shard, members in grouped.items():
                self._shards[shard].bulk_delete(members)

    # --------------------------------------------------------------- rebalance
    def rebalance(self) -> bool:
        """Refit the router on the live data and rebuild every shard.

        Returns True when any row moved.  The result set is preserved exactly
        — rows only change shards — so serving answers are unchanged.

        The refitted router and the rebuilt shard aggregators are prepared on
        the side and published as a *new topology epoch* in one atomic swap:
        a probe launched before the rebalance keeps serving off the topology
        it pinned, so it can never read a half-refitted router or a shard
        list that no longer matches its bounds.
        """
        with self._write_lock:
            old_router = self.router
            rows: List[int] = []
            for shard in self._shards:
                rows.extend(shard._live_rows())
            rows.sort()
            row_array = np.asarray(rows, dtype=np.int64)
            matrix = (
                np.asarray([self.point(row) for row in rows], dtype=float)
                if rows
                else np.empty((0, self.num_dims), dtype=float)
            )
            before = old_router.assignments()
            router = ShardRouter(
                old_router.num_shards,
                old_router.partitioner,
                old_router.range_dim,
                boundaries=old_router.boundaries,
            )
            router.salt = old_router.salt
            router.refit(matrix, reshuffle=True)
            shards = router.assign(row_array, matrix)
            moved = any(before[int(r)] != int(s) for r, s in zip(row_array, shards))
            topology = _ShardTopology(
                router,
                tuple(
                    self._build_shard(row_array[shards == s], matrix[shards == s])
                    for s in range(router.num_shards)
                ),
            )
            self._topology.publish(topology)
            self.rebalances += 1
            return moved

    def maybe_rebalance(self) -> bool:
        """Rebalance only if the shard-size skew exceeds the threshold."""
        with self._write_lock:
            if self.skew() > self.rebalance_threshold:
                return self.rebalance()
            return False

    # ------------------------------------------------------------------ serving
    def query(
        self,
        query: Union[SDQuery, Sequence[float]],
        k: Optional[int] = None,
        alpha: Optional[Sequence[float]] = None,
        beta: Optional[Sequence[float]] = None,
    ) -> TopKResult:
        """Answer one SD-Query across all shards (same inputs as ``SDIndex.query``)."""
        spec = self._coerce_single(query, k, alpha, beta)
        return self._serve(spec).results[0]

    def _coerce_single(
        self,
        query: Union[SDQuery, Sequence[float]],
        k: Optional[int],
        alpha: Optional[Sequence[float]],
        beta: Optional[Sequence[float]],
    ) -> BatchQuerySpec:
        """Normalize the single-query call shapes to a one-element spec."""
        if isinstance(query, SDQuery):
            if k is not None or alpha is not None or beta is not None:
                raise ValueError("pass either an SDQuery or point/k/weights, not both")
            built = query
        else:
            if k is None:
                raise ValueError("k is required when querying with a raw point")
            built = SDQuery.simple(
                point=query,
                repulsive=self.repulsive,
                attractive=self.attractive,
                k=k,
                alpha=alpha,
                beta=beta,
            )
        return BatchQuerySpec.coerce(
            self.repulsive, self.attractive, self.num_dims, [built]
        )

    def batch_query(
        self, queries, k=None, alpha=None, beta=None, deadline=None
    ) -> BatchResult:
        """Answer a batch of SD-Queries (same inputs as ``SDIndex.batch_query``)."""
        spec = BatchQuerySpec.coerce(
            self.repulsive,
            self.attractive,
            self.num_dims,
            queries,
            k=k,
            alpha=alpha,
            beta=beta,
        )
        return self._serve(spec, deadline=deadline)

    def _executor_instance(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError(
                "ShardedIndex is closed; its probe executor cannot be restarted"
            )
        if self._executor is None:
            workers = self._max_workers or self.num_shards
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, min(workers, self.num_shards)),
                thread_name_prefix="shard-probe",
            )
        return self._executor

    def close(self) -> None:
        """Shut down the probe executor and refuse further serving (idempotent).

        Safe to call any number of times; after the first call every
        :meth:`query`/:meth:`batch_query`/:meth:`snapshot` raises
        ``RuntimeError`` instead of silently resurrecting a new executor.
        """
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        guard = getattr(self, "_mmap_guard", None)
        if guard is not None and not guard.closed:
            # An mmap-restored topology: tear down the per-shard aggregators
            # (each drops its sessions' epoch states) and retire the topology
            # epoch, then release the snapshot file mappings.
            topology = self._topology.current_state()
            if topology is not None:
                for shard in topology.shards:
                    shard.close()
            self._topology.publish(None)
            guard.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *_exc) -> bool:
        # Never mask an exception propagating out of the ``with`` body: close
        # only tears down the executor (it does not raise on pending probe
        # failures) and we explicitly decline to suppress.
        self.close()
        return False

    # ----------------------------------------------------------------- snapshots
    def snapshot(self) -> "ShardedSnapshot":
        """Pin a consistent cross-shard cut: topology plus one epoch per shard.

        The pin phase is **optimistic and lock-free**: pin the topology and
        every shard session, then validate that nothing published meanwhile —
        if every pinned epoch is still current at validation time, all of
        them were current *simultaneously*, so the cut is a single point in
        time.  On contention (a writer published mid-pin) the pins are
        dropped and the phase retries; after a few collisions it falls back
        to the writer lock for a guaranteed cut.  Readers therefore never
        wait behind a long writer critical section — in particular, serving
        continues at full speed through a multi-second :meth:`rebalance`.

        Use the returned :class:`ShardedSnapshot` as a context manager (or
        ``close()`` it) to release the pinned epochs for reclamation.
        """
        if self._closed:
            raise RuntimeError("ShardedIndex is closed")
        for _attempt in range(5):
            snap = self._try_pin_cut()
            if snap is not None:
                return snap
        with self._write_lock:
            # Writers are excluded, so the pinned epochs cannot move mid-pin.
            snap = self._try_pin_cut()
            if snap is None:  # pragma: no cover - excluded writers cannot race
                raise RuntimeError("snapshot pin failed under the writer lock")
            return snap

    def _try_pin_cut(self) -> Optional["ShardedSnapshot"]:
        """One optimistic pin attempt; None when a writer raced the pins."""
        epoch = self._topology.pin()
        views: List[SessionSnapshot] = []
        try:
            sessions = [shard.serving_session() for shard in epoch.state.shards]
            for session in sessions:
                views.append(session.snapshot())
            consistent = self._topology.version == epoch.version and all(
                session.epochs.version == view.version
                and not session.needs_reflatten
                for session, view in zip(sessions, views)
            )
        except BaseException:
            for view in views:
                view.close()
            epoch.release()
            raise
        if consistent:
            return ShardedSnapshot(self, epoch, views)
        for view in views:
            view.close()
        epoch.release()
        return None

    def _serve(
        self, spec: BatchQuerySpec, deadline: Optional[Deadline] = None
    ) -> BatchResult:
        """Serve one batch against a freshly pinned snapshot."""
        if self._closed:
            raise RuntimeError("ShardedIndex is closed")
        with self.snapshot() as snap:
            return self._serve_snapshot(snap, spec, deadline=deadline)

    def breaker_stats(self) -> Optional[List[Dict[str, object]]]:
        """Per-shard circuit-breaker counters (None without a resilience policy)."""
        if self._breakers is None:
            return None
        return [breaker.stats() for breaker in self._breakers]

    def _serve_snapshot(
        self,
        snap: "ShardedSnapshot",
        spec: BatchQuerySpec,
        deadline: Optional[Deadline] = None,
    ) -> BatchResult:
        """The serving loop: bound-ordered shard visits with global pruning.

        Runs entirely against the snapshot's pinned session views, so
        concurrent mutation (including a rebalance publishing a new topology)
        cannot shift bounds, masks or row sets mid-flight.

        With a :class:`~repro.serving.breaker.ResiliencePolicy` installed,
        transient probe failures are retried with jittered backoff, shards
        behind an open breaker are refused without probing, and — under
        ``degrade=True`` — any shard that still cannot be covered (fault,
        open breaker, or exhausted ``deadline``) is *skipped*: the answer
        comes back ``degraded=True`` with a :class:`ShardCoverage` whose
        ``score_bound`` (the max admissible upper bound over the skipped
        shards) bounds every row the answer could possibly be missing.  That
        bound is sound even for rows *pruned* in healthy shards by a
        threshold seeded from a skipped shard's samples: if the seeded k-th
        lower bound exceeds the covered data's true k-th score, the sample
        that raised it lives in a skipped shard, so the skipped shard's
        upper bound dominates it — and therefore every pruned row too.
        """
        if self._closed:
            # Uniform with _serve: a pinned snapshot outliving close() still
            # refuses to serve, whether or not the probe executor is reached.
            raise RuntimeError("ShardedIndex is closed")
        if deadline is not None:
            deadline.check()
        m = len(spec)
        label = "sd-sharded/batch"
        if m == 0:
            return BatchResult(results=[], algorithm=label)
        views = snap.views
        num_shards = len(views)
        total_live = sum(view.num_live for view in views)
        if total_live == 0:
            return BatchResult(
                results=[TopKResult(matches=[], algorithm=label) for _ in range(m)],
                algorithm=label,
            )
        ks_global = np.minimum(spec.ks, total_live)

        # One admissible upper bound per (shard, query), from the collapsed
        # flat leaf arrays of each pinned view.
        ubs = np.vstack([view.upper_bounds(spec) for view in views])
        # Per-query shard visit order, best bound first (stable: equal bounds
        # keep shard order, so serving is deterministic).
        order = np.argsort(-ubs, axis=0, kind="stable")

        # Slack scale for the shard-skip test, matching the engine's pruning
        # slack so an exact tie at the k-th boundary never skips its shard.
        weight_scale = spec.alpha.sum(axis=1) + spec.beta.sum(axis=1)
        magnitude = 0.0
        for view in views:
            magnitude = max(magnitude, view.data_magnitude())
        for dim in self.repulsive + self.attractive:
            magnitude = max(magnitude, float(np.abs(spec.points[:, dim]).max()))

        pools: List[List] = [[] for _ in range(m)]
        examined = np.zeros(m, dtype=np.int64)
        probes = pruned = rounds = 0
        policy = self.resilience
        breakers = self._breakers
        degrade = policy is not None and policy.degrade
        #: ``(shard, j) -> reason`` for every query/shard pair left uncovered.
        skipped: Dict[Tuple[int, int], str] = {}
        retries = 0

        # Seed a *global* per-query lower bound on the k-th best score from a
        # cross-shard sample, so far shards can be pruned before any probe and
        # every probe starts with a tight enumeration threshold.  Sample
        # scores are real point scores up to ulp-level term-order differences,
        # which the engine's pruning slack absorbs — admissible.
        kth_lower = np.full(m, -math.inf)
        sample_pool = max(64, 1024 // num_shards)
        samples = np.hstack(
            [view.sample_scores(spec, sample_pool) for view in views]
        )
        pool_size = samples.shape[1]
        for j in range(m):
            k_j = int(ks_global[j])
            if pool_size >= k_j:
                kth_lower[j] = np.partition(samples[j], pool_size - k_j)[
                    pool_size - k_j
                ]

        for r in range(num_shards):
            skip_below = _prune_bound(kth_lower, weight_scale, magnitude)
            if deadline is not None and deadline.expired:
                # Budget gone at a round boundary: everything still standing
                # (visitable and not prunable) becomes an explicit skip under
                # degradation, or the deadline propagates.
                if not degrade:
                    raise DeadlineExceeded(deadline.budget)
                for j in range(m):
                    for rr in range(r, num_shards):
                        shard = int(order[rr, j])
                        if not np.isfinite(ubs[shard, j]):
                            continue
                        if ubs[shard, j] < skip_below[j]:
                            pruned += 1
                            continue
                        skipped[(shard, j)] = "deadline"
                break
            tasks: Dict[int, List[int]] = {}
            for j in range(m):
                shard = int(order[r, j])
                if not np.isfinite(ubs[shard, j]):
                    continue  # empty shard: nothing to probe or to count
                if ubs[shard, j] < skip_below[j]:
                    pruned += 1
                    continue
                tasks.setdefault(shard, []).append(j)
            if not tasks:
                break
            rounds += 1
            probes += sum(len(js) for js in tasks.values())

            def probe(shard: int, js: List[int]):
                faults.fire(_FP_PROBE, key=shard)
                members = np.asarray(js, dtype=np.int64)
                # skip_below already carries the pruning slack at the *global*
                # magnitude, so a shard with small coordinates cannot
                # under-slack a bound seeded from another shard's samples.
                return views[shard].run(
                    spec.subset(members),
                    lower_bounds=skip_below[members],
                    deadline=deadline,
                    _label=label,
                )

            def attempt(shard: int, js: List[int]):
                """One shard's covered attempt: ``("ok", batch)`` or ``("skip", reason)``.

                Applies the breaker gate, the bounded retry budget and the
                deadline; with ``degrade=False`` (or no policy) the failure
                propagates instead of returning a skip.
                """
                nonlocal retries
                breaker = breakers[shard] if breakers is not None else None
                last_exc: Optional[BaseException] = None

                def give_up(reason: str):
                    if degrade:
                        return ("skip", reason)
                    if reason == "breaker_open":
                        from repro.serving.breaker import BreakerOpen

                        raise BreakerOpen(breaker.name, breaker.retry_after())
                    if reason == "deadline":
                        raise DeadlineExceeded(deadline.budget)
                    raise last_exc

                attempts = policy.max_attempts if policy is not None else 1
                for attempt_no in range(attempts):
                    if deadline is not None and deadline.expired:
                        return give_up("deadline")
                    if breaker is not None and not breaker.allow():
                        return give_up("breaker_open")
                    try:
                        batch = probe(shard, js)
                    except DeadlineExceeded:
                        # Not the shard's fault: no breaker verdict, just
                        # return the half-open trial slot if one was taken.
                        if breaker is not None:
                            breaker.record_cancel()
                        return give_up("deadline")
                    except BaseException as exc:  # noqa: BLE001
                        if breaker is not None:
                            breaker.record_failure()
                        if policy is None or not policy.is_transient(exc):
                            raise
                        last_exc = exc
                        if attempt_no + 1 < attempts:
                            retries += 1
                            if policy.retry is not None:
                                pause = policy.retry.backoff(attempt_no)
                                if deadline is not None:
                                    pause = min(pause, deadline.remaining())
                                if pause > 0:
                                    policy.sleep(pause)
                        continue
                    if breaker is not None:
                        breaker.record_success()
                    return ("ok", batch)
                return give_up("fault")

            ordered = sorted(tasks.items())
            if self.parallel and len(ordered) > 1:
                executor = self._executor_instance()
                futures = [
                    (shard, js, executor.submit(attempt, shard, js))
                    for shard, js in ordered
                ]
                # Collect every future even if one fails: cancel what has not
                # started, then re-raise the *first* probe error so a failing
                # probe is never masked by a secondary shutdown error.
                outcomes = []
                error: Optional[BaseException] = None
                for shard, js, future in futures:
                    if error is None:
                        try:
                            outcomes.append((shard, js, future.result()))
                        except BaseException as exc:  # noqa: BLE001
                            error = exc
                    else:
                        future.cancel()
                if error is not None:
                    raise error
            else:
                outcomes = [
                    (shard, js, attempt(shard, js)) for shard, js in ordered
                ]

            batches = []
            for shard, js, (status, payload) in outcomes:
                if status == "ok":
                    batches.append((js, payload))
                else:
                    for j in js:
                        skipped[(shard, j)] = payload

            # Merge in fixed shard order so results never depend on scheduling.
            for js, batch in batches:
                for j, result in zip(js, batch.results):
                    pools[j].extend(result.matches)
                    examined[j] += result.candidates_examined
                    pools[j].sort()
                    del pools[j][int(ks_global[j]) :]
                    if len(pools[j]) >= int(ks_global[j]):
                        kth_lower[j] = max(kth_lower[j], pools[j][-1].score)

        self.serve_stats = {
            "probes": probes,
            "pruned": pruned,
            "rounds": rounds,
            "skipped": len(skipped),
            "retries": retries,
        }
        results = []
        for j in range(m):
            skips = tuple(
                sorted(
                    (shard, reason)
                    for (shard, jj), reason in skipped.items()
                    if jj == j
                )
            )
            coverage: Optional[ShardCoverage] = None
            if skips:
                uncovered = {shard for shard, _ in skips}
                coverage = ShardCoverage(
                    total=num_shards,
                    probed=tuple(
                        s for s in range(num_shards) if s not in uncovered
                    ),
                    skipped=skips,
                    score_bound=max(float(ubs[shard, j]) for shard, _ in skips),
                )
            results.append(
                TopKResult(
                    matches=pools[j],
                    candidates_examined=int(examined[j]),
                    full_evaluations=int(examined[j]),
                    algorithm="sd-sharded",
                    degraded=coverage is not None,
                    coverage=coverage,
                )
            )
        return BatchResult(results=results, algorithm=label)

    # ------------------------------------------------------------- persistence
    def save(self, path) -> None:
        """Write a durable snapshot of the whole sharded engine at ``path``.

        The root manifest records the router (partitioner, boundaries, salt
        and the explicit row->shard map) and the engine bookkeeping; every
        shard streams its own sub-snapshot (``shard-<s>/`` with its own
        manifest), captured as one consistent cut under the writer lock with
        per-shard epochs pinned — writers resume while the arrays stream.
        """
        from repro.core.persistence import save_engine

        save_engine(self, path)

    @classmethod
    def load(cls, path, mmap: bool = False, verify: Optional[bool] = None) -> "ShardedIndex":
        """Load a snapshot written by :meth:`save` (``mmap=True`` maps arrays)."""
        from repro.core.persistence import load_engine

        return load_engine(path, mmap=mmap, verify=verify, expect="sharded")

    # ------------------------------------------------------------------ stats
    def stats(self) -> IndexStats:
        """Aggregate statistics over every shard."""
        total_memory = 0
        total_nodes = 0
        build_seconds = 0.0
        for shard in self._shards:
            stats = shard.stats()
            total_memory += stats.memory_bytes
            total_nodes += stats.num_nodes
            build_seconds += stats.build_seconds or 0.0
        return IndexStats(
            name="sd-sharded",
            num_points=len(self),
            num_nodes=total_nodes,
            memory_bytes=total_memory,
            build_seconds=build_seconds,
        )


class ShardedSnapshot:
    """A pinned, consistent cross-shard read view of a :class:`ShardedIndex`.

    Holds the topology epoch plus one pinned session epoch per shard — all
    taken under the engine's writer lock, so the cut is a single point in
    time.  Queries answered through the snapshot are repeatable: concurrent
    inserts, deletes and rebalances cannot change the answers until the
    snapshot is closed and a new one pinned.
    """

    #: The coalescer checks this before threading a request deadline through.
    supports_deadline = True

    def __init__(self, engine: ShardedIndex, topology_epoch, views: List[SessionSnapshot]) -> None:
        self._engine = engine
        self._topology_epoch = topology_epoch
        self._views = views
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release every pinned epoch (idempotent)."""
        if not self._closed:
            self._closed = True
            for view in self._views:
                view.close()
            self._topology_epoch.release()

    def __enter__(self) -> "ShardedSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def views(self) -> List[SessionSnapshot]:
        """The pinned per-shard session views, in shard order."""
        if self._closed:
            raise RuntimeError("sharded snapshot is closed")
        return self._views

    @property
    def topology_version(self) -> int:
        """The pinned topology epoch's version."""
        return self._topology_epoch.version

    @property
    def versions(self) -> Tuple[int, ...]:
        """Per-shard session epoch versions of this cut."""
        return tuple(view.version for view in self.views)

    # ------------------------------------------------------------------ reading
    def __len__(self) -> int:
        return sum(view.num_live for view in self.views)

    def live_row_ids(self) -> np.ndarray:
        """All live row ids across the pinned shards, sorted ascending."""
        parts = [view.live_row_ids() for view in self.views]
        merged = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        return np.sort(merged)

    def frozen(self) -> Tuple[np.ndarray, np.ndarray]:
        """The pinned population as ``(row_ids, matrix)``, sorted by row id.

        This is the frozen oracle the stress tests score against: a reader
        that pinned this snapshot must get answers bit-identical to a
        sequential scan over exactly these rows.
        """
        row_parts = [view.live_row_ids() for view in self.views]
        matrix_parts = [view.live_matrix() for view in self.views]
        if not row_parts:
            return (
                np.empty(0, dtype=np.int64),
                np.empty((0, self._engine.num_dims), dtype=float),
            )
        rows = np.concatenate(row_parts)
        matrix = np.concatenate(matrix_parts) if len(rows) else np.empty(
            (0, self._engine.num_dims), dtype=float
        )
        # kind="stable": duplicate/equal keys must never reorder rows across
        # platforms, or the bit-identical fuzz oracles would drift.
        order = np.argsort(rows, kind="stable")
        return rows[order], matrix[order]

    def query(
        self,
        query: Union[SDQuery, Sequence[float]],
        k: Optional[int] = None,
        alpha: Optional[Sequence[float]] = None,
        beta: Optional[Sequence[float]] = None,
    ) -> TopKResult:
        """Answer one SD-Query against the pinned cut."""
        spec = self._engine._coerce_single(query, k, alpha, beta)
        return self._engine._serve_snapshot(self, spec).results[0]

    def batch_query(
        self, queries, k=None, alpha=None, beta=None, deadline=None
    ) -> BatchResult:
        """Answer a batch of SD-Queries against the pinned cut."""
        spec = BatchQuerySpec.coerce(
            self._engine.repulsive,
            self._engine.attractive,
            self._engine.num_dims,
            queries,
            k=k,
            alpha=alpha,
            beta=beta,
        )
        return self._engine._serve_snapshot(self, spec, deadline=deadline)


class ShardedXYIndex:
    """2D facade over a :class:`ShardedIndex` mirroring the x/y call shapes.

    ``x`` is the attractive coordinate and ``y`` the repulsive one, exactly as
    in :class:`repro.core.topk.TopKIndex` (``alpha`` weights ``|y - qy|``,
    ``beta`` weights ``|x - qx|``).  Scores follow the SD-Index term order
    ``alpha*|dy| - beta*|dx|`` — mathematically equal to the TopKIndex kernels,
    bit-identical to the sharded/flat n-dimensional engines.  Default ``k``
    and weights may be pinned at build time (the ``Top1Index.sharded``
    apriori-parameter style) or passed per query (``TopKIndex.sharded``).
    """

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        num_shards: int = 4,
        k: Optional[int] = None,
        alpha: float = 1.0,
        beta: float = 1.0,
        row_ids: Optional[Sequence[int]] = None,
        **options,
    ) -> None:
        xs = np.asarray(x, dtype=float)
        ys = np.asarray(y, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("x and y must be 1-d arrays of equal length")
        self.default_k = None if k is None else int(k)
        self.default_alpha = float(alpha)
        self.default_beta = float(beta)
        self._inner = ShardedIndex(
            np.column_stack([xs, ys]) if len(xs) else np.empty((0, 2)),
            repulsive=(1,),
            attractive=(0,),
            num_shards=num_shards,
            row_ids=row_ids,
            **options,
        )

    @property
    def inner(self) -> ShardedIndex:
        """The underlying n-dimensional sharded engine."""
        return self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def _resolve(self, k, alpha, beta) -> Tuple[int, float, float]:
        k = self.default_k if k is None else int(k)
        if k is None:
            raise ValueError("k is required (none was pinned at build time)")
        return (
            k,
            self.default_alpha if alpha is None else float(alpha),
            self.default_beta if beta is None else float(beta),
        )

    def query(self, qx: float, qy: float, k=None, alpha=None, beta=None) -> TopKResult:
        """Top-k for one 2D query point."""
        k, alpha, beta = self._resolve(k, alpha, beta)
        return self._inner.query([float(qx), float(qy)], k=k, alpha=[alpha], beta=[beta])

    def batch_query(self, qx, qy, k=None, alpha=None, beta=None) -> BatchResult:
        """Top-k for a batch of 2D query points."""
        k, alpha, beta = self._resolve(k, alpha, beta)
        points = np.column_stack(
            [np.atleast_1d(np.asarray(qx, dtype=float)),
             np.atleast_1d(np.asarray(qy, dtype=float))]
        )
        return self._inner.batch_query(points, k=k, alpha=[alpha], beta=[beta])

    def insert(self, x: float, y: float, row_id: Optional[int] = None) -> int:
        return self._inner.insert([float(x), float(y)], row_id=row_id)

    def delete(self, row_id: int) -> None:
        self._inner.delete(row_id)
