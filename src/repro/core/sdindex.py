"""The public SD-Index facade.

:class:`SDIndex` is the index a library user builds once over a dataset (with a
fixed assignment of repulsive and attractive dimensions) and then queries with
arbitrary query points, ``k`` and weighting parameters.  Internally it is the
Section 5 decomposition: paired 2D projection-tree indexes plus 1D sorted columns
for leftover dimensions, aggregated with a threshold algorithm.

Example
-------
>>> import numpy as np
>>> from repro import SDIndex, SDQuery
>>> data = np.random.default_rng(0).random((1000, 4))
>>> index = SDIndex.build(data, repulsive=[0, 1], attractive=[2, 3])
>>> query = SDQuery.simple(point=data[0], repulsive=[0, 1], attractive=[2, 3], k=5)
>>> result = index.query(query)
>>> len(result)
5
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.aggregate import SubproblemAggregator
from repro.core.angles import AngleGrid
from repro.core.query import SDQuery
from repro.core.results import IndexStats, TopKResult

__all__ = ["SDIndex", "SDIndexSnapshot"]


class SDIndex:
    """Top-k SD-Query index for datasets of arbitrary dimensionality.

    Queries can be answered one at a time (:meth:`query`) or in vectorized
    batches (:meth:`batch_query`).

    **Cached session lifecycle.**  Both paths execute on a shared
    *query session* — the projection trees flattened into leaf-aligned numpy
    arrays (see :class:`repro.core.batch.QuerySession` and DESIGN.md):

    * The session is built lazily on the first :meth:`query` /
      :meth:`batch_query` call and then reused; :meth:`query_session` returns
      it for direct batch use.
    * :meth:`insert`, :meth:`delete`, :meth:`bulk_insert` and
      :meth:`bulk_delete` do **not** invalidate it: the flattened arrays are
      patched in place (appended leaf rows, a tombstone validity mask,
      loosened leaf bounds), so serving continues at full speed across
      updates.
    * Once accumulated tombstones plus bound-loosening appends exceed a
      quarter of the live rows, the session marks itself dirty and reflattens
      on the next query — exactly the projection tree's own rebuild policy.
      Call :meth:`refresh_session` to force the reflatten eagerly (e.g. from a
      maintenance thread after a bulk load).

    The single-query fast path returns scores bit-identical to the legacy
    threshold traversal, which remains available as the verification oracle
    via ``query(..., engine="legacy")``.

    Batch semantics:

    * The batch is an ``(m, num_dims)`` array of query points plus per-query
      ``k`` and weights, a sequence of :class:`SDQuery` objects, or a
      :class:`repro.workloads.workload.BatchWorkload`.  ``k`` is a scalar or an
      ``(m,)`` vector; ``alpha``/``beta`` are a scalar (all queries, all
      dimensions), a per-dimension vector shared by every query, or an
      ``(m, dims)`` matrix giving each query its own weights.
    * The result is a :class:`repro.core.results.BatchResult` whose ``j``-th
      entry is the :class:`TopKResult` of query ``j`` — ``len(batch[j])`` is
      ``min(k_j, len(index))`` and matches are ordered best-first with the
      deterministic ``(-score, row_id)`` tie-break.
    * Scores are bit-identical to :meth:`query` (same floating-point term
      order); row ids agree whenever the k-th and (k+1)-th best scores differ
      (an exact tie at the boundary is resolved by row id in the batch path
      and by traversal order in the single-query path).
    """

    def __init__(
        self,
        data: np.ndarray,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        angles: Optional[Union[AngleGrid, Sequence[float]]] = None,
        branching: int = 8,
        leaf_capacity: int = 32,
        pairing: str = "order",
        row_ids: Optional[Sequence[int]] = None,
        concurrency: str = "snapshot",
        compaction: str = "size_tiered",
        flush_rows: Optional[int] = None,
        fanout: Optional[int] = None,
        background_compaction: bool = True,
    ) -> None:
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("data must be an (n, m) matrix of points")
        if isinstance(angles, AngleGrid):
            angle_grid = angles
        elif angles is None:
            angle_grid = AngleGrid.default()
        else:
            angle_grid = AngleGrid.from_degrees(angles)
        self.repulsive = tuple(int(d) for d in repulsive)
        self.attractive = tuple(int(d) for d in attractive)
        self.num_dims = matrix.shape[1]
        self._validate_roles()
        self._aggregator = SubproblemAggregator(
            matrix,
            repulsive=self.repulsive,
            attractive=self.attractive,
            pairing=pairing,
            angle_grid=angle_grid,
            branching=branching,
            leaf_capacity=leaf_capacity,
            row_ids=row_ids,
            concurrency=concurrency,
            compaction=compaction,
            flush_rows=flush_rows,
            fanout=fanout,
            background_compaction=background_compaction,
        )

    @property
    def concurrency(self) -> str:
        """``"snapshot"`` (epoch-isolated reads, default) or ``"unsafe"``."""
        return self._aggregator.concurrency

    def _validate_roles(self) -> None:
        used = set(self.repulsive) | set(self.attractive)
        if len(used) != len(self.repulsive) + len(self.attractive):
            raise ValueError("repulsive and attractive dimensions must be disjoint")
        if not self.repulsive and not self.attractive:
            raise ValueError("at least one repulsive or attractive dimension is required")
        out_of_range = [d for d in used if d < 0 or d >= self.num_dims]
        if out_of_range:
            raise ValueError(f"dimension indexes out of range: {sorted(out_of_range)}")

    # ------------------------------------------------------------------ building
    @classmethod
    def build(
        cls,
        data: np.ndarray,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        **kwargs,
    ) -> "SDIndex":
        """Build an index over ``data`` with the given dimension roles.

        Keyword arguments are forwarded to the constructor (``angles``,
        ``branching``, ``leaf_capacity``, ``pairing``, ``row_ids``).
        """
        return cls(data, repulsive=repulsive, attractive=attractive, **kwargs)

    @classmethod
    def build_sharded(
        cls,
        data: np.ndarray,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        num_shards: int = 4,
        **kwargs,
    ):
        """Build a horizontally sharded serving engine over ``data``.

        Returns a :class:`repro.core.sharding.ShardedIndex`: the same
        ``query``/``batch_query``/update surface as :class:`SDIndex`, with rows
        hash- or range-partitioned across ``num_shards`` independent shards and
        queries served by bound-ordered shard probes.  Results are
        bit-identical to the unsharded engine.  Keyword arguments cover both
        the sharding knobs (``partitioner``, ``range_dim``, ``parallel``,
        ``rebalance_threshold``) and the per-shard index options.
        """
        from repro.core.sharding import ShardedIndex

        return ShardedIndex(
            data,
            repulsive=repulsive,
            attractive=attractive,
            num_shards=num_shards,
            **kwargs,
        )

    # ------------------------------------------------------------------ querying
    def query(
        self,
        query: Union[SDQuery, Sequence[float]],
        k: Optional[int] = None,
        alpha: Optional[Sequence[float]] = None,
        beta: Optional[Sequence[float]] = None,
        engine: str = "fast",
    ) -> TopKResult:
        """Answer an SD-Query.

        Either pass a fully specified :class:`SDQuery` (whose dimension roles must
        match the index) or pass the query point together with ``k`` and optional
        weights, and the index fills in its own dimension roles.

        ``engine`` selects the execution path: ``"fast"`` (default) runs the
        vectorized filter-and-verify kernels over the cached query session;
        ``"legacy"`` runs the original per-stream threshold aggregation.  Both
        return bit-identical scores; an exact score tie at the k-th boundary
        resolves by row id on the fast path and by traversal order on the
        legacy path.
        """
        if engine not in ("fast", "legacy"):
            raise ValueError(f"unknown engine {engine!r}; use 'fast' or 'legacy'")
        built = self._coerce_query(query, k, alpha, beta)
        if engine == "legacy":
            return self._aggregator.query(built)
        return self._aggregator.query_fast(built)

    def _coerce_query(
        self,
        query: Union[SDQuery, Sequence[float]],
        k: Optional[int],
        alpha: Optional[Sequence[float]],
        beta: Optional[Sequence[float]],
    ) -> SDQuery:
        """Normalize the two single-query call shapes (shared with snapshots)."""
        if isinstance(query, SDQuery):
            if k is not None or alpha is not None or beta is not None:
                raise ValueError("pass either an SDQuery or point/k/weights, not both")
            return query
        if k is None:
            raise ValueError("k is required when querying with a raw point")
        return SDQuery.simple(
            point=query,
            repulsive=self.repulsive,
            attractive=self.attractive,
            k=k,
            alpha=alpha,
            beta=beta,
        )

    def batch_query(
        self,
        queries,
        k=None,
        alpha=None,
        beta=None,
    ):
        """Answer many SD-Queries at once with the vectorized batch engine.

        See the class docstring for the accepted inputs and the exact result
        semantics.  For several batches against an unchanged index, hold on to
        a :meth:`query_session` instead so the shared traversal state is built
        only once.
        """
        return self._aggregator.batch_query(queries, k=k, alpha=alpha, beta=beta)

    def query_session(self, seed_pool: Optional[int] = None):
        """The shared query session (kept valid across updates by patching).

        With the default ``seed_pool`` this is the same session the
        single-query fast path and :meth:`batch_query` use; its
        ``maintenance_stats()`` expose how many updates were patched in place
        and how often it reflattened.  Pass a custom ``seed_pool`` for a
        private session (also maintained).
        """
        return self._aggregator.session(seed_pool=seed_pool)

    def refresh_session(self) -> None:
        """Force the cached session to reflatten now (instead of lazily)."""
        session = self._aggregator._serving_session
        if session is not None:
            session.reflatten()

    # ------------------------------------------------------------- maintenance
    @property
    def compaction(self) -> str:
        """``"size_tiered"`` (LSM maintenance) or ``"legacy"`` (in-place)."""
        return self._aggregator.compaction

    def lsm_maintain(self):
        """Run due LSM flushes/merges now; returns the structure ops applied."""
        return self._aggregator.lsm_maintain()

    def flush(self) -> bool:
        """Fold the serving session's delta into a fresh immutable level."""
        return self._aggregator.lsm_flush()

    def compact(self, seqs: Optional[Sequence[int]] = None):
        """Merge the serving session's levels (all by default)."""
        return self._aggregator.lsm_compact(seqs)

    def set_auto_compaction(self, enabled: bool) -> None:
        """Toggle self-scheduled maintenance (a durability wrapper disables it)."""
        self._aggregator.set_auto_compaction(enabled)

    def quiesce_maintenance(self) -> None:
        """Join in-flight background compaction (raises its stored failure)."""
        self._aggregator.quiesce_maintenance()

    def maintenance_stats(self):
        """The serving session's maintenance counters (patches, reflattens,
        epochs; plus ``levels``/``flushes``/``compactions``/``delta_live``
        when the default LSM session is in charge)."""
        return self._aggregator.maintenance_stats()

    def snapshot(self) -> "SDIndexSnapshot":
        """Pin the current serving epoch: a repeatable-read view of the index.

        Queries answered through the returned :class:`SDIndexSnapshot` keep
        returning the same answers no matter what ``insert``/``delete`` do
        concurrently (see DESIGN.md section 6).  Use it as a context manager,
        or ``close()`` it, to release the pinned epoch.
        """
        return SDIndexSnapshot(self, self._aggregator.snapshot())

    # ------------------------------------------------------------- persistence
    def save(self, path) -> None:
        """Write a durable snapshot of this index at ``path`` (a directory).

        The snapshot holds the flattened serving-session arrays, the
        aggregator's row bookkeeping and the build parameters, versioned and
        checksummed (DESIGN.md section 7).  Checkpointing pins the current
        serving epoch, so concurrent writers keep running while the arrays
        stream out.  Restore with :meth:`load`; wrap the index in a
        :class:`repro.core.persistence.DurableIndex` for a write-ahead log
        and crash recovery between snapshots.
        """
        from repro.core.persistence import save_engine

        save_engine(self, path)

    @classmethod
    def load(cls, path, mmap: bool = False, verify: Optional[bool] = None) -> "SDIndex":
        """Load a snapshot written by :meth:`save`.

        ``mmap=True`` memory-maps the arrays for a near-instant warm start
        (the projection trees are rebuilt lazily, only when maintenance first
        needs them); updates after an mmap load route through the
        copy-on-write patch path, never the mapped file.  Raises
        :class:`repro.core.persistence.SnapshotFormatError` on an unknown
        format version or a failed checksum.
        """
        from repro.core.persistence import load_engine

        return load_engine(path, mmap=mmap, verify=verify, expect="sdindex")

    # ------------------------------------------------------------------ updates
    def insert(self, point: Sequence[float], row_id: Optional[int] = None) -> int:
        """Insert a point into the index; returns its row id.

        Cached query sessions are patched in place, not invalidated.
        """
        return self._aggregator.insert(point, row_id)

    def bulk_insert(self, points, row_ids: Optional[Sequence[int]] = None):
        """Insert many points at once (one vectorized session patch); returns ids."""
        return self._aggregator.bulk_insert(points, row_ids)

    def delete(self, row_id: int) -> None:
        """Delete a point from the index by row id (sessions tombstone it)."""
        self._aggregator.delete(row_id)

    def bulk_delete(self, row_ids: Sequence[int]) -> None:
        """Delete many rows at once (one vectorized session patch)."""
        self._aggregator.bulk_delete(row_ids)

    def __len__(self) -> int:
        return len(self._aggregator)

    def point(self, row_id: int) -> np.ndarray:
        """Random access to a stored point."""
        return self._aggregator.point(row_id)

    # ------------------------------------------------------------------ stats
    def stats(self) -> IndexStats:
        """Memory and shape statistics aggregated over the subproblem indexes."""
        return self._aggregator.stats()

    @property
    def pairing(self):
        """The dimension pairing in use (see :mod:`repro.core.pairing`)."""
        return self._aggregator.pairing

    @property
    def aggregator(self) -> SubproblemAggregator:
        """The underlying aggregator (for benchmarking and tests)."""
        return self._aggregator

    # ------------------------------------------------------------------ lifecycle
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._aggregator.closed

    def close(self) -> None:
        """Release the index's resources; idempotent.

        For an index restored with ``load(..., mmap=True)`` this drops the
        memory-mapped snapshot files (see
        :meth:`repro.core.aggregate.SubproblemAggregator.close`); afterwards
        the snapshot directory can be pruned and queries raise
        ``RuntimeError``.
        """
        guard = getattr(self, "_mmap_guard", None)
        if guard is not None and getattr(self._aggregator, "_mmap_guard", None) is None:
            # load() attaches the guard to the facade; hand it down so the
            # aggregator can materialize a pending reflatten before the maps
            # are released.
            self._aggregator._mmap_guard = guard
        self._aggregator.close()
        if guard is not None:
            guard.close()

    def __enter__(self) -> "SDIndex":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False


class SDIndexSnapshot:
    """A pinned, immutable read view of one :class:`SDIndex` serving epoch.

    Mirrors the index's query surface (:meth:`query` / :meth:`batch_query`)
    but every answer comes from the pinned epoch — concurrent writers cannot
    move it.  ``frozen()`` exposes the pinned population for oracle checks.
    """

    #: The coalescer checks this before threading a request deadline through.
    supports_deadline = True

    def __init__(self, index: SDIndex, view) -> None:
        self._index = index
        self._view = view

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the pinned epoch (idempotent)."""
        self._view.close()

    def __enter__(self) -> "SDIndexSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def version(self) -> int:
        """The pinned session epoch's version."""
        return self._view.version

    # ------------------------------------------------------------------ reading
    def __len__(self) -> int:
        return self._view.num_live

    def frozen(self):
        """The pinned population as ``(row_ids, matrix)``, sorted by row id."""
        rows = self._view.live_row_ids()
        matrix = self._view.live_matrix()
        order = np.argsort(rows, kind="stable")
        return rows[order], matrix[order]

    def query(
        self,
        query: Union[SDQuery, Sequence[float]],
        k: Optional[int] = None,
        alpha: Optional[Sequence[float]] = None,
        beta: Optional[Sequence[float]] = None,
    ) -> TopKResult:
        """Answer one SD-Query against the pinned epoch (fast engine only)."""
        return self._view.run_one(self._index._coerce_query(query, k, alpha, beta))

    def batch_query(self, queries, k=None, alpha=None, beta=None, deadline=None):
        """Answer a batch of SD-Queries against the pinned epoch."""
        return self._view.run(queries, k=k, alpha=alpha, beta=beta, deadline=deadline)
