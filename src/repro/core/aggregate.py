"""Threshold aggregation of 2D and 1D subproblems (Section 5 of the paper).

The general SD-Query over ``m`` dimensions is decomposed by
:mod:`repro.core.pairing` into:

* one 2D subproblem per (repulsive, attractive) dimension pair, served by a
  :class:`repro.core.topk.TopKIndex` over those two columns, and
* one 1D subproblem per leftover dimension, served by a sorted column explored
  farthest-first (repulsive) or nearest-first (attractive).

Each subproblem yields points in non-increasing order of its *partial score*
(its term of Equation 10).  The aggregator pulls from the subproblem streams in
round-robin fashion, fully evaluates every newly seen point by random access, and
stops as soon as the k-th best full score reaches the threshold formed by summing
the most recent partial score of every stream — the same stopping rule as the
Threshold Algorithm, but over coarser (two-dimensional) subproblems, which is
where the paper's speed-up over TA comes from.
"""

from __future__ import annotations

import math
import threading
import weakref
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.angles import AngleGrid
from repro.core.epoch import validate_concurrency
from repro.core.pairing import DimensionPairing, pair_dimensions
from repro.core.query import SDQuery, make_fast_scorer, sd_score
from repro.core.results import Match, TopKResult
from repro.core.topk import TopKIndex
from repro.substrates.bidirectional import FarthestFirstExplorer, NearestFirstExplorer
from repro.substrates.heaps import BoundedMaxHeap
from repro.substrates.sorted_column import SortedColumn

__all__ = ["SubproblemAggregator", "claim_row_id"]


def claim_row_id(row_id, max_row_id: int, is_deleted, is_present) -> int:
    """The row-id claim policy shared by the aggregator and the sharded router.

    ``None`` auto-assigns one past the high-water mark ``max_row_id``; deleted
    ids are never reusable (their physical copies may still sit in bulk
    arrays) and live ids cannot be claimed twice.  Callers advance their own
    high-water mark with the returned id.
    """
    if row_id is None:
        row_id = max_row_id + 1
    row_id = int(row_id)
    if is_deleted(row_id):
        raise ValueError(f"row id {row_id} was deleted and cannot be reused")
    if is_present(row_id):
        raise ValueError(f"row id {row_id} already present")
    return row_id


class _PairStream:
    """Adapter turning a 2D index's best-first iterator into a partial-score stream."""

    def __init__(self, index: TopKIndex, qx: float, qy: float, alpha: float, beta: float) -> None:
        self._iterator = index.iter_best(qx, qy, alpha=alpha, beta=beta)
        self.last_partial = math.inf
        self.exhausted = False

    def pull(self) -> Optional[Tuple[int, float]]:
        try:
            row, partial = next(self._iterator)
        except StopIteration:
            self.exhausted = True
            self.last_partial = -math.inf
            return None
        self.last_partial = partial
        return row, partial


class _ColumnStream:
    """Adapter over a 1D explorer producing signed partial scores."""

    def __init__(self, explorer, weight: float, attractive: bool) -> None:
        self._explorer = explorer
        self._weight = float(weight)
        self._attractive = attractive
        self.last_partial = math.inf
        self.exhausted = False

    def pull(self) -> Optional[Tuple[int, float]]:
        try:
            row, distance = next(self._explorer)
        except StopIteration:
            self.exhausted = True
            self.last_partial = -math.inf
            return None
        partial = -self._weight * distance if self._attractive else self._weight * distance
        self.last_partial = partial
        return row, partial


class SubproblemAggregator:
    """Answers arbitrary-dimensional SD-Queries by aggregating subproblem streams."""

    def __init__(
        self,
        data: np.ndarray,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        pairing: str = "order",
        angle_grid: Optional[AngleGrid] = None,
        branching: int = 8,
        leaf_capacity: int = 32,
        row_ids: Optional[Sequence[int]] = None,
        concurrency: str = "snapshot",
        compaction: str = "size_tiered",
        flush_rows: Optional[int] = None,
        fanout: Optional[int] = None,
        background_compaction: bool = True,
    ) -> None:
        matrix = np.asarray(data, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("data must be an (n, m) matrix")
        validate_concurrency(concurrency)
        from repro.core.lsm import validate_compaction

        validate_compaction(compaction)
        #: Maintenance shape of the sessions this aggregator creates:
        #: ``"size_tiered"`` (default) gives LSM sessions — delta absorbs
        #: writes, immutable levels serve the bulk, a compactor folds them
        #: down (DESIGN.md section 11); ``"legacy"`` keeps the in-place
        #: patch + 25%-garbage reflatten behavior.  LSM requires snapshot
        #: publication, so ``concurrency="unsafe"`` always gets legacy
        #: sessions regardless of this knob.
        self.compaction = compaction
        self._lsm_options: Dict[str, object] = {}
        if flush_rows is not None:
            self._lsm_options["flush_rows"] = int(flush_rows)
        if fanout is not None:
            self._lsm_options["fanout"] = int(fanout)
        self._lsm_options["background"] = bool(background_compaction)
        #: Concurrency mode inherited by every session this aggregator creates:
        #: ``"snapshot"`` (default) publishes copy-on-write epochs so reads
        #: under writes are safe; ``"unsafe"`` patches in place (legacy,
        #: single-threaded mutation only).  See DESIGN.md section 6.
        self.concurrency = concurrency
        #: Serializes writers (and session rebuilds, which read the structures
        #: writers mutate).  Reentrant: a writer patch may trigger a rebuild.
        self._write_lock = threading.RLock()
        self._num_dims = matrix.shape[1]
        self.repulsive = tuple(int(d) for d in repulsive)
        self.attractive = tuple(int(d) for d in attractive)
        self.angle_grid = angle_grid or AngleGrid.default()
        self.branching = branching
        self.leaf_capacity = leaf_capacity
        self.pairing_strategy = pairing

        rows = (
            list(range(len(matrix)))
            if row_ids is None
            else [int(r) for r in row_ids]
        )
        if len(rows) != len(matrix):
            raise ValueError("row_ids must align with the data matrix")
        self._base_rows = {row: i for i, row in enumerate(rows)}
        self._base_matrix = matrix
        self._extra_points: Dict[int, np.ndarray] = {}
        self._deleted: set = set()
        #: Largest row id ever present; auto-assigned ids are this plus one
        #: (deleted ids stay unavailable, so the counter never moves back).
        self._max_row_id = max(rows) if rows else -1

        self.pairing: DimensionPairing = pair_dimensions(
            self.repulsive, self.attractive, strategy=pairing, data=matrix
        )
        self._pair_indexes: List[TopKIndex] = []
        for rep_dim, att_dim in self.pairing.pairs:
            self._pair_indexes.append(
                TopKIndex(
                    x=matrix[:, att_dim],
                    y=matrix[:, rep_dim],
                    angle_grid=self.angle_grid,
                    branching=branching,
                    leaf_capacity=leaf_capacity,
                    row_ids=rows,
                )
            )
        self._column_dims = list(self.pairing.leftover_repulsive) + list(
            self.pairing.leftover_attractive
        )
        self._columns: Dict[int, SortedColumn] = {
            dim: SortedColumn(matrix[:, dim], row_ids=rows) for dim in self._column_dims
        }
        self._columns_dirty = False
        self._mutations = 0
        #: Live query sessions patched in place on every update (weak refs so
        #: abandoned sessions disappear), plus the lazily built serving session
        #: backing the single-query fast path and ``batch_query``.
        self._sessions: List[weakref.ref] = []
        self._serving_session = None
        self._closed = False

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self._base_rows) + len(self._extra_points) - len(self._deleted)

    @property
    def mutations(self) -> int:
        """Monotone update counter; batch query sessions use it to detect staleness."""
        return self._mutations

    @property
    def version(self) -> int:
        """Alias of :attr:`mutations`: the aggregator's state version number.

        Bumped on every mutation; session epochs published for this aggregator
        correspond to prefixes of this counter.
        """
        return self._mutations

    @property
    def write_lock(self) -> threading.RLock:
        """The writer mutex: mutations and session (re)builds serialize on it."""
        return self._write_lock

    def point(self, row_id: int) -> np.ndarray:
        """Random access to a live point's full coordinate vector."""
        row_id = int(row_id)
        if row_id in self._deleted:
            raise KeyError(f"row id {row_id} was deleted")
        if row_id in self._extra_points:
            return self._extra_points[row_id]
        return self._base_matrix[self._base_rows[row_id]]

    def _live_rows(self) -> Iterator[int]:
        for row in self._base_rows:
            if row not in self._deleted:
                yield row
        for row in self._extra_points:
            if row not in self._deleted:
                yield row

    # ------------------------------------------------------------------ updates
    def _register_session(self, session) -> None:
        """Track a session so updates can patch it in place."""
        self._sessions = [ref for ref in self._sessions if ref() is not None]
        self._sessions.append(weakref.ref(session))

    def _patch_sessions(self, method: str, *args) -> None:
        """Push one update to every live session (dead weak refs are dropped)."""
        alive: List[weakref.ref] = []
        for ref in self._sessions:
            session = ref()
            if session is None:
                continue
            getattr(session, method)(*args)
            alive.append(ref)
        self._sessions = alive

    def _maintain_sessions(self) -> None:
        """Post-write LSM trigger: let every layered session schedule work.

        Called by the mutators while still holding the write lock; LSM
        sessions either hand the due flush/merge to their background
        compactor thread or (inline mode) perform it now under the already
        held reentrant lock.  Legacy sessions have no such hook and are
        skipped.
        """
        for ref in self._sessions:
            session = ref()
            if session is None:
                continue
            trigger = getattr(session, "maybe_maintain", None)
            if trigger is not None:
                trigger()

    def _validate_new_point(self, point) -> np.ndarray:
        vector = np.asarray(point, dtype=float)
        if vector.shape != (self._num_dims,):
            raise ValueError(f"point must have {self._num_dims} dimensions")
        return vector

    def _claim_row_id(self, row_id: Optional[int]) -> int:
        row_id = claim_row_id(
            row_id,
            self._max_row_id,
            self._deleted.__contains__,
            lambda r: r in self._base_rows or r in self._extra_points,
        )
        self._max_row_id = max(self._max_row_id, row_id)
        return row_id

    def insert(self, point: Sequence[float], row_id: Optional[int] = None) -> int:
        """Insert a point into every subproblem structure.

        Live query sessions are patched in place (an appended row per session)
        rather than invalidated — see :meth:`session`.
        """
        vector = self._validate_new_point(point)
        with self._write_lock:
            self._check_closed()
            row_id = self._claim_row_id(row_id)
            self._extra_points[row_id] = vector
            for index, (rep_dim, att_dim) in zip(self._pair_indexes, self.pairing.pairs):
                index.insert(vector[att_dim], vector[rep_dim], row_id)
            if self._column_dims:
                self._columns_dirty = True
            self._mutations += 1
            self._patch_sessions("apply_insert", row_id, vector)
            self._maintain_sessions()
            return row_id

    def bulk_insert(
        self, points, row_ids: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Insert many points at once; returns their row ids.

        Semantically identical to calling :meth:`insert` in a loop, but the
        whole batch is validated up front, counts as a single mutation, and
        live query sessions are patched with one vectorized splice instead of
        one patch per point.
        """
        matrix = np.asarray(points, dtype=float)
        if matrix.size == 0:
            matrix = matrix.reshape(0, self._num_dims)
        if matrix.ndim != 2 or matrix.shape[1] != self._num_dims:
            raise ValueError(
                f"points must have shape (m, {self._num_dims}), got {matrix.shape}"
            )
        with self._write_lock:
            self._check_closed()
            if row_ids is None:
                ids = [self._claim_row_id(None) for _ in range(len(matrix))]
            else:
                ids = [int(r) for r in row_ids]
                if len(ids) != len(matrix):
                    raise ValueError("row_ids must align with the points")
                if len(set(ids)) != len(ids):
                    raise ValueError("row ids must be unique")
                ids = [self._claim_row_id(r) for r in ids]
            if not len(matrix):
                return []
            for row_id, vector in zip(ids, matrix):
                self._extra_points[row_id] = vector
                for index, (rep_dim, att_dim) in zip(self._pair_indexes, self.pairing.pairs):
                    index.insert(vector[att_dim], vector[rep_dim], row_id)
            if self._column_dims:
                self._columns_dirty = True
            self._mutations += 1
            self._patch_sessions(
                "apply_bulk_insert", np.asarray(ids, dtype=np.int64), matrix
            )
            self._maintain_sessions()
            return ids

    def delete(self, row_id: int) -> None:
        """Delete a point from every subproblem structure.

        Live query sessions tombstone the row through their validity mask
        instead of being invalidated.
        """
        row_id = int(row_id)
        with self._write_lock:
            self._check_closed()
            if row_id in self._deleted or (
                row_id not in self._base_rows and row_id not in self._extra_points
            ):
                raise KeyError(f"row id {row_id} not present")
            self._deleted.add(row_id)
            for index in self._pair_indexes:
                index.delete(row_id)
            if self._column_dims:
                self._columns_dirty = True
            self._mutations += 1
            self._patch_sessions("apply_delete", row_id)
            self._maintain_sessions()

    def bulk_delete(self, row_ids: Sequence[int]) -> None:
        """Delete many rows at once (validated up front, one session patch)."""
        ids = [int(r) for r in row_ids]
        if len(set(ids)) != len(ids):
            raise ValueError("row ids must be unique")
        with self._write_lock:
            self._check_closed()
            for row_id in ids:
                if row_id in self._deleted or (
                    row_id not in self._base_rows and row_id not in self._extra_points
                ):
                    raise KeyError(f"row id {row_id} not present")
            if not ids:
                return
            self._deleted.update(ids)
            for row_id in ids:
                for index in self._pair_indexes:
                    index.delete(row_id)
            if self._column_dims:
                self._columns_dirty = True
            self._mutations += 1
            self._patch_sessions("apply_bulk_delete", np.asarray(ids, dtype=np.int64))
            self._maintain_sessions()

    def _refresh_columns(self) -> None:
        with self._write_lock:
            rows = list(self._live_rows())
            for dim in self._column_dims:
                values = [float(self.point(row)[dim]) for row in rows]
                self._columns[dim] = SortedColumn(values, row_ids=rows)
            self._columns_dirty = False

    # ------------------------------------------------------------------ querying
    def query(self, query: SDQuery) -> TopKResult:
        """Answer an SD-Query whose dimension roles match this aggregator."""
        if set(query.repulsive) != set(self.repulsive) or set(query.attractive) != set(
            self.attractive
        ):
            raise ValueError(
                "query dimension roles do not match the roles the index was built for"
            )
        if self._columns_dirty:
            self._refresh_columns()

        alpha_of = dict(zip(query.repulsive, query.alpha))
        beta_of = dict(zip(query.attractive, query.beta))

        streams: List = []
        for index, (rep_dim, att_dim) in zip(self._pair_indexes, self.pairing.pairs):
            streams.append(
                _PairStream(
                    index,
                    qx=query.point[att_dim],
                    qy=query.point[rep_dim],
                    alpha=alpha_of[rep_dim],
                    beta=beta_of[att_dim],
                )
            )
        for dim in self.pairing.leftover_repulsive:
            streams.append(
                _ColumnStream(
                    FarthestFirstExplorer(self._columns[dim], query.point[dim]),
                    weight=alpha_of[dim],
                    attractive=False,
                )
            )
        for dim in self.pairing.leftover_attractive:
            streams.append(
                _ColumnStream(
                    NearestFirstExplorer(self._columns[dim], query.point[dim]),
                    weight=beta_of[dim],
                    attractive=True,
                )
            )

        heap = BoundedMaxHeap(query.k)
        seen: set = set()
        candidates_examined = 0
        full_evaluations = 0
        fast_score = make_fast_scorer(query)

        while True:
            progressed = False
            for stream in streams:
                if stream.exhausted:
                    continue
                pulled = stream.pull()
                if pulled is None:
                    continue
                progressed = True
                row, _partial = pulled
                candidates_examined += 1
                if row in seen or row in self._deleted:
                    continue
                seen.add(row)
                score = fast_score(self.point(row))
                full_evaluations += 1
                heap.push(score, row)
            threshold = sum(stream.last_partial for stream in streams)
            kth = heap.kth_score()
            if kth is not None and kth >= threshold:
                break
            if not progressed:
                break

        matches = [
            Match(row_id=row, score=score, point=tuple(self.point(row)))
            for score, row in heap.items()
        ]
        return TopKResult(
            matches=matches,
            candidates_examined=candidates_examined,
            full_evaluations=full_evaluations,
            nodes_visited=0,
            algorithm="sd-index",
        )

    def query_fast(self, query: SDQuery) -> TopKResult:
        """Answer one SD-Query through the flattened-array fast path.

        Runs the vectorized filter-and-verify kernels over the (lazily built,
        incrementally maintained) serving session.  Scores are bit-identical to
        :meth:`query`; an exact tie at the k-th boundary resolves by row id
        instead of traversal order.
        """
        return self.serving_session().run_one(query)

    # ------------------------------------------------------------- batch querying
    def serving_session(self):
        """The cached query session backing ``query_fast`` and ``batch_query``.

        Built on first use and then kept valid across updates by in-place
        patching; it only reflattens once its garbage threshold trips.
        """
        self._check_closed()
        if self._serving_session is None:
            with self._write_lock:
                if self._serving_session is None:
                    self._serving_session = self.session(cached=False)
        return self._serving_session

    def snapshot(self):
        """Pin the serving session's current epoch: an immutable read view.

        Returns a :class:`repro.core.batch.SessionSnapshot`; see DESIGN.md
        section 6 for the reader/writer protocol.
        """
        return self.serving_session().snapshot()

    def session(self, seed_pool: Optional[int] = None, cached: bool = True):
        """A shared-traversal batch query session over the current point set.

        The session snapshots the live points and flattens every 2D projection
        tree once; it stays valid across updates because the aggregator patches
        it in place (see :class:`repro.core.batch.QuerySession`).  By default
        this returns the shared serving session; pass ``cached=False`` (or a
        custom ``seed_pool``) for a private one.
        """
        if cached and seed_pool is None:
            return self.serving_session()
        return self._make_session(seed_pool)

    def _make_session(self, seed_pool: Optional[int] = None):
        """Construct a fresh session of the configured maintenance shape.

        ``compaction="size_tiered"`` under snapshot publication yields an
        LSM session (:class:`repro.core.lsm.LsmSession`); ``"legacy"`` — or
        any mode under ``concurrency="unsafe"``, which cannot publish the
        copy-on-write worlds LSM maintenance is defined by — yields the
        in-place :class:`repro.core.batch.QuerySession`.
        """
        if self.compaction != "legacy" and self.concurrency == "snapshot":
            from repro.core.lsm import LsmSession

            return LsmSession(self, seed_pool=seed_pool, **self._lsm_options)
        from repro.core.batch import QuerySession

        if seed_pool is None:
            return QuerySession(self)
        return QuerySession(self, seed_pool=seed_pool)

    def batch_query(self, queries, k=None, alpha=None, beta=None):
        """Answer a batch of SD-Queries with the vectorized execution engine.

        Accepts an ``(m, num_dims)`` array of query points plus ``k`` (scalar
        or per-query vector) and weights (scalar, per-dimension vector, or
        per-query ``(m, dims)`` matrix), a sequence of :class:`SDQuery`
        objects whose roles match this aggregator, or a batch workload.
        Returns a :class:`repro.core.results.BatchResult` in query order.
        """
        return self.serving_session().run(queries, k=k, alpha=alpha, beta=beta)

    # ------------------------------------------------------------- maintenance
    def lsm_maintain(self) -> List[Tuple]:
        """Run every due LSM flush/merge on the serving session, synchronously.

        Returns the structure ops performed, in apply order — each entry is
        ``("flush",)`` or ``("compact", seqs)``, the shape
        :class:`~repro.core.persistence.DurableIndex` journals as WAL records
        so ``recover()`` can replay the exact level layout.  No-op (empty
        list) for legacy sessions or when nothing is due.
        """
        session = self._serving_session
        if session is None or not hasattr(session, "maintain"):
            return []
        return session.maintain()

    def lsm_flush(self) -> bool:
        """Force the serving session's delta into a fresh level (False if empty)."""
        session = self.serving_session()
        if not hasattr(session, "flush"):
            return False
        return session.flush()

    def lsm_compact(self, seqs: Optional[Sequence[int]] = None):
        """Merge the serving session's levels (all by default); returns the seqs."""
        session = self.serving_session()
        if not hasattr(session, "compact"):
            return None
        return session.compact(seqs)

    def set_auto_compaction(self, enabled: bool) -> None:
        """Enable/disable self-scheduled maintenance on the serving session.

        A durability wrapper disables it so every flush/compact happens
        through :meth:`lsm_maintain` — synchronously, in journal order.
        """
        session = self.serving_session()
        if hasattr(session, "auto_compaction"):
            session.auto_compaction = bool(enabled)

    def quiesce_maintenance(self) -> None:
        """Join any in-flight background compaction across live sessions."""
        for ref in list(self._sessions):
            session = ref()
            if session is None:
                continue
            quiesce = getattr(session, "quiesce", None)
            if quiesce is not None:
                quiesce()

    def maintenance_stats(self) -> Dict[str, int]:
        """The serving session's maintenance counters.

        LSM sessions add their layering counters (``levels``, ``delta_live``,
        ``flushes``, ``compactions``, ``delta_absorbed_deletes``) to the base
        patch/reflatten/epoch counters every session reports.
        """
        return self.serving_session().maintenance_stats()

    # ------------------------------------------------------------------ stats
    def stats(self):
        """Aggregate statistics over all subproblem structures (an ``IndexStats``)."""
        from repro.core.results import IndexStats

        total_memory = 0
        total_nodes = 0
        build_seconds = 0.0
        for index in self._pair_indexes:
            stats = index.stats()
            total_memory += stats.memory_bytes
            total_nodes += stats.num_nodes
            build_seconds += stats.build_seconds or 0.0
        for column in self._columns.values():
            total_memory += column.memory_bytes()
        return IndexStats(
            name="sd-index",
            num_points=len(self),
            num_nodes=total_nodes,
            branching=self.branching,
            num_angles=len(self.angle_grid),
            memory_bytes=total_memory,
            build_seconds=build_seconds,
        )

    # ---------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has torn the aggregator down."""
        return getattr(self, "_closed", False)

    def _check_closed(self) -> None:
        if self.closed:
            raise RuntimeError("aggregator is closed")

    def close(self) -> None:
        """Tear down the aggregator and release any memory-mapped snapshot.

        Idempotent.  Engines restored with ``load(..., mmap=True)`` keep the
        snapshot's ``.npy`` files mapped; close drops every internal reference
        to the mapped arrays (serving state, lazy pair builders, sorted
        columns) and then releases the maps through the attached
        :class:`~repro.core.persistence.MmapGuard`, so worker recycling and
        snapshot-directory pruning never race an open file handle.  A pending
        reflatten is materialized first: the rebuild copies the mapped data
        into RAM, leaving any still-pinned reader a consistent world after
        the files are gone.  Pinned readers keep their mappings alive (and
        are reported through the guard's leak count) rather than having the
        pages unmapped beneath them.
        """
        if self.closed:
            return
        # Drain background compactors before taking the lock (they need it to
        # publish); a maintenance failure must not block teardown.
        try:
            self.quiesce_maintenance()
        except RuntimeError:
            pass
        with self._write_lock:
            if self.closed:
                return
            guard = getattr(self, "_mmap_guard", None)
            session = self._serving_session
            if guard is not None and session is not None and session.needs_reflatten:
                session.reflatten()
            self._closed = True
            for ref in self._sessions:
                live = ref()
                if live is not None:
                    # Retire the published state; unpinned epochs reclaim at
                    # once, pinned readers keep theirs until they unpin.
                    live.epochs.publish(None)
            self._sessions = []
            self._serving_session = None
            self._pair_indexes = []
            self._columns = {}
            self._base_matrix = np.empty((0, self._num_dims), dtype=float)
            self._base_rows = {}
            self._extra_points = {}
        if guard is not None:
            guard.close()

    def __enter__(self) -> "SubproblemAggregator":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False
