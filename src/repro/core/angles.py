"""Grids of indexed projection angles (Section 4.2).

The top-k index answers queries with arbitrary run-time weighting parameters by
storing projection bounds for a small set of *indexed angles* and combining them
at query time.  The paper recommends always indexing 0 and 90 degrees so that any
query angle is bracketed, and spreading additional angles uniformly (or according
to the expected query-angle distribution) — its default grid is
``0, 23, 45, 67, 90`` degrees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.geometry import Angle

__all__ = ["AngleGrid", "DEFAULT_ANGLE_DEGREES", "refine_angles"]

#: The paper's default: five angles distributed uniformly across the quadrant.
DEFAULT_ANGLE_DEGREES: Tuple[float, ...] = (0.0, 22.5, 45.0, 67.5, 90.0)


def refine_angles(angles: Sequence[Angle], factor: int) -> Tuple[Angle, ...]:
    """Subdivide each bracket of ``angles`` into ``factor`` equal arcs.

    The original angles are kept exactly (so exact-angle resolution and the
    partition grid's brackets are preserved) and ``factor - 1`` interior
    angles are inserted per bracket.  This is the *bound grid* refinement:
    stored per-leaf bounds get resolved against a denser grid, shrinking the
    interpolation cone of every bracket, while the partition grid that shapes
    tree traversal is untouched — refinement costs memory, never a rebuild.
    """
    factor = int(factor)
    if factor <= 1 or len(angles) < 2:
        return tuple(angles)
    radians = [angle.radians for angle in angles]
    refined: List[Angle] = []
    for i in range(len(angles) - 1):
        refined.append(angles[i])
        step = (radians[i + 1] - radians[i]) / factor
        refined.extend(
            Angle.from_radians(radians[i] + part * step)
            for part in range(1, factor)
        )
    refined.append(angles[-1])
    return tuple(refined)


@dataclass(frozen=True)
class AngleGrid:
    """An ordered set of indexed angles covering ``[0, 90]`` degrees."""

    angles: Tuple[Angle, ...]

    def __post_init__(self) -> None:
        if len(self.angles) < 2:
            raise ValueError("an angle grid needs at least two angles (0 and 90 degrees)")
        radians = [angle.radians for angle in self.angles]
        if any(b - a <= 1e-12 for a, b in zip(radians, radians[1:])):
            raise ValueError("angles must be strictly increasing")
        if radians[0] > 1e-9 or radians[-1] < math.pi / 2 - 1e-9:
            raise ValueError("the grid must span the full [0, 90] degree range")
        # Per-grid caches: ``bracket`` runs on every Claim-6 / Top1 build, so
        # keep the radians and memoize lookups per query angle (the grid is
        # frozen, hence the object.__setattr__ escape hatch).
        object.__setattr__(self, "_radians", tuple(radians))
        object.__setattr__(self, "_bracket_cache", {})

    def __len__(self) -> int:
        return len(self.angles)

    def __iter__(self):
        return iter(self.angles)

    def __getitem__(self, index: int) -> Angle:
        return self.angles[index]

    # ------------------------------------------------------------- constructors
    @classmethod
    def from_degrees(cls, degrees: Iterable[float]) -> "AngleGrid":
        """Grid from explicit angles in degrees (sorted, deduplicated)."""
        unique = sorted(set(float(d) for d in degrees))
        return cls(tuple(Angle.from_degrees(d) for d in unique))

    @classmethod
    def default(cls) -> "AngleGrid":
        """The paper's five-angle uniform grid."""
        return cls.from_degrees(DEFAULT_ANGLE_DEGREES)

    @classmethod
    def uniform(cls, count: int) -> "AngleGrid":
        """``count`` angles spread uniformly over ``[0, 90]`` degrees (count >= 2)."""
        if count < 2:
            raise ValueError("a uniform grid needs at least two angles")
        step = 90.0 / (count - 1)
        return cls.from_degrees(step * i for i in range(count))

    @classmethod
    def from_query_history(cls, query_degrees: Sequence[float], count: int) -> "AngleGrid":
        """Grid adapted to an observed distribution of query angles.

        The paper suggests sampling indexed angles from the query-angle history
        when one is available.  We place the interior angles at evenly spaced
        quantiles of the observed distribution and always keep 0 and 90 degrees
        as the outer anchors so every query stays bracketed.
        """
        if count < 2:
            raise ValueError("a grid needs at least two angles")
        history = sorted(float(d) for d in query_degrees)
        if not history:
            return cls.uniform(count)
        interior = count - 2
        chosen: List[float] = [0.0, 90.0]
        for i in range(interior):
            quantile = (i + 1) / (interior + 1)
            position = quantile * (len(history) - 1)
            low = int(math.floor(position))
            high = min(low + 1, len(history) - 1)
            fraction = position - low
            chosen.append(history[low] * (1 - fraction) + history[high] * fraction)
        return cls.from_degrees(chosen)

    def refined(self, factor: int) -> "AngleGrid":
        """A grid with every bracket subdivided into ``factor`` arcs.

        See :func:`refine_angles` — the original angles are preserved, so any
        bracket of this grid nests inside exactly one bracket of the original.
        """
        return AngleGrid(refine_angles(self.angles, factor))

    # ------------------------------------------------------------------ lookup
    def bracket(self, query_angle: Angle) -> Tuple[Angle, Angle]:
        """The two consecutive indexed angles bracketing ``query_angle``.

        Returns ``(angle, angle)`` when the query angle coincides with an indexed
        one.  Raises ``ValueError`` if the query angle falls outside the grid
        (impossible for grids spanning the full quadrant).  Lookups are memoized
        per ``(cos, sin)`` so repeated queries at the same angle cost one dict
        probe instead of a trig scan.
        """
        key = (query_angle.cos, query_angle.sin)
        cached = self._bracket_cache.get(key)
        if cached is not None:
            return cached
        target = query_angle.radians
        lower: Optional[Angle] = None
        upper: Optional[Angle] = None
        for angle, radians in zip(self.angles, self._radians):
            if abs(radians - target) <= 1e-12:
                lower = upper = angle
                break
            if radians < target:
                lower = angle
            elif upper is None:
                upper = angle
        if lower is None or upper is None:
            raise ValueError(
                f"query angle {query_angle.degrees:.3f} deg is not covered by the grid"
            )
        if len(self._bracket_cache) >= 1024:
            self._bracket_cache.clear()
        self._bracket_cache[key] = (lower, upper)
        return lower, upper

    def degrees(self) -> Tuple[float, ...]:
        """The indexed angles in degrees (for reporting)."""
        return tuple(angle.degrees for angle in self.angles)
