"""LSM-structured session maintenance (DESIGN.md section 11).

The in-place :class:`~repro.core.batch.QuerySession` patches one flattened
world per update and pays a stop-the-world reflatten once garbage crosses a
threshold — O(n) splices on the write path and an O(n log n) pause that will
not survive sustained write traffic.  This module restructures maintenance as
a small log-structured merge hierarchy:

* **Delta.**  A bounded mutable :class:`DeltaState` absorbs every insert as a
  plain array append (no tree, no sorted-column splices) and every delete of a
  not-yet-flushed row as a mask clear.  Published copy-on-write, so readers
  pin immutable values exactly as before.
* **Levels.**  Immutable :class:`Level`\\ s each wrap one frozen
  :class:`~repro.core.batch.SessionState` — today's flattened execution state,
  mmap-able through the PR 5 snapshot format.  A delete of a level-resident
  row copies only that level's validity mask.
* **Compaction.**  :meth:`LsmSession.flush` folds the delta into a fresh
  level; :meth:`LsmSession.compact` merges levels.  Both build aside and
  publish through the session's :class:`~repro.core.epoch.EpochManager`, so a
  pinned reader never observes a half-compacted world — the same protocol as
  ``rebalance()``.  The default policy is size-tiered (merge a tier once it
  holds ``fanout`` levels); the legacy 25 %-garbage reflatten survives as the
  garbage-collection trigger, and ``compaction="legacy"`` on the aggregator
  bypasses this module entirely.

**Exactness.**  Scores depend only on coordinates, so a row scores
bit-identically no matter which level holds it.  Queries seed one global
k-th-best lower bound from samples pooled across every source (the cross-shard
pattern of :mod:`repro.core.sharding`), run the unchanged filter-and-verify
kernels per level under that bound, brute-force the delta in each query's own
term order, and merge under the ``(-score, row_id)`` tie-break — bit-identical
to ``SequentialScan`` by the same argument that makes sharded serving exact.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.core.batch import (
    BatchQuerySpec,
    QuerySession,
    SessionState,
    _FlatTree,
    _prune_bound,
    select_topk,
)
from repro.core.deadline import Deadline
from repro.core.results import BatchResult, Match, TopKResult
from repro.core.topk import TopKIndex

__all__ = [
    "COMPACTION_MODES",
    "DeltaState",
    "Level",
    "LsmWorld",
    "LsmSession",
    "validate_compaction",
]

#: Accepted values of the aggregator's ``compaction`` knob.
COMPACTION_MODES = ("legacy", "size_tiered")

#: Delta occupancy (live rows) that schedules a flush.
_FLUSH_ROWS = 256

#: Levels per size tier before the tier is merged.
_FANOUT = 4

#: Inline-flush relief valve: if the background compactor falls this far
#: behind, the writer flushes synchronously to bound delta memory.
_HARD_CAP_FACTOR = 8

_FP_FLUSH = faults.declare_fault_point(
    "compact.flush",
    "LSM delta flush: folding the mutable delta into a fresh immutable level",
)
_FP_MERGE = faults.declare_fault_point(
    "compact.merge",
    "LSM level merge: building a merged level aside before the epoch flip",
)


def validate_compaction(compaction: str) -> str:
    """Validate and return the compaction mode."""
    if compaction not in COMPACTION_MODES:
        raise ValueError(
            f"unknown compaction mode {compaction!r}; use one of {COMPACTION_MODES}"
        )
    return compaction


def _locate_live(sorted_rows, row_order, live, ids):
    """Positions of ``ids`` where present *and* live, else -1 (vectorized)."""
    out = np.full(len(ids), -1, dtype=np.int64)
    if len(sorted_rows) == 0 or len(ids) == 0:
        return out
    at = np.searchsorted(sorted_rows, ids)
    clipped = np.minimum(at, len(sorted_rows) - 1)
    found = sorted_rows[clipped] == ids
    positions = row_order[clipped[found]]
    alive = live[positions]
    hits = np.flatnonzero(found)
    out[hits[alive]] = positions[alive]
    return out


class DeltaState:
    """One immutable published value of the mutable delta.

    Row-major append arrays plus a validity mask; the per-dimension column
    cache lets the shared scoring kernels (:meth:`QuerySession._score_one`,
    ``_score_block``) read a delta exactly like a
    :class:`~repro.core.batch.SessionState`.  ``num_live`` counts rows that
    have not been deleted again while still delta-resident — a
    delta-absorbed delete simply drops out of the live count instead of
    being double-counted as level garbage.
    """

    __slots__ = (
        "rows",
        "matrix",
        "live",
        "num_live",
        "sorted_rows",
        "row_order",
        "columns_by_dim",
    )

    def __init__(self, rows, matrix, live, num_live, sorted_rows, row_order, columns_by_dim):
        self.rows = rows
        self.matrix = matrix
        self.live = live
        self.num_live = num_live
        self.sorted_rows = sorted_rows
        self.row_order = row_order
        self.columns_by_dim = columns_by_dim

    @classmethod
    def empty(cls, num_dims: int, scored_dims) -> "DeltaState":
        return cls(
            rows=np.empty(0, dtype=np.int64),
            matrix=np.empty((0, num_dims), dtype=float),
            live=np.empty(0, dtype=bool),
            num_live=0,
            sorted_rows=np.empty(0, dtype=np.int64),
            row_order=np.empty(0, dtype=np.int64),
            columns_by_dim={dim: np.empty(0, dtype=float) for dim in scored_dims},
        )

    def with_inserts(self, row_ids: np.ndarray, matrix: np.ndarray) -> "DeltaState":
        rows = np.concatenate([self.rows, row_ids])
        full = np.vstack([self.matrix, matrix]) if len(self.matrix) else matrix.copy()
        live = np.concatenate([self.live, np.ones(len(row_ids), dtype=bool)])
        columns = {
            dim: np.concatenate([values, np.ascontiguousarray(matrix[:, dim])])
            for dim, values in self.columns_by_dim.items()
        }
        order = np.argsort(rows, kind="stable")
        return DeltaState(
            rows=rows,
            matrix=full,
            live=live,
            num_live=self.num_live + len(row_ids),
            sorted_rows=rows[order],
            row_order=order,
            columns_by_dim=columns,
        )

    def with_deletes(self, positions: np.ndarray) -> "DeltaState":
        live = self.live.copy()
        live[positions] = False
        return DeltaState(
            rows=self.rows,
            matrix=self.matrix,
            live=live,
            num_live=self.num_live - len(positions),
            sorted_rows=self.sorted_rows,
            row_order=self.row_order,
            columns_by_dim=self.columns_by_dim,
        )

    def locate_live(self, ids: np.ndarray) -> np.ndarray:
        """Delta positions of ``ids`` where present and live, else -1."""
        return _locate_live(self.sorted_rows, self.row_order, self.live, ids)

    def live_positions(self) -> np.ndarray:
        return np.flatnonzero(self.live)

    @property
    def dead(self) -> int:
        return len(self.rows) - self.num_live


class Level:
    """One immutable level: a frozen execution state tagged with its seq.

    A delete of a level-resident row replaces the level with a successor
    sharing every array but a copied validity mask, so the ``seq`` names the
    level's row population across those mask-only successors — which is what
    lets a compactor reconcile tombstones that landed mid-merge, and what the
    WAL's compact records refer to on replay.
    """

    __slots__ = ("seq", "state")

    def __init__(self, seq: int, state: SessionState) -> None:
        self.seq = seq
        self.state = state

    def with_tombstones(self, positions: np.ndarray) -> "Level":
        state = self.state
        live = state.live.copy()
        live[positions] = False
        successor = SessionState(
            rows=state.rows,
            matrix=state.matrix,
            live=live,
            num_live=state.num_live - len(positions),
            row_order=state.row_order,
            sorted_rows=state.sorted_rows,
            columns_by_dim=state.columns_by_dim,
            pairs=state.pairs,
            pair_leaf_of_position=state.pair_leaf_of_position,
            col_values=state.col_values,
            col_positions=state.col_positions,
            appended=state.appended,
            tombstoned=state.tombstoned + len(positions),
        )
        return Level(self.seq, successor)

    def locate_live(self, ids: np.ndarray) -> np.ndarray:
        state = self.state
        return _locate_live(state.sorted_rows, state.row_order, state.live, ids)


class LsmWorld:
    """One published epoch of an LSM session: immutable levels plus a delta.

    Exposes the aggregate surface the epoch machinery and read views expect
    from an execution state (``num_live``, ``garbage_fraction``,
    ``live_row_ids``/``live_matrix``, ``appended``/``tombstoned``), so
    :class:`~repro.core.batch.SessionSnapshot` pins a world exactly like a
    flat state.

    ``garbage_fraction`` counts the pending delta (rows not yet folded into a
    level) plus level-resident tombstones.  A delta-absorbed delete removes
    its row from the pending count and adds **nothing** to the tombstone
    count — the row never reached a level, so there is no level garbage to
    collect for it (the in-place session double-counts this case: one
    ``appended`` plus one ``tombstoned`` for a net-zero row).
    """

    __slots__ = ("levels", "delta")

    def __init__(self, levels: Tuple[Level, ...], delta: DeltaState) -> None:
        self.levels = tuple(levels)
        self.delta = delta

    # ------------------------------------------------------------- aggregates
    @property
    def num_live(self) -> int:
        return sum(level.state.num_live for level in self.levels) + self.delta.num_live

    @property
    def appended(self) -> int:
        """Rows pending in the delta (the flush backlog)."""
        return self.delta.num_live

    @property
    def tombstoned(self) -> int:
        """Dead rows still occupying level arrays (the merge backlog)."""
        return sum(level.state.tombstoned for level in self.levels)

    def garbage_fraction(self) -> float:
        return (self.appended + self.tombstoned) / max(self.num_live, 1)

    def live_row_ids(self) -> np.ndarray:
        parts = [level.state.live_row_ids() for level in self.levels]
        parts.append(self.delta.rows[self.delta.live])
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def live_matrix(self) -> np.ndarray:
        parts = [level.state.live_matrix() for level in self.levels]
        parts.append(self.delta.matrix[self.delta.live])
        return np.vstack(parts)

    def level(self, seq: int) -> Optional[Level]:
        for candidate in self.levels:
            if candidate.seq == seq:
                return candidate
        return None

    def describe(self) -> Dict[str, object]:
        """Structure summary (tests and ``maintenance_stats`` read this)."""
        return {
            "levels": [
                {
                    "seq": level.seq,
                    "rows": len(level.state.rows),
                    "live": level.state.num_live,
                    "tombstoned": level.state.tombstoned,
                }
                for level in self.levels
            ],
            "delta_rows": len(self.delta.rows),
            "delta_live": self.delta.num_live,
        }


class LsmSession(QuerySession):
    """A :class:`QuerySession` whose epochs hold layered :class:`LsmWorld`\\ s.

    The read surface (``run``/``snapshot``/``upper_bounds``/``sample_scores``)
    and the aggregator patch surface (``apply_*``) are unchanged; only the
    shape of the published state differs.  Writers append to the delta or
    copy one validity mask — never a sorted-column splice, never a reflatten.
    Maintenance happens through :meth:`flush`/:meth:`compact`, driven either
    by the owning aggregator's post-write trigger (inline or on a short-lived
    background thread) or explicitly by a durability wrapper that journals
    each structure op (``auto_compaction=False``).

    Requires ``concurrency="snapshot"``: the LSM write path is defined by
    copy-on-write epoch publication.
    """

    def __init__(
        self,
        aggregator,
        seed_pool: Optional[int] = None,
        reflatten_threshold: Optional[float] = None,
        flush_rows: int = _FLUSH_ROWS,
        fanout: int = _FANOUT,
        background: bool = True,
    ) -> None:
        if getattr(aggregator, "concurrency", "snapshot") != "snapshot":
            raise ValueError("LSM sessions require concurrency='snapshot'")
        if flush_rows < 1:
            raise ValueError("flush_rows must be >= 1")
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.flush_rows = int(flush_rows)
        self.fanout = int(fanout)
        self.background = bool(background)
        #: False once a durability wrapper takes over maintenance scheduling
        #: (it must journal every flush/compact in apply order).
        self.auto_compaction = True
        self.flushes = 0
        self.compactions = 0
        #: Deletes absorbed by the delta (satellite regression: these must not
        #: inflate the garbage fraction of any level).
        self.delta_absorbed_deletes = 0
        self._next_seq = 1
        self._maintain_lock = threading.Lock()
        self._compactor: Optional[threading.Thread] = None
        self._maintenance_error: Optional[BaseException] = None
        kwargs = {}
        if seed_pool is not None:
            kwargs["seed_pool"] = seed_pool
        if reflatten_threshold is not None:
            kwargs["reflatten_threshold"] = reflatten_threshold
        super().__init__(aggregator, **kwargs)

    # ------------------------------------------------------------------ state
    @property
    def _world(self) -> LsmWorld:
        return self.epochs.current_state()

    def _claim_seq(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _build(self) -> None:
        """(Re)build as a single-level world over the aggregator's live rows."""
        state = self._flatten_state()
        scored = set(self._aggregator.repulsive) | set(self._aggregator.attractive)
        world = LsmWorld(
            levels=(Level(self._claim_seq(), state),),
            delta=DeltaState.empty(self._aggregator._num_dims, scored),
        )
        self.epochs.publish(world)

    def _state_from_rows(self, rows: np.ndarray, matrix: np.ndarray) -> SessionState:
        """Build a frozen execution state over exactly ``rows``/``matrix``.

        The projection trees and sorted columns are built fresh from the given
        coordinates — never from the aggregator's mutable structures — so a
        compactor may call this without any lock held.
        """
        aggregator = self._aggregator
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        matrix = np.ascontiguousarray(matrix, dtype=float)
        order = np.argsort(rows, kind="stable")
        scored_dims = set(aggregator.repulsive) | set(aggregator.attractive)
        state = SessionState(
            rows=rows,
            matrix=matrix,
            live=np.ones(len(rows), dtype=bool),
            num_live=len(rows),
            row_order=order,
            sorted_rows=rows[order],
            columns_by_dim={
                dim: np.ascontiguousarray(matrix[:, dim]) for dim in scored_dims
            },
            pairs=[],
            pair_leaf_of_position=[],
            col_values={},
            col_positions={},
        )
        row_list = [int(r) for r in rows]
        for rep_dim, att_dim in aggregator.pairing.pairs:
            index = TopKIndex(
                x=matrix[:, att_dim],
                y=matrix[:, rep_dim],
                angle_grid=aggregator.angle_grid,
                branching=aggregator.branching,
                leaf_capacity=aggregator.leaf_capacity,
                row_ids=row_list,
            )
            flat = _FlatTree(index.tree)
            positions = state.positions_of(flat.rows)
            state.pairs.append((rep_dim, att_dim, flat))
            leaf_of_position = np.empty(len(rows), dtype=np.int64)
            leaf_of_position[positions] = flat.leaf_of_pos
            state.pair_leaf_of_position.append(leaf_of_position)
        for dim in aggregator._column_dims:
            values = np.ascontiguousarray(matrix[:, dim])
            value_order = np.argsort(values, kind="stable")
            state.col_values[dim] = values[value_order]
            state.col_positions[dim] = value_order.astype(np.int64)
        return state

    # ------------------------------------------------------------ write path
    def apply_bulk_insert(self, row_ids, matrix) -> None:
        """Absorb inserted rows into the delta (O(delta), no tree surgery)."""
        self._generation = self._aggregator.mutations
        row_ids = np.asarray(row_ids, dtype=np.int64)
        matrix = np.asarray(matrix, dtype=float)
        if len(row_ids) == 0:
            return
        world = self._world
        successor = LsmWorld(world.levels, world.delta.with_inserts(row_ids, matrix))
        self.epochs.publish(successor)
        self.patched_inserts += len(row_ids)

    def apply_bulk_delete(self, row_ids) -> None:
        """Clear delta bits or copy the owning level's validity mask."""
        self._generation = self._aggregator.mutations
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return
        world = self._world
        delta = world.delta
        at = delta.locate_live(row_ids)
        in_delta = at >= 0
        absorbed = int(in_delta.sum())
        if absorbed:
            delta = delta.with_deletes(at[in_delta])
        remaining = row_ids[~in_delta]
        levels = list(world.levels)
        if len(remaining):
            resolved = np.zeros(len(remaining), dtype=bool)
            for i, level in enumerate(levels):
                positions = level.locate_live(remaining)
                hit = positions >= 0
                if hit.any():
                    levels[i] = level.with_tombstones(positions[hit])
                    resolved |= hit
                if resolved.all():
                    break
            if not resolved.all():
                missing = remaining[~resolved].tolist()
                raise KeyError(f"row ids {missing} not present in any level or delta")
        self.epochs.publish(LsmWorld(tuple(levels), delta))
        # Counters only move once the successor world is actually published;
        # a KeyError above must leave every stat exactly where it was.
        self.delta_absorbed_deletes += absorbed
        self.patched_deletes += len(row_ids)

    # ------------------------------------------------------------ maintenance
    def _flush_due(self, world: LsmWorld) -> bool:
        delta = world.delta
        return delta.num_live >= self.flush_rows or delta.dead >= self.flush_rows

    def _pick_tier_merge(self, world: LsmWorld) -> Optional[Tuple[int, ...]]:
        """Size-tiered pick: the smallest tier holding >= fanout levels."""
        tiers: Dict[int, List[Level]] = {}
        for level in world.levels:
            size = max(level.state.num_live, 1)
            tier = int(math.log(size, self.fanout)) if size > 1 else 0
            tiers.setdefault(tier, []).append(level)
        for tier in sorted(tiers):
            members = tiers[tier]
            if len(members) >= self.fanout:
                return tuple(level.seq for level in members)
        return None

    def _plan_maintenance(self, world: LsmWorld):
        """The next due structure op, or None: flush first, then merges."""
        if self._flush_due(world):
            return ("flush",)
        merge = self._pick_tier_merge(world)
        if merge is not None:
            return ("compact", merge)
        # Garbage collection: the legacy reflatten threshold, now one
        # compaction trigger among several.  Only level tombstones count —
        # the delta backlog is the flush trigger's business, and a
        # delta-absorbed delete contributes to neither (its row never
        # became level garbage).
        tombstoned = world.tombstoned
        if tombstoned > 0 and tombstoned > self.reflatten_threshold * max(
            world.num_live, 1
        ):
            return ("compact", tuple(level.seq for level in world.levels))
        return None

    def maybe_maintain(self) -> None:
        """Post-write trigger (called by the aggregator under its write lock).

        Background mode hands the work to a short-lived compactor thread and
        only flushes inline when the delta outruns the hard cap; inline mode
        performs the due ops synchronously.  No-op once a durability wrapper
        has claimed scheduling (``auto_compaction=False``).
        """
        error = self._maintenance_error
        if error is not None:
            self._maintenance_error = None
            raise RuntimeError("background LSM maintenance failed") from error
        if not self.auto_compaction:
            return
        world = self._world
        if self._plan_maintenance(world) is None:
            return
        if not self.background:
            self.maintain()
            return
        compactor = self._compactor
        if compactor is None or not compactor.is_alive():
            compactor = threading.Thread(
                target=self._background_maintain, name="lsm-compactor", daemon=True
            )
            self._compactor = compactor
            compactor.start()
        elif world.delta.num_live >= _HARD_CAP_FACTOR * self.flush_rows:
            # The compactor is behind; bound delta memory with one inline
            # flush (cheap: O(delta)) while merges continue in background.
            self._flush_locked()

    def _background_maintain(self) -> None:
        try:
            self.maintain()
        except BaseException as error:  # surfaced on the next write
            self._maintenance_error = error

    def maintain(self) -> List[Tuple]:
        """Perform every due structure op now; returns them in apply order.

        Each entry is ``("flush",)`` or ``("compact", seqs)`` — the shape a
        durability wrapper journals as WAL records.  Serialized against
        concurrent maintenance, so explicit calls and the background thread
        never interleave half-built merges.
        """
        ops: List[Tuple] = []
        with self._maintain_lock:
            while True:
                if self._aggregator.closed:
                    break
                plan = self._plan_maintenance(self._world)
                if plan is None:
                    break
                if plan[0] == "flush":
                    if not self.flush():
                        break
                    ops.append(("flush",))
                else:
                    merged = self.compact(plan[1])
                    if merged is None:
                        break
                    ops.append(("compact", plan[1]))
        return ops

    def flush(self) -> bool:
        """Fold the delta into a fresh immutable level (epoch-published).

        Returns False when the delta held no rows (nothing published).  Cost
        is O(delta log delta) — building the per-pair projection trees over
        the delta rows only — under the aggregator write lock, which bounds
        writer stalls by the flush threshold instead of the dataset size.
        """
        with self._aggregator.write_lock:
            return self._flush_locked()

    def _flush_locked(self) -> bool:
        if self._aggregator.closed:
            return False
        world = self._world
        delta = world.delta
        if len(delta.rows) == 0:
            return False
        faults.fire(_FP_FLUSH)
        scored = set(self._aggregator.repulsive) | set(self._aggregator.attractive)
        fresh = DeltaState.empty(self._aggregator._num_dims, scored)
        if delta.num_live == 0:
            # Every delta row died before flushing: just drop the arrays.
            self.epochs.publish(LsmWorld(world.levels, fresh))
            self.flushes += 1
            return True
        alive = delta.live_positions()
        state = self._state_from_rows(delta.rows[alive], delta.matrix[alive])
        level = Level(self._claim_seq(), state)
        self.epochs.publish(LsmWorld(world.levels + (level,), fresh))
        self.flushes += 1
        return True

    def compact(self, seqs: Optional[Sequence[int]] = None) -> Optional[Tuple[int, ...]]:
        """Merge the named levels (default: all) into one, aside then flipped.

        The merged state is built from the input levels' immutable arrays
        without holding the write lock — readers and writers keep running.
        The publish step then reconciles tombstones that landed on the inputs
        mid-merge (deletes only clear validity bits, so the merged rows are a
        superset of the survivors) and flips the world atomically.  Returns
        the input seqs actually merged, or None when fewer than two of them
        exist (with no tombstones to collect there is nothing to do).
        """
        with self._aggregator.write_lock:
            if self._aggregator.closed:
                return None
            world = self._world
            if seqs is None:
                seqs = tuple(level.seq for level in world.levels)
            wanted = tuple(int(seq) for seq in seqs)
            inputs = [level for level in world.levels if level.seq in wanted]
            if not inputs:
                return None
            if len(inputs) == 1 and inputs[0].state.tombstoned == 0:
                return None
        faults.fire(_FP_MERGE)
        # Build aside from the captured immutable inputs (no lock held).
        live_rows = np.concatenate([level.state.live_row_ids() for level in inputs])
        live_matrix = np.vstack([level.state.live_matrix() for level in inputs])
        merged = self._state_from_rows(live_rows, live_matrix) if len(live_rows) else None
        with self._aggregator.write_lock:
            if self._aggregator.closed:
                return None
            current = self._world
            survivors = tuple(
                level for level in current.levels if level.seq not in wanted
            )
            if merged is not None:
                # Reconcile deletes that landed on the inputs mid-merge: a
                # level's seq survives mask-only successors, so rows live at
                # capture but dead now are exactly the set to re-tombstone.
                now_live_parts = [
                    level.state.live_row_ids()
                    for level in current.levels
                    if level.seq in wanted
                ]
                now_live = (
                    np.concatenate(now_live_parts)
                    if now_live_parts
                    else np.empty(0, dtype=np.int64)
                )
                dead_since = np.setdiff1d(live_rows, now_live, assume_unique=True)
                level = Level(self._claim_seq(), merged)
                if len(dead_since):
                    positions = level.locate_live(dead_since)
                    level = level.with_tombstones(positions[positions >= 0])
                if level.state.num_live > 0:
                    survivors = survivors + (level,)
            self.epochs.publish(LsmWorld(survivors, current.delta))
            self.compactions += 1
        return wanted

    def quiesce(self) -> None:
        """Wait for in-flight background maintenance; re-raise its failure.

        Call without holding the aggregator write lock (the compactor needs
        it to publish).
        """
        compactor = self._compactor
        if compactor is not None and compactor is not threading.current_thread():
            compactor.join()
        error = self._maintenance_error
        if error is not None:
            self._maintenance_error = None
            raise RuntimeError("background LSM maintenance failed") from error

    # ------------------------------------------------------------------ stats
    def maintenance_stats(self) -> Dict[str, int]:
        stats = super().maintenance_stats()
        world = self._world
        stats.update(
            {
                "levels": len(world.levels),
                "delta_rows": len(world.delta.rows),
                "delta_live": world.delta.num_live,
                "flushes": self.flushes,
                "compactions": self.compactions,
                "delta_absorbed_deletes": self.delta_absorbed_deletes,
            }
        )
        return stats

    def structure(self) -> Dict[str, object]:
        """The current world's level/delta layout (tests and tools)."""
        return self._world.describe()

    # ------------------------------------------------------------- read path
    def _sources(self, world: LsmWorld) -> List[SessionState]:
        return [level.state for level in world.levels if level.state.num_live > 0]

    def _data_magnitude(self, state) -> float:
        if isinstance(state, SessionState) or isinstance(state, DeltaState):
            return super()._data_magnitude(state)
        world = state
        magnitude = 0.0
        for source in self._sources(world):
            magnitude = max(magnitude, super()._data_magnitude(source))
        if world.delta.num_live:
            magnitude = max(magnitude, super()._data_magnitude(world.delta))
        return magnitude

    def _sample_scores(self, state, spec: BatchQuerySpec, pool: int) -> np.ndarray:
        if isinstance(state, SessionState) or isinstance(state, DeltaState):
            return super()._sample_scores(state, spec, pool)
        world = state
        parts = [
            super(LsmSession, self)._sample_scores(source, spec, pool)
            for source in self._sources(world)
        ]
        if world.delta.num_live:
            parts.append(super()._sample_scores(world.delta, spec, pool))
        if not parts:
            return np.empty((len(spec), 0))
        return np.hstack(parts)

    def _upper_bounds(self, state, spec: BatchQuerySpec) -> np.ndarray:
        if isinstance(state, SessionState):
            return super()._upper_bounds(state, spec)
        world = state
        bounds = np.full(len(spec), -math.inf)
        for source in self._sources(world):
            bounds = np.maximum(bounds, super()._upper_bounds(source, spec))
        if world.delta.num_live:
            bounds = np.maximum(bounds, self._delta_upper_bounds(world.delta, spec))
        return bounds

    def _delta_upper_bounds(self, delta: DeltaState, spec: BatchQuerySpec) -> np.ndarray:
        """Admissible per-query score bound over the delta's live rows.

        Per-dimension extremes, like the sorted-column bounds of the flat
        kernels: a repulsive dimension contributes at most its farthest
        distance, an attractive one at least its nearest.  Ulp-level term
        order differences are absorbed by the threshold-side slack
        (:func:`_prune_bound`), the same contract every other bound obeys.
        """
        aggregator = self._aggregator
        m = len(spec)
        alive = delta.live_positions()
        if len(alive) == 0:
            return np.full(m, -math.inf)
        bounds = np.zeros(m)
        for i, dim in enumerate(aggregator.repulsive):
            values = delta.columns_by_dim[dim][alive]
            targets = spec.points[:, dim]
            farthest = np.maximum(
                np.abs(values.min() - targets), np.abs(values.max() - targets)
            )
            bounds += spec.alpha[:, i] * farthest
        for i, dim in enumerate(aggregator.attractive):
            values = np.sort(delta.columns_by_dim[dim][alive])
            targets = spec.points[:, dim]
            at = np.searchsorted(values, targets)
            nearest = np.full(m, np.inf)
            right = at < len(values)
            nearest[right] = np.abs(
                values[np.minimum(at[right], len(values) - 1)] - targets[right]
            )
            left = at > 0
            nearest[left] = np.minimum(
                nearest[left], np.abs(values[at[left] - 1] - targets[left])
            )
            bounds -= spec.beta[:, i] * nearest
        return bounds

    def _delta_topk(
        self, delta: DeltaState, spec: BatchQuerySpec, ks_eff: np.ndarray, label: str
    ) -> List[TopKResult]:
        """Exact brute-force top-k over the delta, per query term order."""
        alive = delta.live_positions()
        results = []
        for j in range(len(spec)):
            scores = self._score_one(delta, alive, spec, j)
            top = select_topk(scores, delta.rows[alive], int(ks_eff[j]))
            matches = [
                Match(
                    row_id=int(delta.rows[alive[i]]),
                    score=float(scores[i]),
                    point=tuple(delta.matrix[alive[i]]),
                )
                for i in top
            ]
            results.append(
                TopKResult(
                    matches=matches,
                    candidates_examined=len(alive),
                    full_evaluations=len(alive),
                    algorithm=label,
                )
            )
        return results

    def _execute(
        self,
        state,
        spec: BatchQuerySpec,
        lower_bounds,
        _label: str,
        deadline: Optional[Deadline] = None,
    ) -> BatchResult:
        if isinstance(state, SessionState):
            return super()._execute(state, spec, lower_bounds, _label, deadline=deadline)
        world = state
        # Single-level worlds with an empty delta take the flat kernels
        # verbatim — the no-write serving path is byte-for-byte the PR 1-2
        # pipeline, merged paths only pay for the layers they actually have.
        if len(world.levels) == 1 and len(world.delta.rows) == 0:
            return super()._execute(
                world.levels[0].state, spec, lower_bounds, _label, deadline=deadline
            )
        m = len(spec)
        if m == 0:
            return BatchResult(results=[], algorithm=_label)
        total_live = world.num_live
        if total_live == 0:
            return BatchResult(
                results=[TopKResult(matches=[], algorithm=_label) for _ in range(m)],
                algorithm=_label,
            )
        if deadline is not None:
            deadline.check()
        ks_eff = np.minimum(spec.ks, total_live)
        sources = self._sources(world)
        delta_live = world.delta.num_live

        # One global k-th-best lower bound, seeded from samples pooled across
        # every source — the cross-shard seeding pattern, applied per level.
        magnitude = self._data_magnitude(world)
        for dim in set(self._aggregator.repulsive) | set(self._aggregator.attractive):
            magnitude = max(magnitude, float(np.abs(spec.points[:, dim]).max()))
        weight_scale = spec.alpha.sum(axis=1) + spec.beta.sum(axis=1)
        pooled = self._sample_scores(world, spec, self._seed_pool)
        pool = pooled.shape[1]
        kth_lower = np.full(m, -math.inf)
        for j in range(m):
            k_j = int(ks_eff[j])
            if pool >= k_j:
                kth_lower[j] = np.partition(pooled[j], pool - k_j)[pool - k_j]
        floor = (
            np.asarray(lower_bounds, dtype=float)
            if lower_bounds is not None
            else np.full(m, -math.inf)
        )

        # Bound-ordered source visitation — the cross-shard serving pattern
        # applied *within* the layered world.  Each query walks the sources
        # (levels, then the delta as a pseudo-source) in decreasing order of
        # their admissible upper bounds; after every round the merged pools
        # re-tighten the global k-th lower bound, so later sources run with a
        # harder threshold or get skipped outright when their bound cannot
        # reach it.  A skipped source only sheds rows scoring strictly below
        # ``kth - slack`` — rows that can never enter the global top k — so
        # the merge stays bit-identical to visiting everything.
        probes: List[Tuple[str, object]] = [("level", source) for source in sources]
        if delta_live:
            probes.append(("delta", world.delta))
        num_probes = len(probes)
        ubs = np.vstack(
            [
                super(LsmSession, self)._upper_bounds(source, spec)
                if kind == "level"
                else self._delta_upper_bounds(source, spec)
                for kind, source in probes
            ]
        )
        visit = np.argsort(-ubs, axis=0, kind="stable")
        pools: List[List[Match]] = [[] for _ in range(m)]
        examined = np.zeros(m, dtype=np.int64)
        for round_index in range(num_probes):
            if deadline is not None:
                deadline.check()
            threshold = np.maximum(
                _prune_bound(kth_lower, weight_scale, magnitude), floor
            )
            probe_of = visit[round_index]
            for p in range(num_probes):
                members = np.flatnonzero((probe_of == p) & (ubs[p] >= threshold))
                if len(members) == 0:
                    continue
                kind, source = probes[p]
                sub_spec = spec.subset(members)
                if kind == "level":
                    sub_results = super()._execute(
                        source, sub_spec, threshold[members], _label,
                        deadline=deadline,
                    ).results
                else:
                    sub_results = self._delta_topk(
                        source, sub_spec, ks_eff[members], _label
                    )
                for i, j in enumerate(members):
                    result = sub_results[i]
                    pools[int(j)].extend(result.matches)
                    examined[int(j)] += result.candidates_examined
            for j in range(m):
                pool = pools[j]
                k_j = int(ks_eff[j])
                if len(pool) >= k_j:
                    pool.sort(key=lambda match: (-match.score, match.row_id))
                    del pool[k_j:]
                    kth_lower[j] = max(kth_lower[j], pool[-1].score)

        results: List[TopKResult] = []
        for j in range(m):
            pool = pools[j]
            pool.sort(key=lambda match: (-match.score, match.row_id))
            del pool[int(ks_eff[j]) :]
            results.append(
                TopKResult(
                    matches=pool,
                    candidates_examined=int(examined[j]),
                    full_evaluations=int(examined[j]),
                    algorithm=_label,
                )
            )
        return BatchResult(results=results, algorithm=_label)
