"""Balanced x-ordered tree with per-angle projection bounds (Section 4).

The *projection tree* is the index structure behind top-k SD-Queries with runtime
``k`` and runtime weighting parameters.  It is a single-dimension KD/B+-style tree
over the x (attractive) coordinate with branching factor ``b``; every node stores,
for each indexed angle, bounds on the four projection intercepts of the points in
its subtree:

* ``max w_a`` — the highest right-lower projection (``w_a = cos*y + sin*x``),
* ``min w_a`` — the lowest left-upper projection,
* ``max w_b`` — the highest left-lower projection (``w_b = cos*y - sin*x``),
* ``min w_b`` — the lowest right-upper projection.

Given a query axis ``x_q``, the points whose left projections cross the axis are
exactly those with ``x >= x_q`` and the points whose right projections cross it
are those with ``x <= x_q`` (the paper's "separating path").  The tree therefore
supports four *projection streams*, each yielding points of one eligible side in
projection-intercept order via a best-first traversal guided by the node bounds.
For a query angle that is not indexed, admissible bounds are derived from the two
bracketing indexed angles because the intercepts are linear in
``(cos(theta), sin(theta))`` (see :meth:`repro.core.geometry.Angle.interpolation_coefficients`).

The paper mutates bounds along the separating path and descends by matching
values (Algorithms 2-3); the best-first traversal used here visits the same nodes
with the same asymptotic cost but requires no state restoration between queries
— see DESIGN.md for the full discussion of this refinement.

Updates: inserts descend by x, append to a leaf and push the new intercepts up
the path, splitting nodes that grow too large; deletes tombstone the row (bounds
stay admissible, merely looser).  The tree tracks how much garbage and imbalance
has accumulated and reports when a rebuild is worthwhile, mirroring the
rebuild-threshold policy of Section 4.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Angle
from repro.core.results import IndexStats

__all__ = ["ProjectionTree", "ProjectionStream", "StreamSpec"]


# Bounds are stored per angle as a 4-tuple in this order.
_MAX_A, _MIN_A, _MAX_B, _MIN_B = range(4)

_EMPTY_BOUNDS = (-math.inf, math.inf, -math.inf, math.inf)


def _merge_bounds(left: Tuple[float, float, float, float],
                  right: Tuple[float, float, float, float]) -> Tuple[float, float, float, float]:
    return (
        max(left[_MAX_A], right[_MAX_A]),
        min(left[_MIN_A], right[_MIN_A]),
        max(left[_MAX_B], right[_MAX_B]),
        min(left[_MIN_B], right[_MIN_B]),
    )


class _Node:
    """Internal node: an ordered list of children covering contiguous x-ranges."""

    __slots__ = ("parent", "children", "min_x", "max_x", "bounds", "count")

    def __init__(self) -> None:
        self.parent: Optional["_Node"] = None
        self.children: List[object] = []
        self.min_x = math.inf
        self.max_x = -math.inf
        self.bounds: List[Tuple[float, float, float, float]] = []
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        return False


class _Leaf:
    """Leaf node: a slice of the bulk-loaded arrays plus individually added points."""

    __slots__ = ("parent", "start", "stop", "extra_rows", "extra_x", "extra_y",
                 "min_x", "max_x", "bounds", "count")

    def __init__(self, start: int, stop: int) -> None:
        self.parent: Optional[_Node] = None
        self.start = start
        self.stop = stop
        self.extra_rows: List[int] = []
        self.extra_x: List[float] = []
        self.extra_y: List[float] = []
        self.min_x = math.inf
        self.max_x = -math.inf
        self.bounds: List[Tuple[float, float, float, float]] = []
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        return True


class StreamSpec:
    """Which of the four projection streams to open (plain constants)."""

    LLP = "llp"  # points right of the axis, highest w_b first
    RLP = "rlp"  # points left of the axis, highest w_a first
    LUP = "lup"  # points right of the axis, lowest w_a first
    RUP = "rup"  # points left of the axis, lowest w_b first

    ALL = (LLP, RLP, LUP, RUP)

    #: (right_side, use_intercept_a, maximize) per stream.
    _CONFIG = {
        LLP: (True, False, True),
        RLP: (False, True, True),
        LUP: (True, True, False),
        RUP: (False, False, False),
    }

    @classmethod
    def config(cls, spec: str) -> Tuple[bool, bool, bool]:
        return cls._CONFIG[spec]


class ProjectionStream:
    """Best-first iterator over one projection type for one query.

    Yields ``(row_id, x, y, key)`` where ``key`` is the exact projection
    intercept of the point at the query angle.  ``head_key()`` returns an
    admissible bound on the key of the next yielded point without consuming it;
    the top-k merge uses it as the TA-style threshold.
    """

    def __init__(self, tree: "ProjectionTree", spec: str, query_x: float,
                 resolver: "_BoundResolver") -> None:
        self._tree = tree
        self._spec = spec
        self._query_x = float(query_x)
        self._resolver = resolver
        right_side, use_a, maximize = StreamSpec.config(spec)
        self._right_side = right_side
        self._use_a = use_a
        self._sign = -1.0 if maximize else 1.0  # heap is a min-heap on sign*key
        self._counter = itertools.count()
        self._heap: List[Tuple[float, int, bool, object]] = []
        self.nodes_visited = 0
        if tree._root is not None and tree.live_count > 0:
            self._push_node(tree._root)

    # ------------------------------------------------------------------ helpers
    def _eligible_node(self, node) -> bool:
        if node.count == 0:
            return False
        if self._right_side:
            return node.max_x >= self._query_x
        return node.min_x <= self._query_x

    def _eligible_point(self, x: float) -> bool:
        return x >= self._query_x if self._right_side else x <= self._query_x

    def _node_key_bound(self, node) -> float:
        bounds = self._resolver.resolve(node.bounds)
        if self._use_a:
            return bounds[_MAX_A] if self._sign < 0 else bounds[_MIN_A]
        return bounds[_MAX_B] if self._sign < 0 else bounds[_MIN_B]

    def _point_key(self, x: float, y: float) -> float:
        angle = self._resolver.query_angle
        return angle.intercept_a(x, y) if self._use_a else angle.intercept_b(x, y)

    def _push_node(self, node) -> None:
        if not self._eligible_node(node):
            return
        key = self._node_key_bound(node)
        heapq.heappush(self._heap, (self._sign * key, next(self._counter), False, node))

    def _push_point(self, row: int, x: float, y: float) -> None:
        if not self._eligible_point(x):
            return
        if row in self._tree._tombstones:
            return
        key = self._point_key(x, y)
        heapq.heappush(self._heap, (self._sign * key, next(self._counter), True, (row, x, y, key)))

    # ------------------------------------------------------------------ protocol
    def head_key(self) -> Optional[float]:
        """Admissible bound on the projection key of the next point (None if exhausted)."""
        if not self._heap:
            return None
        return self._sign * self._heap[0][0]

    def exhausted(self) -> bool:
        return not self._heap

    def __iter__(self) -> Iterator[Tuple[int, float, float, float]]:
        return self

    def __next__(self) -> Tuple[int, float, float, float]:
        while self._heap:
            _, _, is_point, payload = heapq.heappop(self._heap)
            if is_point:
                return payload  # type: ignore[return-value]
            node = payload
            self.nodes_visited += 1
            if node.is_leaf:
                for row, x, y in self._tree._leaf_points(node):
                    self._push_point(row, x, y)
            else:
                for child in node.children:
                    self._push_node(child)
        raise StopIteration


class _BoundResolver:
    """Derives admissible per-node bounds at the query angle.

    If the query angle coincides with an indexed angle the stored bounds are used
    directly; otherwise the bounds of the two bracketing indexed angles are
    combined with the (non-negative) interpolation coefficients, which yields
    admissible (never too tight) bounds because the intercepts are linear in the
    angle's unit vector.
    """

    _ANGLE_TOLERANCE = 1e-12

    def __init__(
        self,
        indexed_angles: Sequence[Angle],
        query_angle: Angle,
        radians: Optional[Sequence[float]] = None,
    ) -> None:
        self.query_angle = query_angle
        self._exact_index: Optional[int] = None
        self._lower_index = 0
        self._upper_index = 0
        self._mu_lower = 1.0
        self._mu_upper = 0.0
        if radians is None:
            radians = [angle.radians for angle in indexed_angles]
        target = query_angle.radians
        for i, value in enumerate(radians):
            if abs(value - target) <= self._ANGLE_TOLERANCE:
                self._exact_index = i
                return
        below = [i for i, value in enumerate(radians) if value <= target]
        above = [i for i, value in enumerate(radians) if value >= target]
        if not below or not above:
            raise ValueError(
                f"query angle {query_angle.degrees:.3f} deg outside the indexed range "
                f"[{math.degrees(min(radians)):.3f}, {math.degrees(max(radians)):.3f}] deg"
            )
        self._lower_index = max(below, key=lambda i: radians[i])
        self._upper_index = min(above, key=lambda i: radians[i])
        self._mu_lower, self._mu_upper = query_angle.interpolation_coefficients(
            indexed_angles[self._lower_index], indexed_angles[self._upper_index]
        )

    def resolve(self, bounds: List[Tuple[float, float, float, float]]
                ) -> Tuple[float, float, float, float]:
        if self._exact_index is not None:
            return bounds[self._exact_index]
        lower = bounds[self._lower_index]
        upper = bounds[self._upper_index]
        return (
            self._mu_lower * lower[_MAX_A] + self._mu_upper * upper[_MAX_A],
            self._mu_lower * lower[_MIN_A] + self._mu_upper * upper[_MIN_A],
            self._mu_lower * lower[_MAX_B] + self._mu_upper * upper[_MAX_B],
            self._mu_lower * lower[_MIN_B] + self._mu_upper * upper[_MIN_B],
        )

    @property
    def uses_interpolation(self) -> bool:
        return self._exact_index is None


class ProjectionTree:
    """The x-ordered, bound-annotated tree shared by all top-k query strategies."""

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        angles: Sequence[Angle],
        branching: int = 8,
        leaf_capacity: int = 32,
        row_ids: Optional[Sequence[int]] = None,
        rebuild_threshold: float = 0.25,
    ) -> None:
        if branching < 2:
            raise ValueError(f"branching factor must be >= 2, got {branching}")
        if leaf_capacity < 1:
            raise ValueError(f"leaf capacity must be >= 1, got {leaf_capacity}")
        if not angles:
            raise ValueError("at least one indexed angle is required")
        self.branching = int(branching)
        self.leaf_capacity = int(leaf_capacity)
        self.angles: Tuple[Angle, ...] = tuple(angles)
        self.rebuild_threshold = float(rebuild_threshold)
        #: Per-tree caches: the indexed angles never change, so their radians
        #: and the (stateless once built) bound resolvers are computed once per
        #: distinct query angle instead of once per query.
        self._angle_radians: Tuple[float, ...] = tuple(a.radians for a in self.angles)
        self._resolver_cache: Dict[Tuple[float, float], _BoundResolver] = {}

        xs = np.asarray(x, dtype=float)
        ys = np.asarray(y, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("x and y must be 1-d arrays of equal length")
        rows = (
            np.arange(len(xs), dtype=np.int64)
            if row_ids is None
            else np.asarray(list(row_ids), dtype=np.int64)
        )
        if rows.shape != xs.shape:
            raise ValueError("row_ids must align with coordinates")
        if len(np.unique(rows)) != len(rows):
            raise ValueError("row_ids must be unique")

        self._build_seconds = 0.0
        self._bulk_load(rows, xs, ys)

    # ------------------------------------------------------------------ build
    def _bulk_load(self, rows: np.ndarray, xs: np.ndarray, ys: np.ndarray) -> None:
        started = time.perf_counter()
        order = np.argsort(xs, kind="stable")
        self._rows = rows[order]
        self._x = xs[order]
        self._y = ys[order]
        self._live_rows: Dict[int, Tuple[float, float]] = {
            int(r): (float(px), float(py))
            for r, px, py in zip(self._rows, self._x, self._y)
        }
        self._tombstones: set = set()
        self._num_extras = 0
        self._deep_leaf_points = 0

        # Per-angle intercepts of the bulk points, aligned with the sorted arrays.
        self._wa = [angle.cos * self._y + angle.sin * self._x for angle in self.angles]
        self._wb = [angle.cos * self._y - angle.sin * self._x for angle in self.angles]

        n = len(self._rows)
        self._root: Optional[object] = self._build_range(0, n) if n else None
        self._height = self._compute_height(self._root)
        self._height_limit = self._balanced_height(max(n, 1)) + 2
        self._build_seconds += time.perf_counter() - started

    def _balanced_height(self, n: int) -> int:
        leaves = max(1, math.ceil(n / self.leaf_capacity))
        return max(1, math.ceil(math.log(leaves, self.branching))) + 1 if leaves > 1 else 1

    def _build_range(self, lo: int, hi: int):
        if hi - lo <= self.leaf_capacity:
            leaf = _Leaf(lo, hi)
            self._refresh_leaf(leaf)
            return leaf
        node = _Node()
        size = hi - lo
        # Never create more children than needed to respect the leaf capacity:
        # a high branching factor should reduce the number of internal nodes, not
        # shatter the data into under-filled leaves.
        children = min(self.branching, max(2, math.ceil(size / self.leaf_capacity)), size)
        boundaries = np.linspace(lo, hi, children + 1).astype(int)
        for i in range(children):
            child_lo, child_hi = int(boundaries[i]), int(boundaries[i + 1])
            if child_lo == child_hi:
                continue
            child = self._build_range(child_lo, child_hi)
            child.parent = node
            node.children.append(child)
        self._refresh_internal(node)
        return node

    def _refresh_leaf(self, leaf: _Leaf) -> None:
        """Recompute a leaf's count, x-range and per-angle bounds from its points."""
        bounds = [_EMPTY_BOUNDS] * len(self.angles)
        min_x, max_x = math.inf, -math.inf
        count = 0
        if leaf.stop > leaf.start:
            slice_rows = self._rows[leaf.start:leaf.stop]
            live_mask = np.array([int(r) not in self._tombstones for r in slice_rows])
            if live_mask.any():
                xs = self._x[leaf.start:leaf.stop][live_mask]
                count += int(live_mask.sum())
                min_x = float(xs.min())
                max_x = float(xs.max())
                new_bounds = []
                for ai in range(len(self.angles)):
                    was = self._wa[ai][leaf.start:leaf.stop][live_mask]
                    wbs = self._wb[ai][leaf.start:leaf.stop][live_mask]
                    new_bounds.append(
                        (float(was.max()), float(was.min()), float(wbs.max()), float(wbs.min()))
                    )
                bounds = new_bounds
        for row, x, y in zip(leaf.extra_rows, leaf.extra_x, leaf.extra_y):
            if row in self._tombstones:
                continue
            count += 1
            min_x = min(min_x, x)
            max_x = max(max_x, x)
            bounds = [
                _merge_bounds(
                    bounds[ai],
                    (
                        self.angles[ai].intercept_a(x, y),
                        self.angles[ai].intercept_a(x, y),
                        self.angles[ai].intercept_b(x, y),
                        self.angles[ai].intercept_b(x, y),
                    ),
                )
                for ai in range(len(self.angles))
            ]
        leaf.count = count
        leaf.min_x = min_x
        leaf.max_x = max_x
        leaf.bounds = list(bounds)

    def _refresh_internal(self, node: _Node) -> None:
        bounds = [_EMPTY_BOUNDS] * len(self.angles)
        min_x, max_x = math.inf, -math.inf
        count = 0
        for child in node.children:
            count += child.count
            min_x = min(min_x, child.min_x)
            max_x = max(max_x, child.max_x)
            bounds = [
                _merge_bounds(bounds[ai], child.bounds[ai]) for ai in range(len(self.angles))
            ]
        node.count = count
        node.min_x = min_x
        node.max_x = max_x
        node.bounds = list(bounds)

    def _compute_height(self, node, depth: int = 1) -> int:
        if node is None:
            return 0
        if node.is_leaf:
            return depth
        return max(self._compute_height(child, depth + 1) for child in node.children)

    # ------------------------------------------------------------------ iteration
    def _leaf_points(self, leaf: _Leaf) -> Iterator[Tuple[int, float, float]]:
        for i in range(leaf.start, leaf.stop):
            row = int(self._rows[i])
            if row in self._tombstones:
                continue
            yield row, float(self._x[i]), float(self._y[i])
        for row, x, y in zip(leaf.extra_rows, leaf.extra_x, leaf.extra_y):
            if row in self._tombstones:
                continue
            yield row, x, y

    def iter_points(self) -> Iterator[Tuple[int, float, float]]:
        """All live points as ``(row_id, x, y)`` (used by rebuilds and tests)."""
        for row, (x, y) in self._live_rows.items():
            yield row, x, y

    @property
    def live_count(self) -> int:
        return len(self._live_rows)

    def point(self, row_id: int) -> Tuple[float, float]:
        """Coordinates of a live row."""
        return self._live_rows[row_id]

    def __contains__(self, row_id: int) -> bool:
        return int(row_id) in self._live_rows

    def __len__(self) -> int:
        return self.live_count

    # ------------------------------------------------------------------ streams
    def bound_resolver(self, query_angle: Angle) -> _BoundResolver:
        """The (cached) admissible bound resolver for a query angle.

        Resolvers hold only the bracketing indices and interpolation
        coefficients, which depend on nothing but the query angle, so repeated
        queries at the same angle — the common case for serving workloads and
        for the aggregator's per-pair streams — reuse one resolver instead of
        recomputing trig and coefficients per query.
        """
        key = (query_angle.cos, query_angle.sin)
        resolver = self._resolver_cache.get(key)
        if resolver is None:
            if len(self._resolver_cache) >= 1024:
                self._resolver_cache.clear()
            resolver = _BoundResolver(self.angles, query_angle, radians=self._angle_radians)
            self._resolver_cache[key] = resolver
        return resolver

    def open_stream(self, spec: str, query_x: float, query_angle: Angle) -> ProjectionStream:
        """Open one of the four projection streams for a query axis and angle."""
        return ProjectionStream(self, spec, query_x, self.bound_resolver(query_angle))

    def open_streams(self, query_x: float, query_angle: Angle) -> Dict[str, ProjectionStream]:
        """All four projection streams for a query, sharing one bound resolver."""
        resolver = self.bound_resolver(query_angle)
        return {
            spec: ProjectionStream(self, spec, query_x, resolver)
            for spec in StreamSpec.ALL
        }

    # ------------------------------------------------------------------ updates
    def insert(self, x: float, y: float, row_id: Optional[int] = None) -> int:
        """Insert a point, returning its row id (O(b log_b n) plus rare splits)."""
        if row_id is None:
            used = self._live_rows.keys() | self._tombstones
            row_id = (max(used) + 1) if used else 0
        row_id = int(row_id)
        if row_id in self._live_rows:
            raise ValueError(f"row id {row_id} already present")
        if row_id in self._tombstones:
            # The old copy still physically sits in the bulk arrays; reviving the id
            # would resurrect it with stale coordinates.
            raise ValueError(f"row id {row_id} was deleted and cannot be reused before a rebuild")
        x, y = float(x), float(y)
        self._live_rows[row_id] = (x, y)

        if self._root is None:
            self._rebuild_from_live()
            return row_id

        leaf = self._descend_to_leaf(x)
        leaf.extra_rows.append(row_id)
        leaf.extra_x.append(x)
        leaf.extra_y.append(y)
        self._num_extras += 1
        self._apply_point_upward(leaf, x, y)
        if leaf.count > 2 * self.leaf_capacity:
            self._split_leaf(leaf)
        return row_id

    def delete(self, row_id: int) -> None:
        """Delete a point by tombstoning it; bounds stay admissible (merely looser)."""
        row_id = int(row_id)
        if row_id not in self._live_rows:
            raise KeyError(f"row id {row_id} not present")
        del self._live_rows[row_id]
        self._tombstones.add(row_id)
        if self.needs_rebuild():
            self.rebuild()

    def needs_rebuild(self) -> bool:
        """True once accumulated garbage/imbalance exceeds the configured threshold."""
        live = max(self.live_count, 1)
        garbage = len(self._tombstones) + max(self._height - self._height_limit, 0) * live
        return garbage > self.rebuild_threshold * live

    def rebuild(self) -> None:
        """Rebuild the tree from the live points (the paper's rebuild step)."""
        self._rebuild_from_live()

    def _rebuild_from_live(self) -> None:
        rows = np.array(list(self._live_rows.keys()), dtype=np.int64)
        if len(rows):
            coords = np.array([self._live_rows[int(r)] for r in rows], dtype=float)
            xs, ys = coords[:, 0], coords[:, 1]
        else:
            xs = np.empty(0, dtype=float)
            ys = np.empty(0, dtype=float)
        self._bulk_load(rows, xs, ys)

    def _descend_to_leaf(self, x: float) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            chosen = None
            for child in node.children:
                if x <= child.max_x or child is node.children[-1]:
                    chosen = child
                    break
            node = chosen
        return node

    def _apply_point_upward(self, leaf: _Leaf, x: float, y: float) -> None:
        """Extend the bounds and x-ranges on the path from ``leaf`` to the root."""
        addition = [
            (
                self.angles[ai].intercept_a(x, y),
                self.angles[ai].intercept_a(x, y),
                self.angles[ai].intercept_b(x, y),
                self.angles[ai].intercept_b(x, y),
            )
            for ai in range(len(self.angles))
        ]
        node = leaf
        while node is not None:
            node.count += 1
            node.min_x = min(node.min_x, x)
            node.max_x = max(node.max_x, x)
            node.bounds = [
                _merge_bounds(node.bounds[ai], addition[ai]) if node.bounds else addition[ai]
                for ai in range(len(self.angles))
            ]
            node = node.parent

    def _split_leaf(self, leaf: _Leaf) -> None:
        """Split an overflowing leaf into two materialized leaves."""
        points = sorted(self._leaf_points(leaf), key=lambda item: item[1])
        middle = len(points) // 2
        halves = [points[:middle], points[middle:]]
        parent = leaf.parent
        new_leaves: List[_Leaf] = []
        for half in halves:
            if not half:
                continue
            new_leaf = _Leaf(0, 0)
            new_leaf.extra_rows = [row for row, _, _ in half]
            new_leaf.extra_x = [px for _, px, _ in half]
            new_leaf.extra_y = [py for _, _, py in half]
            self._refresh_leaf(new_leaf)
            new_leaves.append(new_leaf)
        if parent is None:
            root = _Node()
            for new_leaf in new_leaves:
                new_leaf.parent = root
                root.children.append(new_leaf)
            self._refresh_internal(root)
            self._root = root
            self._height = self._compute_height(self._root)
            return
        index = parent.children.index(leaf)
        parent.children[index:index + 1] = new_leaves
        for new_leaf in new_leaves:
            new_leaf.parent = parent
        self._refresh_internal(parent)
        if len(parent.children) > 2 * self.branching:
            self._split_internal(parent)
        self._height = self._compute_height(self._root)

    def _split_internal(self, node: _Node) -> None:
        middle = len(node.children) // 2
        sibling = _Node()
        sibling.children = node.children[middle:]
        node.children = node.children[:middle]
        for child in sibling.children:
            child.parent = sibling
        self._refresh_internal(node)
        self._refresh_internal(sibling)
        parent = node.parent
        if parent is None:
            root = _Node()
            node.parent = root
            sibling.parent = root
            root.children = [node, sibling]
            self._refresh_internal(root)
            self._root = root
            return
        index = parent.children.index(node)
        parent.children.insert(index + 1, sibling)
        sibling.parent = parent
        self._refresh_internal(parent)
        if len(parent.children) > 2 * self.branching:
            self._split_internal(parent)

    # ------------------------------------------------------------------ stats
    def stats(self) -> IndexStats:
        """Node counts and an analytic memory estimate (Figures 8h-8i)."""
        num_nodes = 0
        num_leaves = 0
        memory = 0
        per_angle_bytes = 4 * 8  # four floats per indexed angle
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            num_nodes += 1
            memory += 2 * 8  # min_x / max_x
            memory += per_angle_bytes * len(self.angles)
            if node.is_leaf:
                num_leaves += 1
                memory += 24 * node.count  # row id + two coordinates per point
            else:
                memory += 8 * len(node.children)  # child pointers
                stack.extend(node.children)
        return IndexStats(
            name="sd-topk",
            num_points=self.live_count,
            num_nodes=num_nodes,
            num_regions=num_leaves,
            height=self._height,
            branching=self.branching,
            num_angles=len(self.angles),
            memory_bytes=memory,
            build_seconds=self._build_seconds,
        )
