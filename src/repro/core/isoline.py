"""Isoline envelopes: the geometric core of the top-1 index (Section 3).

For a fixed projection angle, the *lower projection* of a point ``p`` evaluated
along the x-axis is the tent-shaped function

``f_p(x) = cos*y_p - sin*|x - x_p| = min(w_a(p) - sin*x, w_b(p) + sin*x)``

and the *upper projection* is the vee-shaped function

``g_p(x) = cos*y_p + sin*|x - x_p| = max(w_a(p) - sin*x, w_b(p) + sin*x)``.

The point providing the *highest lower projection* at an axis ``x`` is the one on
the upper envelope of the tents at ``x``; the point providing the *lowest upper
projection* is the one on the lower envelope of the vees.  Claim 5 of the paper
states that each point owns at most one contiguous interval of either envelope,
so both envelopes decompose the x-axis into at most ``n`` regions; this module
computes those regions exactly.

Key facts used (proved in ``tests/property/test_isoline_properties.py``):

* A point appears on the upper tent envelope iff it is *non-dominated* in the
  intercept plane: no other point has both ``w_a`` and ``w_b`` at least as large
  (with one strictly larger).  Dually for the vee lower envelope with "at most".
* Non-dominated points, ordered by increasing ``w_a`` (equivalently decreasing
  ``w_b``), own consecutive regions from left to right, and the breakpoint
  between consecutive owners is the intersection of the right projection of the
  left owner with the left projection of the right owner — exactly the
  intersection points Algorithm 1 of the paper stores.
* Peeling the envelope ``k`` times yields layers such that the ``j``-th best
  projection provider at any axis lies within the first ``j`` layers, which is
  what the apriori-``k`` variant of the top-1 index stores.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import Angle

__all__ = [
    "EnvelopeSide",
    "Region",
    "Envelope",
    "build_envelope",
    "peel_envelope_layers",
    "tent_height",
    "vee_height",
]


class EnvelopeSide:
    """Which envelope is being built (plain constants; not worth an Enum)."""

    LOWER_PROJECTIONS = "lower"  # upper envelope of tents (highest lower projection)
    UPPER_PROJECTIONS = "upper"  # lower envelope of vees (lowest upper projection)


def tent_height(angle: Angle, px: float, py: float, x: float) -> float:
    """Lower-projection height of point ``(px, py)`` at axis ``x``."""
    return angle.cos * py - angle.sin * abs(x - px)


def vee_height(angle: Angle, px: float, py: float, x: float) -> float:
    """Upper-projection height of point ``(px, py)`` at axis ``x``."""
    return angle.cos * py + angle.sin * abs(x - px)


@dataclass(frozen=True)
class Region:
    """A maximal x-interval ``[left, right)`` owned by a single point."""

    left: float
    right: float
    owner: int  # row id of the owning point

    def contains(self, x: float) -> bool:
        return self.left <= x < self.right or (math.isinf(self.right) and x >= self.left)


@dataclass
class Envelope:
    """A piecewise description of one envelope: sorted regions covering the x-axis.

    ``breakpoints`` holds the right boundary of every region except the last
    (which extends to ``+inf``); ``owners`` holds the owning row id per region.
    ``owner_at(x)`` is a binary search, which is the query procedure of the top-1
    index.
    """

    side: str
    owners: List[int] = field(default_factory=list)
    breakpoints: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.owners and len(self.breakpoints) != len(self.owners) - 1:
            raise ValueError(
                f"{len(self.owners)} owners require {len(self.owners) - 1} breakpoints, "
                f"got {len(self.breakpoints)}"
            )

    def __len__(self) -> int:
        return len(self.owners)

    @property
    def is_empty(self) -> bool:
        return not self.owners

    def owner_at(self, x: float) -> Optional[int]:
        """Row id of the point owning the envelope at axis ``x`` (None if empty)."""
        if not self.owners:
            return None
        position = bisect.bisect_left(self.breakpoints, x)
        return self.owners[position]

    def regions(self) -> List[Region]:
        """Materialize the regions (mostly for inspection and tests)."""
        if not self.owners:
            return []
        bounds = [-math.inf] + list(self.breakpoints) + [math.inf]
        return [
            Region(left=bounds[i], right=bounds[i + 1], owner=owner)
            for i, owner in enumerate(self.owners)
        ]

    def memory_bytes(self) -> int:
        """Analytic memory estimate: one float per breakpoint, one int per owner."""
        return 8 * len(self.breakpoints) + 8 * len(self.owners)


def _dominance_skyline(
    row_ids: np.ndarray,
    w_a: np.ndarray,
    w_b: np.ndarray,
    maximize: bool,
) -> List[int]:
    """Indices (into the given arrays) of non-dominated entries.

    For ``maximize=True`` an entry is dominated if another entry has ``w_a`` and
    ``w_b`` at least as large, with at least one strictly larger (ties broken on
    row id so exact duplicates keep exactly one representative).  For
    ``maximize=False`` the inequalities flip.
    """
    n = len(row_ids)
    if n == 0:
        return []
    sign = 1.0 if maximize else -1.0
    a = sign * w_a
    b = sign * w_b
    # Sort by a descending, then b descending, then row id ascending so that the
    # first occurrence of any duplicate (a, b) pair survives.  After this sort an
    # entry is non-dominated exactly when its b is strictly larger than every b
    # seen before it.
    order = np.lexsort((row_ids, -b, -a))
    skyline: List[int] = []
    best_b = -math.inf
    for idx in order:
        if not skyline or b[idx] > best_b:
            skyline.append(int(idx))
            best_b = b[idx]
    return skyline


def build_envelope(
    x: Sequence[float],
    y: Sequence[float],
    angle: Angle,
    side: str = EnvelopeSide.LOWER_PROJECTIONS,
    row_ids: Optional[Sequence[int]] = None,
) -> Envelope:
    """Build one envelope over the given points.

    Parameters
    ----------
    x, y:
        Coordinates of the points; ``y`` is the repulsive dimension.
    angle:
        Projection angle (``Angle.from_weights(alpha, beta)``).
    side:
        ``EnvelopeSide.LOWER_PROJECTIONS`` for the highest-lower-projection
        envelope, ``EnvelopeSide.UPPER_PROJECTIONS`` for the lowest-upper one.
    row_ids:
        Optional external identifiers for the points (defaults to positions).
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("x and y must be 1-d arrays of equal length")
    ids = (
        np.arange(len(xs), dtype=int)
        if row_ids is None
        else np.asarray(list(row_ids), dtype=int)
    )
    if ids.shape != xs.shape:
        raise ValueError("row_ids must align with the coordinate arrays")
    if len(xs) == 0:
        return Envelope(side=side)

    w_a, w_b = angle.intercepts(xs, ys)
    maximize = side == EnvelopeSide.LOWER_PROJECTIONS
    skyline_positions = _dominance_skyline(ids, w_a, w_b, maximize=maximize)

    # Order owners left-to-right along the x-axis.  On both sides the leftmost
    # owner is the one with the extreme "left intercept" w_b, and along the
    # skyline w_b is antitone in w_a, so ascending w_a is the left-to-right order
    # (the vertex of each tent/vee sits at x = (w_a - w_b) / (2*sin)).
    skyline_positions.sort(key=lambda i: (w_a[i], -w_b[i], ids[i]))

    sin = angle.sin
    if sin == 0:
        # Degenerate angle (theta = 0): every projection is a horizontal line, so a
        # single point (the best cos*y) owns the whole axis.  The skyline already
        # reduced the candidates to exactly that point.
        return Envelope(side=side, owners=[int(ids[skyline_positions[0]])], breakpoints=[])

    owners: List[int] = []
    breakpoints: List[float] = []
    previous_position: Optional[int] = None
    for position in skyline_positions:
        owners.append(int(ids[position]))
        if previous_position is not None:
            if maximize:
                # Intersection of the right-lower projection of the previous owner
                # (height w_a_prev - sin*x) with the left-lower projection of the
                # new owner (height w_b_new + sin*x).
                boundary = (w_a[previous_position] - w_b[position]) / (2.0 * sin)
            else:
                # Intersection of the right-upper projection of the previous owner
                # (height w_b_prev + sin*x) with the left-upper projection of the
                # new owner (height w_a_new - sin*x).
                boundary = (w_a[position] - w_b[previous_position]) / (2.0 * sin)
            breakpoints.append(float(boundary))
        previous_position = position

    return Envelope(side=side, owners=owners, breakpoints=breakpoints)


def peel_envelope_layers(
    x: Sequence[float],
    y: Sequence[float],
    angle: Angle,
    layers: int,
    side: str = EnvelopeSide.LOWER_PROJECTIONS,
    row_ids: Optional[Sequence[int]] = None,
) -> List[Envelope]:
    """Repeatedly peel the envelope to support an apriori ``k`` greater than one.

    The ``j``-th best projection provider at any axis position is contained in the
    union of the first ``j`` layers, so indexing ``k`` layers suffices to answer
    top-``k`` queries with the region-based index (Section 3, "for higher values
    of k ... we need to track the k-highest and k-lowest projections").
    """
    if layers < 1:
        raise ValueError(f"layers must be >= 1, got {layers}")
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    ids = (
        np.arange(len(xs), dtype=int)
        if row_ids is None
        else np.asarray(list(row_ids), dtype=int)
    )
    remaining = np.ones(len(xs), dtype=bool)
    result: List[Envelope] = []
    for _ in range(layers):
        if not remaining.any():
            break
        active = np.nonzero(remaining)[0]
        envelope = build_envelope(
            xs[active], ys[active], angle, side=side, row_ids=ids[active]
        )
        result.append(envelope)
        # Remove this layer's owners from the point set before peeling again.
        owner_set = set(envelope.owners)
        if not owner_set:
            break
        for position in active:
            if int(ids[position]) in owner_set:
                remaining[position] = False
    return result
