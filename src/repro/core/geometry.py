"""Projection geometry for the 2D SD-score (Section 2 of the paper).

For a 2D sub-query with repulsive dimension ``y`` (weight ``alpha``) and
attractive dimension ``x`` (weight ``beta``) the score of a point ``p`` against a
query ``q`` is ``alpha*|y_p - y_q| - beta*|x_p - x_q|``.  Every point emits four
*projections* at angle ``theta = atan(beta/alpha)`` to the x-axis (Definition 4):
left/right lower and left/right upper.  The intersection of the appropriate
projection with the query axis ``x = x_q`` determines the score (Claims 2-3), and
the top-k answer lives among the highest lower / lowest upper projections
(Claim 4).

To keep all angles (including the degenerate ``theta = 90`` degrees, i.e.
``alpha = 0``) on the same footing, this module works with the *normalized* form

``score_theta(p, q) = cos(theta)*|y_p - y_q| - sin(theta)*|x_p - x_q|``

which ranks identically to the weighted score and is a linear function of the
unit vector ``(cos(theta), sin(theta))``.  The two per-point *intercepts*

``w_a = cos(theta)*y + sin(theta)*x``  and  ``w_b = cos(theta)*y - sin(theta)*x``

order projections of the same type (they are parallel lines), and the lower /
upper projection heights at any axis ``x_q`` are

``lower(p, x_q) = min(w_a - sin(theta)*x_q, w_b + sin(theta)*x_q)``
``upper(p, x_q) = max(w_a - sin(theta)*x_q, w_b + sin(theta)*x_q)``
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "ProjectionKind",
    "Angle",
    "projection_kind",
    "lower_projection_height",
    "upper_projection_height",
    "projected_point",
    "score_2d",
    "score_from_axis",
    "claim1_holds",
]


class ProjectionKind(enum.Enum):
    """The four projections a point emits (Definition 4)."""

    LLP = "left-lower"
    RLP = "right-lower"
    LUP = "left-upper"
    RUP = "right-upper"

    @property
    def is_lower(self) -> bool:
        return self in (ProjectionKind.LLP, ProjectionKind.RLP)

    @property
    def is_left(self) -> bool:
        return self in (ProjectionKind.LLP, ProjectionKind.LUP)


@dataclass(frozen=True)
class Angle:
    """A projection angle, stored as the unit vector ``(cos, sin)``.

    ``cos`` weighs the repulsive (y) dimension and ``sin`` the attractive (x)
    dimension.  ``Angle.from_weights(alpha, beta)`` normalizes arbitrary positive
    weights; ``Angle.from_degrees`` builds the fixed grid of indexed angles.
    """

    cos: float
    sin: float

    #: Components smaller than this (after normalization) are snapped to exactly
    #: zero so that the degenerate 0 and 90 degree angles behave exactly.
    _SNAP_TOLERANCE = 1e-12

    def __post_init__(self) -> None:
        norm = math.hypot(self.cos, self.sin)
        if not math.isfinite(norm) or norm <= 0:
            raise ValueError(f"invalid angle components ({self.cos}, {self.sin})")
        if self.cos < -1e-12 or self.sin < -1e-12:
            raise ValueError("projection angles live in the first quadrant")
        cos = self.cos / norm
        sin = self.sin / norm
        if abs(cos) < self._SNAP_TOLERANCE:
            cos, sin = 0.0, 1.0
        elif abs(sin) < self._SNAP_TOLERANCE:
            cos, sin = 1.0, 0.0
        object.__setattr__(self, "cos", cos)
        object.__setattr__(self, "sin", sin)
        # Cache the trig-derived view: every bound resolution and angle-grid
        # lookup reads ``radians``, and atan2 per access dominates repeated
        # queries (see the AngleGrid / ProjectionTree resolver caches).
        object.__setattr__(self, "_radians", math.atan2(sin, cos))

    # ------------------------------------------------------------- constructors
    @classmethod
    def from_weights(cls, alpha: float, beta: float) -> "Angle":
        """Angle for a repulsive weight ``alpha`` and attractive weight ``beta``."""
        if alpha < 0 or beta < 0 or (alpha == 0 and beta == 0):
            raise ValueError(f"weights must be non-negative and not both zero: {alpha}, {beta}")
        return cls(cos=float(alpha), sin=float(beta))

    @classmethod
    def from_degrees(cls, degrees: float) -> "Angle":
        """Angle from degrees in ``[0, 90]``."""
        if degrees < 0 or degrees > 90:
            raise ValueError(f"angle must be within [0, 90] degrees, got {degrees}")
        radians = math.radians(degrees)
        return cls(cos=math.cos(radians), sin=math.sin(radians))

    @classmethod
    def from_radians(cls, radians: float) -> "Angle":
        """Angle from radians in ``[0, pi/2]``."""
        return cls(cos=math.cos(radians), sin=math.sin(radians))

    # ------------------------------------------------------------------ views
    @property
    def radians(self) -> float:
        return self._radians

    @property
    def degrees(self) -> float:
        return math.degrees(self.radians)

    @property
    def slope(self) -> float:
        """``tan(theta)`` — the geometric slope of projections; ``inf`` at 90 degrees."""
        if self.cos == 0:
            return math.inf
        return self.sin / self.cos

    # ------------------------------------------------------------ intercepts
    def intercept_a(self, x: float, y: float) -> float:
        """``w_a = cos*y + sin*x`` — orders right-lower and left-upper projections."""
        return self.cos * y + self.sin * x

    def intercept_b(self, x: float, y: float) -> float:
        """``w_b = cos*y - sin*x`` — orders left-lower and right-upper projections."""
        return self.cos * y - self.sin * x

    def intercepts(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(w_a, w_b)`` for arrays of coordinates."""
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return self.cos * y + self.sin * x, self.cos * y - self.sin * x

    # ------------------------------------------------------------- scoring
    def normalized_score(self, dx: float, dy: float) -> float:
        """``cos*|dy| - sin*|dx|`` — the normalized 2D SD-score."""
        return self.cos * abs(dy) - self.sin * abs(dx)

    def interpolation_coefficients(self, lower: "Angle", upper: "Angle") -> Tuple[float, float]:
        """Non-negative ``(mu_l, mu_u)`` with ``(cos, sin) = mu_l*lower + mu_u*upper``.

        Exists whenever ``lower.radians <= self.radians <= upper.radians`` and the
        two bracketing angles are distinct.  Used to derive admissible per-node
        bounds at a non-indexed angle from the bounds stored for two indexed
        angles (the linear-algebra core of Claim 6 / Algorithm 4).
        """
        det = lower.cos * upper.sin - lower.sin * upper.cos
        if abs(det) < 1e-15:
            raise ValueError("bracketing angles must be distinct")
        mu_l = (self.cos * upper.sin - self.sin * upper.cos) / det
        mu_u = (lower.cos * self.sin - lower.sin * self.cos) / det
        if mu_l < -1e-9 or mu_u < -1e-9:
            raise ValueError(
                f"angle {self.degrees:.3f} deg is not bracketed by "
                f"[{lower.degrees:.3f}, {upper.degrees:.3f}] deg"
            )
        return max(mu_l, 0.0), max(mu_u, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Angle({self.degrees:.2f} deg)"


# ----------------------------------------------------------------- projections
def projection_kind(px: float, py: float, qx: float, qy: float) -> ProjectionKind:
    """The projection of ``p`` that determines its score against ``q`` (Equation 6)."""
    if py < qy:
        return ProjectionKind.LUP if px >= qx else ProjectionKind.RUP
    return ProjectionKind.LLP if px >= qx else ProjectionKind.RLP


def lower_projection_height(angle: Angle, px: float, py: float, qx: float) -> float:
    """Height at which the lower projection of ``p`` crosses the axis ``x = qx``.

    Expressed in normalized units (multiplied by ``cos(theta)`` relative to the
    geometric y-value) so that it stays finite at ``theta = 90`` degrees.
    """
    return angle.cos * py - angle.sin * abs(px - qx)


def upper_projection_height(angle: Angle, px: float, py: float, qx: float) -> float:
    """Height at which the upper projection of ``p`` crosses the axis ``x = qx``."""
    return angle.cos * py + angle.sin * abs(px - qx)


def projected_point(angle: Angle, px: float, py: float, qx: float, qy: float) -> Tuple[float, float]:
    """The projected point ``p'`` of ``p`` on the axis of ``q`` (Definition 4).

    Only meaningful for angles with ``cos > 0`` (the geometric y-coordinate of the
    intersection is ``height / cos``).
    """
    kind = projection_kind(px, py, qx, qy)
    if angle.cos == 0:
        raise ValueError("projected_point is undefined at theta = 90 degrees")
    if kind.is_lower:
        height = lower_projection_height(angle, px, py, qx)
    else:
        height = upper_projection_height(angle, px, py, qx)
    return qx, height / angle.cos


def score_2d(angle: Angle, px: float, py: float, qx: float, qy: float) -> float:
    """Normalized 2D SD-score of ``p`` against ``q`` computed directly."""
    return angle.normalized_score(px - qx, py - qy)


def score_from_axis(angle: Angle, px: float, py: float, qx: float, qy: float) -> float:
    """Normalized 2D SD-score computed through the projection heights.

    This is the computation Claims 2-3 justify: for points in the lower group
    (``y_p >= y_q``) the score equals ``lower_height - cos*y_q``; for the upper
    group it equals ``cos*y_q - upper_height``.  Tests assert this agrees with
    :func:`score_2d` for every configuration.
    """
    if py >= qy:
        return lower_projection_height(angle, px, py, qx) - angle.cos * qy
    return angle.cos * qy - upper_projection_height(angle, px, py, qx)


def claim1_holds(angle: Angle, px: float, py: float, qx: float, qy: float) -> bool:
    """True when ``q`` lies between the two projected points of ``p`` (Claim 1).

    In that configuration the score of ``p`` is guaranteed to be non-positive.
    """
    lower = lower_projection_height(angle, px, py, qx)
    upper = upper_projection_height(angle, px, py, qx)
    height_q = angle.cos * qy
    return lower <= height_q <= upper
