"""Multi-process sharded serving over memory-mapped snapshots (DESIGN.md §10).

:class:`~repro.core.sharding.ShardedIndex` parallelizes shard probes on a
thread pool, so the GIL caps it at roughly one core of Python dispatch no
matter how many shards exist.  :class:`ProcessShardedIndex` breaks that
ceiling: one **worker process per shard**, each mmap-loading its sub-snapshot
read-only via :func:`repro.core.persistence.load_engine` (``mmap=True``) and
serving it through the same maintained
:class:`~repro.core.batch.QuerySession`, with a scatter-gather coordinator
that reuses the thread engine's bound-ordered visitation and cross-shard
k-th pruning loop *verbatim* — results are bit-identical to the flat engine
by construction (same ``(-score, row_id)`` tie-break).

Architecture
------------
The coordinator keeps a full in-process :class:`ShardedIndex` (the *primary*)
wrapped in a :class:`~repro.core.persistence.DurableIndex`:

* **Writes** apply to the primary and journal to the WAL — the acknowledged
  op stream is the single source of truth.
* **Workers catch up by WAL tail replay**: before a serve, every worker whose
  last-seen LSN trails the log is sent a ``sync`` and replays the records
  routed to its shard (read-only tailing via
  :func:`~repro.core.persistence.read_wal_tail`; a worker never *opens* the
  log, which would truncate a torn tail under the writer).  By the crash
  recovery invariant (DESIGN.md §7), snapshot + tail replay answers
  bit-identically to the applied stream, so worker views and primary views
  agree float-for-float.
* **Bound math stays local.**  The serve pins the primary's snapshot cut and
  computes per-shard upper bounds, sample-seeded k-th lower bounds and prune
  thresholds from the primary's views — only the expensive ``run`` probes go
  over IPC, one request per visited shard per round.
* **Epoch publication is a snapshot-version flip**: ``checkpoint()`` streams
  a new snapshot through the DurableIndex, then broadcasts ``flip`` so each
  worker mmap-loads its new sub-snapshot and closes the old engine (whose
  :class:`~repro.core.persistence.MmapGuard` releases the stale file maps —
  snapshot pruning never races an open handle).  Rebalances always flip,
  which is why a worker legitimately never sees ``OP_REBALANCE`` in a tail.
* **Worker death degrades, never hangs.**  Pipe breakage and probe timeouts
  surface as :class:`WorkerDied` (a ``ConnectionError``, hence transient
  under a :class:`~repro.serving.breaker.ResiliencePolicy`), which the
  shared serving loop maps onto the per-shard
  :class:`~repro.serving.breaker.CircuitBreaker` and
  :class:`~repro.core.results.ShardCoverage` degradation path.  Dead workers
  respawn asynchronously from the current snapshot and rejoin once their
  breaker half-opens.

IPC wire format (pickled tuples over a duplex ``multiprocessing.Pipe``):

* request: ``(seq, op, payload)`` with ``op`` one of ``"probe"``, ``"sync"``,
  ``"flip"``, ``"ping"``, ``"stop"``.
* reply: ``(seq, status, payload)`` with ``status`` one of ``"ok"``,
  ``"deadline"``, ``"error"``.  ``seq`` echoes the request, so the
  coordinator can drain stale replies left behind by a timed-out probe.
* boot handshake: the worker sends ``(0, "ready", lsn)`` once its snapshot
  is mapped (or ``(0, "error", message)`` if loading failed).

Consistency model: one coordinator lock serializes writers, flips and the
pin phase of every serve, so a serve always observes workers synced to the
exact LSN of the primary cut it pinned.  Probes inside one serve still fan
out concurrently — the executor threads merely block on worker I/O, so shard
kernels genuinely run on distinct cores.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.batch import BatchQuerySpec
from repro.core.deadline import Deadline, DeadlineExceeded
from repro.core.persistence import (
    CURRENT_NAME,
    OP_BULK_DELETE,
    OP_BULK_INSERT,
    OP_COMPACT,
    OP_DELETE,
    OP_FLUSH,
    OP_INSERT,
    WAL_NAME,
    DurableIndex,
    load_engine,
    read_wal_tail,
)
from repro.core.query import SDQuery
from repro.core.results import BatchResult, TopKResult
from repro.core.sharding import ShardedIndex, ShardRouter
from repro.serving.breaker import ResiliencePolicy

__all__ = ["ProcessShardedIndex", "ProcessSnapshot", "WorkerDied"]


class WorkerDied(ConnectionError):
    """A shard worker process crashed, hung past its op timeout, or lagged.

    Subclasses ``ConnectionError`` so every default
    :class:`~repro.serving.breaker.ResiliencePolicy` treats it as transient:
    the probe records a breaker failure and the serve degrades that shard
    instead of erroring, exactly like a thread-backend shard fault.
    """


# --------------------------------------------------------------- worker side
class _WorkerState:
    """Everything one worker process owns: engine, view, membership, router."""

    def __init__(self, shard_id: int, boot: Dict) -> None:
        self.shard_id = int(shard_id)
        self.wal_path = boot["wal_path"]
        self.lsn = int(boot["lsn"])
        self.router = self._build_router(boot["router"])
        self.engine = None
        self.view = None
        self.members: set = set()
        self._load(boot["shard_dir"])

    @staticmethod
    def _build_router(payload: Dict) -> ShardRouter:
        boundaries = payload.get("boundaries")
        router = ShardRouter(
            int(payload["num_shards"]),
            partitioner=payload["partitioner"],
            range_dim=payload.get("range_dim"),
            boundaries=None if boundaries is None else np.asarray(boundaries),
        )
        router.salt = int(payload.get("salt", 0))
        return router

    def _load(self, shard_dir: str) -> None:
        self.engine = load_engine(shard_dir, mmap=True, expect="aggregator")
        self._repin()
        self.members = {int(r) for r in self.view.live_row_ids()}

    def _repin(self) -> None:
        if self.view is not None:
            self.view.close()
        self.view = self.engine.serving_session().snapshot()

    # ------------------------------------------------------------------- ops
    def probe(self, payload) -> BatchResult:
        spec, lower_bounds, budget, label = payload
        deadline = None if budget is None else Deadline(budget)
        return self.view.run(
            spec, lower_bounds=lower_bounds, deadline=deadline, _label=label
        )

    def sync(self, target_lsn: int) -> int:
        """Replay the WAL tail up to ``target_lsn``; returns the new LSN."""
        target_lsn = int(target_lsn)
        if target_lsn <= self.lsn:
            return self.lsn
        for lsn, op, ids, matrix in read_wal_tail(self.wal_path, after_lsn=self.lsn):
            if lsn > target_lsn:
                break
            self._apply(op, ids, matrix)
            self.lsn = lsn
        if self.lsn < target_lsn:
            # The coordinator flushes appends before announcing a target, so
            # a short read means the log was rotated under us (a missed flip).
            raise RuntimeError(
                f"WAL tail ends at lsn {self.lsn}, coordinator wants {target_lsn}"
            )
        self._repin()
        return self.lsn

    def _apply(self, op: int, ids: np.ndarray, matrix) -> None:
        if op in (OP_INSERT, OP_BULK_INSERT):
            block = np.asarray(matrix, dtype=float)
            mine = self.router.route(ids, block) == self.shard_id
            if mine.any():
                kept = [int(r) for r in np.asarray(ids)[mine]]
                self.engine.bulk_insert(block[mine], row_ids=kept)
                self.members.update(kept)
        elif op in (OP_DELETE, OP_BULK_DELETE):
            mine = [int(r) for r in ids if int(r) in self.members]
            if mine:
                self.engine.bulk_delete(mine)
                self.members.difference_update(mine)
        elif op in (OP_FLUSH, OP_COMPACT):
            # LSM structure ops are local to the engine that ran them (level
            # seqs name *that* engine's levels); the worker's own aggregator
            # schedules its own maintenance, and answers are structure-blind.
            pass
        else:
            # Rebalance/rebuild reshuffle rows across shards; the coordinator
            # always ships those as a snapshot flip, never as tail records.
            raise RuntimeError(f"op {op} must arrive as a snapshot flip, not a sync")

    def flip(self, payload) -> int:
        shard_dir, lsn, router_payload = payload
        old_engine, old_view = self.engine, self.view
        self.view = None
        self._load(shard_dir)
        self.lsn = int(lsn)
        self.router = self._build_router(router_payload)
        if old_view is not None:
            old_view.close()
        if old_engine is not None:
            old_engine.close()  # drops the superseded snapshot's file maps
        return self.lsn

    def close(self) -> None:
        if self.view is not None:
            self.view.close()
            self.view = None
        if self.engine is not None:
            self.engine.close()
            self.engine = None


def _worker_main(shard_id: int, conn, boot: Dict) -> None:
    """Entry point of one shard worker process (spawn start method)."""
    try:
        state = _WorkerState(shard_id, boot)
    except BaseException as exc:  # noqa: BLE001 - report any boot failure
        try:
            conn.send((0, "error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError, BrokenPipeError):
            pass
        return
    try:
        conn.send((0, "ready", state.lsn))
    except (OSError, ValueError, BrokenPipeError):
        return
    while True:
        try:
            seq, op, payload = conn.recv()
        except (EOFError, OSError):
            break
        if op == "stop":
            break
        try:
            if op == "probe":
                reply = state.probe(payload)
            elif op == "sync":
                reply = state.sync(payload)
            elif op == "flip":
                reply = state.flip(payload)
            elif op == "ping":
                reply = "pong"
            else:
                raise RuntimeError(f"unknown worker op {op!r}")
        except DeadlineExceeded as exc:
            message = (seq, "deadline", exc.budget)
        except Exception as exc:  # noqa: BLE001 - ship the failure upstream
            message = (seq, "error", f"{type(exc).__name__}: {exc}")
        else:
            message = (seq, "ok", reply)
        try:
            conn.send(message)
        except (OSError, ValueError, BrokenPipeError):
            break
    state.close()


# ---------------------------------------------------------- coordinator side
class _WorkerHandle:
    """Coordinator-side bookkeeping for one shard worker process."""

    __slots__ = ("shard", "process", "conn", "lock", "seq", "ready", "lsn")

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.seq = 0
        self.ready = False
        self.lsn = -1

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class _WorkerView:
    """Duck-typed stand-in for one shard's ``SessionSnapshot`` in the serve loop.

    Bound math (``upper_bounds`` / ``sample_scores`` / ``data_magnitude`` /
    ``num_live``) delegates to the *primary's* pinned local view — cheap, and
    bit-identical to what the worker would compute.  Only :meth:`run`, the
    actual shard kernel, crosses the process boundary.
    """

    __slots__ = ("_engine", "_handle", "_local")

    def __init__(self, engine: "ProcessShardedIndex", handle: _WorkerHandle, local) -> None:
        self._engine = engine
        self._handle = handle
        self._local = local

    @property
    def num_live(self) -> int:
        return self._local.num_live

    def upper_bounds(self, spec):
        return self._local.upper_bounds(spec)

    def sample_scores(self, spec, pool: int):
        return self._local.sample_scores(spec, pool)

    def data_magnitude(self) -> float:
        return self._local.data_magnitude()

    def live_row_ids(self):
        return self._local.live_row_ids()

    def live_matrix(self):
        return self._local.live_matrix()

    def run(self, spec, lower_bounds=None, deadline=None, _label="sd-procshard"):
        return self._engine._probe_worker(
            self._handle, spec, lower_bounds, deadline, _label
        )


class _ProxySnapshot:
    """The ``snap`` the reused serving loop sees: just a list of views."""

    __slots__ = ("views",)

    def __init__(self, views: List[_WorkerView]) -> None:
        self.views = views


class ProcessSnapshot:
    """A serve handle for the process backend (coalescer/server integration).

    Pinning acquires the coordinator lock, so the worker fleet cannot advance
    past the pinned LSN until :meth:`close` — pin, serve and close **must**
    happen on one thread (the coalescer's ``run_pinned`` does exactly that).
    ``version`` keys result caches: ``(flip_count, end_lsn)`` changes on
    every acknowledged write and every snapshot flip.
    """

    supports_deadline = True

    def __init__(self, engine: "ProcessShardedIndex") -> None:
        engine._lock.acquire()
        try:
            engine._check_closed()
            self._version = (engine._flip_count, engine._durable.end_lsn)
        except BaseException:
            engine._lock.release()
            raise
        self._engine = engine
        self._closed = False

    @property
    def version(self) -> Tuple[int, int]:
        return self._version

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._engine)

    def batch_query(self, queries, k=None, alpha=None, beta=None, deadline=None):
        if self._closed:
            raise RuntimeError("ProcessSnapshot is closed")
        spec = BatchQuerySpec.coerce(
            self._engine.repulsive,
            self._engine.attractive,
            self._engine.num_dims,
            queries,
            k=k,
            alpha=alpha,
            beta=beta,
        )
        return self._engine._serve_spec(spec, deadline=deadline)

    def query(self, query, k=None, alpha=None, beta=None):
        if self._closed:
            raise RuntimeError("ProcessSnapshot is closed")
        spec = ShardedIndex._coerce_single(self._engine, query, k, alpha, beta)
        return self._engine._serve_spec(spec).results[0]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._engine._lock.release()

    def __enter__(self) -> "ProcessSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class ProcessShardedIndex:
    """One worker process per shard, serving mmap'd snapshots scatter-gather.

    Construction mirrors :class:`~repro.core.sharding.ShardedIndex` (same
    dimension roles and sharding knobs, same query surface, bit-identical
    answers) plus the durability knobs: ``path`` roots the snapshot + WAL
    directory (a private temporary directory, removed on close, when omitted)
    and ``fsync`` selects the WAL commit policy.

    Writers apply to the in-process primary through a
    :class:`~repro.core.persistence.DurableIndex`; workers catch up by WAL
    tail replay at the next serve.  ``resilience`` defaults to a
    retry-free degrade policy so a killed worker costs one degraded response
    per open breaker, never a hang; pass ``resilience=None`` explicitly via
    :class:`~repro.serving.breaker.ResiliencePolicy` knobs to tune.
    """

    #: Seconds a worker may sit on one op (probe/sync/flip) before the
    #: coordinator declares it hung, kills it and degrades the shard.
    DEFAULT_OP_TIMEOUT = 30.0

    def __init__(
        self,
        data: np.ndarray,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        num_shards: int = 4,
        partitioner: str = "hash",
        range_dim: Optional[int] = None,
        path: Optional[Union[str, Path]] = None,
        fsync: str = "commit",
        resilience: Optional[ResiliencePolicy] = None,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        op_timeout: float = DEFAULT_OP_TIMEOUT,
        spawn_wait: Optional[float] = 60.0,
        **index_options,
    ) -> None:
        inner = ShardedIndex(
            data,
            repulsive=repulsive,
            attractive=attractive,
            num_shards=num_shards,
            partitioner=partitioner,
            range_dim=range_dim,
            **index_options,
        )
        self._init_from_engine(
            inner,
            path=path,
            fsync=fsync,
            resilience=resilience,
            parallel=parallel,
            max_workers=max_workers,
            op_timeout=op_timeout,
            spawn_wait=spawn_wait,
        )

    @classmethod
    def from_engine(
        cls,
        inner: ShardedIndex,
        path: Optional[Union[str, Path]] = None,
        fsync: str = "commit",
        resilience: Optional[ResiliencePolicy] = None,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        op_timeout: float = DEFAULT_OP_TIMEOUT,
        spawn_wait: Optional[float] = 60.0,
    ) -> "ProcessShardedIndex":
        """Wrap an existing (exclusively owned) ShardedIndex as the primary."""
        self = cls.__new__(cls)
        self._init_from_engine(
            inner,
            path=path,
            fsync=fsync,
            resilience=resilience,
            parallel=parallel,
            max_workers=max_workers,
            op_timeout=op_timeout,
            spawn_wait=spawn_wait,
        )
        return self

    def _init_from_engine(
        self,
        inner: ShardedIndex,
        *,
        path,
        fsync,
        resilience,
        parallel,
        max_workers,
        op_timeout,
        spawn_wait,
    ) -> None:
        self._inner = inner
        self.repulsive = inner.repulsive
        self.attractive = inner.attractive
        self.num_dims = inner.num_dims
        self.parallel = parallel
        self._max_workers = max_workers
        self._op_timeout = float(op_timeout)
        self.resilience = (
            resilience if resilience is not None else ResiliencePolicy(retry=None)
        )
        self._breakers = self.resilience.build_breakers(inner.num_shards)
        self.serve_stats: Dict[str, int] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._closed = False
        self._lock = threading.RLock()
        self._flip_count = 0
        self._serve_lsn = 0

        self._own_path = path is None
        self._path = Path(tempfile.mkdtemp(prefix="procshard-") if path is None else path)
        self._durable = DurableIndex.create(inner, self._path, fsync=fsync)
        self._snapshot_dir = self._current_snapshot_dir()
        self._mp = multiprocessing.get_context("spawn")
        self._workers = [_WorkerHandle(shard) for shard in range(inner.num_shards)]
        for handle in self._workers:
            self._spawn(handle)
        if spawn_wait:
            self.await_workers(spawn_wait)

    # ------------------------------------------------------------------ basics
    @property
    def num_shards(self) -> int:
        return self._inner.num_shards

    @property
    def path(self) -> Path:
        """The snapshot + WAL directory backing the worker fleet."""
        return self._path

    @property
    def end_lsn(self) -> int:
        """LSN of the last acknowledged mutation."""
        return self._durable.end_lsn

    @property
    def flip_count(self) -> int:
        """Snapshot-version flips broadcast so far."""
        return self._flip_count

    @property
    def rebalances(self) -> int:
        return self._inner.rebalances

    def __len__(self) -> int:
        return len(self._inner)

    def shard_sizes(self) -> List[int]:
        return self._inner.shard_sizes()

    def skew(self) -> float:
        return self._inner.skew()

    def point(self, row_id: int) -> np.ndarray:
        return self._inner.point(row_id)

    def stats(self):
        return self._inner.stats()

    def breaker_stats(self) -> Optional[List[Dict[str, object]]]:
        """Per-shard circuit-breaker counters (None without breakers)."""
        if self._breakers is None:
            return None
        return [breaker.stats() for breaker in self._breakers]

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker PIDs by shard (None for a currently-dead slot)."""
        return [
            handle.process.pid if handle.alive else None for handle in self._workers
        ]

    def _check_closed(self) -> None:
        if self._closed:
            raise RuntimeError("ProcessShardedIndex is closed")

    def _current_snapshot_dir(self) -> Path:
        name = (self._path / CURRENT_NAME).read_text(encoding="utf-8").strip()
        return self._path / name

    def _router_payload(self) -> Dict:
        router = self._inner.router
        return {
            "num_shards": router.num_shards,
            "partitioner": router.partitioner,
            "range_dim": router.range_dim,
            "boundaries": None
            if router.boundaries is None
            else [float(b) for b in router.boundaries],
            "salt": router.salt,
        }

    # ------------------------------------------------------------- worker fleet
    def _spawn(self, handle: _WorkerHandle) -> None:
        boot = {
            "shard_dir": str(self._snapshot_dir / f"shard-{handle.shard}"),
            "wal_path": str(self._path / WAL_NAME),
            "router": self._router_payload(),
            "lsn": self._durable.wal.base_lsn,
        }
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_worker_main,
            args=(handle.shard, child_conn, boot),
            daemon=True,
            name=f"procshard-{handle.shard}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.ready = False
        handle.lsn = boot["lsn"]

    def _mark_dead(self, handle: _WorkerHandle, kill: bool = False) -> None:
        handle.ready = False
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        if handle.process is not None:
            if kill and handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=1.0)

    def _respawn_dead(self) -> None:
        for handle in self._workers:
            if handle.conn is None or not handle.alive:
                self._mark_dead(handle)
                self._spawn(handle)

    def _try_finish_boot(self, handle: _WorkerHandle, timeout: float = 0.0) -> bool:
        """Consume a pending boot handshake; True once the worker is ready."""
        if handle.ready:
            return True
        if handle.conn is None:
            return False
        try:
            if not handle.conn.poll(timeout):
                return False
            seq, status, payload = handle.conn.recv()
        except (EOFError, OSError):
            self._mark_dead(handle)
            return False
        if seq != 0 or status != "ready":
            self._mark_dead(handle, kill=True)
            return False
        handle.ready = True
        handle.lsn = int(payload)
        return True

    def await_workers(self, timeout: float = 60.0) -> bool:
        """Block until every worker slot is booted (True) or ``timeout`` hits.

        Dead slots are respawned while waiting, so this also serves as the
        deterministic "wait for recovery" hook in chaos tests.
        """
        limit = time.monotonic() + timeout
        while True:
            with self._lock:
                self._check_closed()
                self._respawn_dead()
                pending = [h for h in self._workers if not self._try_finish_boot(h)]
            if not pending:
                return True
            if time.monotonic() >= limit:
                return False
            time.sleep(0.02)

    # ------------------------------------------------------------------ probes
    def _rpc(self, handle: _WorkerHandle, op: str, payload, deadline=None):
        """One request/reply exchange; WorkerDied on crash, hang, or lag."""
        with handle.lock:
            if handle.conn is None or not handle.ready:
                raise WorkerDied(f"shard {handle.shard} worker is not serving")
            handle.seq += 1
            seq = handle.seq
            try:
                handle.conn.send((seq, op, payload))
            except (OSError, ValueError, BrokenPipeError) as exc:
                self._mark_dead(handle)
                raise WorkerDied(f"shard {handle.shard} worker pipe broke") from exc
            started = time.monotonic()
            while True:
                wait = self._op_timeout - (time.monotonic() - started)
                if deadline is not None:
                    wait = min(wait, deadline.remaining())
                if wait <= 0:
                    if deadline is not None and deadline.expired:
                        raise DeadlineExceeded(deadline.budget)
                    self._mark_dead(handle, kill=True)
                    raise WorkerDied(
                        f"shard {handle.shard} worker hung past "
                        f"{self._op_timeout:.1f}s op timeout"
                    )
                try:
                    if not handle.conn.poll(wait):
                        continue
                    reply_seq, status, reply = handle.conn.recv()
                except (EOFError, OSError) as exc:
                    self._mark_dead(handle)
                    raise WorkerDied(f"shard {handle.shard} worker died") from exc
                if reply_seq < seq:
                    continue  # stale reply from a probe we timed out earlier
                if status == "ok":
                    return reply
                if status == "deadline":
                    raise DeadlineExceeded(reply)
                raise RuntimeError(f"shard {handle.shard} worker error: {reply}")

    def _probe_worker(self, handle, spec, lower_bounds, deadline, label):
        if handle.lsn != self._serve_lsn:
            raise WorkerDied(
                f"shard {handle.shard} worker is at lsn {handle.lsn}, "
                f"serve needs {self._serve_lsn}"
            )
        budget = None if deadline is None else deadline.remaining()
        bounds = None if lower_bounds is None else np.asarray(lower_bounds, dtype=float)
        return self._rpc(
            handle, "probe", (spec, bounds, budget, label), deadline=deadline
        )

    def _sync_workers(self, target_lsn: int) -> None:
        for handle in self._workers:
            if not self._try_finish_boot(handle):
                continue
            if handle.lsn >= target_lsn:
                continue
            try:
                handle.lsn = int(self._rpc(handle, "sync", target_lsn))
            except (WorkerDied, RuntimeError):
                # Leave the slot lagging/dead; the probe path degrades it and
                # the next serve respawns the process.
                self._mark_dead(handle, kill=True)

    # ----------------------------------------------------------------- serving
    def _executor_instance(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError(
                "ProcessShardedIndex is closed; its probe executor cannot restart"
            )
        if self._executor is None:
            workers = self._max_workers or self.num_shards
            self._executor = ThreadPoolExecutor(
                max_workers=max(1, min(workers, self.num_shards)),
                thread_name_prefix="procshard-probe",
            )
        return self._executor

    def _serve_spec(self, spec: BatchQuerySpec, deadline=None) -> BatchResult:
        with self._lock:
            self._check_closed()
            # The WAL's appends are flushed on every journal write, so the
            # target LSN's records are already on disk for worker tails.
            target = self._durable.end_lsn
            self._respawn_dead()
            self._sync_workers(target)
            self._serve_lsn = target
            snap = self._inner.snapshot()
            try:
                proxy = _ProxySnapshot(
                    [
                        _WorkerView(self, handle, local)
                        for handle, local in zip(self._workers, snap.views)
                    ]
                )
                # The thread engine's scatter-gather loop, reused verbatim
                # (duck-typed self): bound-ordered visitation, cross-shard
                # k-th pruning, breaker/retry/degradation semantics — with
                # probes crossing the process boundary instead of the GIL.
                return ShardedIndex._serve_snapshot(self, proxy, spec, deadline=deadline)
            finally:
                snap.close()

    def query(
        self,
        query: Union[SDQuery, Sequence[float]],
        k: Optional[int] = None,
        alpha: Optional[Sequence[float]] = None,
        beta: Optional[Sequence[float]] = None,
    ) -> TopKResult:
        """Answer one SD-Query across the worker fleet (same inputs as SDIndex)."""
        spec = ShardedIndex._coerce_single(self, query, k, alpha, beta)
        return self._serve_spec(spec).results[0]

    def batch_query(
        self, queries, k=None, alpha=None, beta=None, deadline=None
    ) -> BatchResult:
        """Answer a batch of SD-Queries (same inputs as ``ShardedIndex``)."""
        spec = BatchQuerySpec.coerce(
            self.repulsive,
            self.attractive,
            self.num_dims,
            queries,
            k=k,
            alpha=alpha,
            beta=beta,
        )
        return self._serve_spec(spec, deadline=deadline)

    def snapshot(self) -> ProcessSnapshot:
        """A serve handle for coalescer-style pin/serve/close on one thread."""
        return ProcessSnapshot(self)

    # ----------------------------------------------------------------- writes
    def insert(self, point, row_id: Optional[int] = None) -> int:
        with self._lock:
            self._check_closed()
            return self._durable.insert(point, row_id=row_id)

    def bulk_insert(self, points, row_ids: Optional[Sequence[int]] = None) -> List[int]:
        with self._lock:
            self._check_closed()
            return self._durable.bulk_insert(points, row_ids=row_ids)

    def delete(self, row_id: int) -> None:
        with self._lock:
            self._check_closed()
            self._durable.delete(row_id)

    def bulk_delete(self, row_ids: Sequence[int]) -> None:
        with self._lock:
            self._check_closed()
            self._durable.bulk_delete(row_ids)

    # ------------------------------------------------------------------- flips
    def checkpoint(self) -> Path:
        """Stream a fresh snapshot and flip every worker onto it."""
        with self._lock:
            self._check_closed()
            return self._flip()

    def rebalance(self) -> bool:
        """Journaled rebalance followed by a mandatory snapshot flip.

        Rebalances reshuffle rows across shards, which a worker cannot replay
        incrementally (its sub-snapshot *is* its shard assignment) — so the
        new topology ships as a whole new snapshot version.
        """
        with self._lock:
            self._check_closed()
            moved = self._durable.rebalance()
            self._flip()
            return moved

    def maybe_rebalance(self) -> bool:
        with self._lock:
            self._check_closed()
            before = self._inner.rebalances
            moved = self._durable.maybe_rebalance()
            if self._inner.rebalances != before:
                self._flip()
            return moved

    def _flip(self) -> Path:
        snapshot_dir = self._durable.checkpoint()
        self._snapshot_dir = snapshot_dir
        # Under this lock no mutation raced the checkpoint, so the WAL was
        # rotated to exactly the snapshot's LSN.
        lsn = self._durable.wal.base_lsn
        self._flip_count += 1
        router_payload = self._router_payload()
        for handle in self._workers:
            if self._try_finish_boot(handle):
                try:
                    shard_dir = str(snapshot_dir / f"shard-{handle.shard}")
                    handle.lsn = int(
                        self._rpc(handle, "flip", (shard_dir, lsn, router_payload))
                    )
                    continue
                except (WorkerDied, RuntimeError):
                    pass
            # Not booted, lagging, or mid-flip failure: restart from the new
            # snapshot (its old boot directory may already be pruned).
            self._mark_dead(handle, kill=True)
            self._spawn(handle)
        return snapshot_dir

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the worker fleet and tear down the durable state (idempotent).

        An owned (temporary) snapshot directory is removed; an explicit
        ``path`` is left on disk so a later coordinator can recover from it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for handle in workers:
            if handle.conn is not None:
                try:
                    handle.conn.send((handle.seq + 1, "stop", None))
                except (OSError, ValueError, BrokenPipeError):
                    pass
        for handle in workers:
            if handle.process is not None:
                handle.process.join(timeout=5.0)
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=5.0)
            if handle.conn is not None:
                try:
                    handle.conn.close()
                except OSError:
                    pass
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self._durable.close()
        if self._own_path:
            shutil.rmtree(self._path, ignore_errors=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "ProcessShardedIndex":
        return self

    def __exit__(self, *_exc) -> bool:
        self.close()
        return False
