"""Core SD-Query algorithms: scoring, projection geometry, isoline envelopes and indexes.

The public entry point for most users is :class:`repro.core.sdindex.SDIndex`,
re-exported from the top-level :mod:`repro` package.
"""

from repro.core.epoch import Epoch, EpochManager
from repro.core.persistence import (
    DurableIndex,
    SnapshotFormatError,
    WriteAheadLog,
    load_engine,
    save_engine,
)
from repro.core.query import DimensionRole, QueryWeights, SDQuery, sd_score, sd_scores
from repro.core.results import IndexStats, Match, TopKResult
from repro.core.sdindex import SDIndex, SDIndexSnapshot
from repro.core.sharding import ShardedIndex, ShardedSnapshot, ShardedXYIndex, ShardRouter
from repro.core.top1 import Top1Index, Top1Snapshot
from repro.core.topk import TopKIndex, TopKSnapshot

__all__ = [
    "DimensionRole",
    "QueryWeights",
    "SDQuery",
    "sd_score",
    "sd_scores",
    "Match",
    "TopKResult",
    "IndexStats",
    "Epoch",
    "EpochManager",
    "DurableIndex",
    "SnapshotFormatError",
    "WriteAheadLog",
    "load_engine",
    "save_engine",
    "SDIndex",
    "SDIndexSnapshot",
    "ShardedIndex",
    "ShardedSnapshot",
    "ShardedXYIndex",
    "ShardRouter",
    "Top1Index",
    "Top1Snapshot",
    "TopKIndex",
    "TopKSnapshot",
]
