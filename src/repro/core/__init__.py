"""Core SD-Query algorithms: scoring, projection geometry, isoline envelopes and indexes.

The public entry point for most users is :class:`repro.core.sdindex.SDIndex`,
re-exported from the top-level :mod:`repro` package.
"""

from repro.core.query import DimensionRole, QueryWeights, SDQuery, sd_score, sd_scores
from repro.core.results import IndexStats, Match, TopKResult
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex, ShardedXYIndex, ShardRouter
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex

__all__ = [
    "DimensionRole",
    "QueryWeights",
    "SDQuery",
    "sd_score",
    "sd_scores",
    "Match",
    "TopKResult",
    "IndexStats",
    "SDIndex",
    "ShardedIndex",
    "ShardedXYIndex",
    "ShardRouter",
    "Top1Index",
    "TopKIndex",
]
