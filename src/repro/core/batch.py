"""Vectorized batch query execution with shared-traversal query sessions.

Answering SD-Queries one at a time pays the full Python dispatch cost of the
threshold aggregation per query: every projection-stream pull is an interpreter
heap operation and every candidate row is scored individually.  When a service
answers many queries at once (the batch-serving workload), most of that work is
redundant — queries share the index structures, the angle grid and, for queries
with similar weight vectors, even the useful part of the tree traversal.  This
module amortizes it:

* **Shared traversal.**  Each 2D projection tree is flattened once per
  :class:`QuerySession` into leaf-aligned numpy arrays (live rows, coordinates
  and the per-angle intercept bounds the tree nodes store).  Queries whose
  projection angle falls in the same bracket of the angle grid form an *angular
  partition*; the bound resolution onto the bracketing indexed angles (the
  linear interpolation of :class:`repro.core.projection_tree._BoundResolver`)
  is evaluated for a whole partition in one kernel.
* **Vectorized kernels.**  Query angles, per-leaf score bounds, sorted-column
  probes (nearest/farthest distances and candidate ranges via
  ``np.searchsorted``) and exact candidate scoring each run as single numpy
  operations over all queries, or all candidates of one query, instead of
  per-row Python.
* **Filter-and-verify exactness.**  A seeded sample of the dataset gives every
  query ``j`` a lower bound ``L_j`` on its k-th best score.  A point can only
  enter the answer of query ``j`` if the admissible upper bound of its leaf in
  the enumeration subproblem, plus the maximum possible contribution of every
  other subproblem, reaches ``L_j`` — all other leaves are pruned without being
  read.  Survivors are scored with the exact Equation 3 kernel (same
  floating-point term order as :func:`repro.core.query.make_fast_scorer`, so
  scores are bit-identical to the sequential path) and the top ``k`` are
  selected with the deterministic ``(-score, row_id)`` tie-break.

* **Tightened verification.**  The seeded bound alone over-fetches (leaf bounds
  are coarse, and summing per-pair leaf bounds assumes one point is best in
  every pair's leaf at once).  Before exact scoring the engine first swaps
  each survivor's summed-leaf bound for a *tight* bound — the first pair's
  exact partial score plus the remaining pairs' leaf bounds (stage 2a) —
  then exact-scores the best few candidates *by tight bound*, tightens the
  pruning threshold to their exact k-th best, and re-prunes the rest
  (stage 2b).  The leaf bounds themselves come from a refined *bound grid*
  (``_BOUND_GRID_REFINE``) elementwise-min'd with a per-leaf second-pass box
  bound at the exact query angle.  DESIGN.md's "The bound hierarchy" section
  walks each layer and its admissibility argument; the net over-fetch versus
  the sequential oracle is ~1.2x, CI-gated at 2.5
  (``REPRO_BENCH_BATCH_MAX_OVERFETCH``).
* **Incremental maintenance.**  A :class:`QuerySession` is no longer a
  throw-away snapshot: the owning aggregator patches every live session in
  place on ``insert``/``delete``/``bulk_insert``/``bulk_delete`` — appending
  leaf-assigned rows, loosening the affected per-leaf bounds, tombstoning
  deletions through a validity mask — and the session reflattens itself lazily
  only once accumulated garbage/imbalance crosses a threshold, mirroring the
  projection tree's own rebuild policy (see DESIGN.md).

This makes the flattened arrays the primary execution substrate: the ``m = 1``
fast path of ``SDIndex.query`` runs through the same kernels and stays
bit-identical in score to the legacy threshold traversal, which remains
available as the oracle (``engine="legacy"``).

Exactness note: the single-query threshold algorithm resolves an exact score
tie *at the k-th boundary* in favor of whichever row its traversal surfaced
first; the batch engine resolves the same tie by the smaller row id.  For every
query whose k-th and (k+1)-th best scores differ — in particular any workload
on continuous random data — the two paths return identical row ids and
bit-identical scores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.core.angles import refine_angles
from repro.core.deadline import Deadline
from repro.core.epoch import EpochManager, validate_concurrency
from repro.core.geometry import Angle
from repro.core.query import SDQuery
from repro.core.results import BatchResult, Match, TopKResult

#: Fault point at batch-kernel dispatch: fires once per ``_execute`` before
#: any state is read, so an injected raise or stall models a stuck kernel
#: without ever producing a torn result (DESIGN.md §9).
_FP_KERNEL = faults.declare_fault_point(
    "batch.kernel", "batch kernel dispatch over one pinned session state"
)

__all__ = ["BatchQuerySpec", "QuerySession", "SessionSnapshot", "SessionState"]

# Bounds are stored per angle as (max w_a, min w_a, max w_b, min w_b); keep the
# same order as repro.core.projection_tree.
_MAX_A, _MIN_A, _MAX_B, _MIN_B = range(4)

#: Matches the exact-angle tolerance of ``_BoundResolver``.
_ANGLE_TOLERANCE = 1e-12

#: Matches the component snap tolerance of :class:`repro.core.geometry.Angle`.
_SNAP_TOLERANCE = 1e-12

#: Default number of sampled rows used to seed the per-query pruning bound.
_SEED_POOL = 1024

#: Relative slack subtracted from the pruning bound so float rounding in the
#: bound interpolation can never drop a boundary candidate.  Pruning with a
#: slightly lower bound only admits extra candidates; exactness is unaffected.
_PRUNE_SLACK = 1e-9

#: Additional slack per unit of ``weight * coordinate magnitude``.  The bound
#: arithmetic subtracts intercepts of that magnitude, so its rounding error is
#: a few ulps of it — e.g. ~2e-6 absolute at coordinates around 1e10 — which a
#: purely score-relative slack would miss.  A few hundred ulps of headroom
#: keeps pruning admissible at any magnitude while staying far too small to
#: hurt pruning power.
_MAGNITUDE_SLACK = 1e-12

#: Verification stage: when more candidates than ``max(_VERIFY_POOL, 4k)``
#: survive the seeded filter, exact-score only that many best-by-bound first,
#: tighten the threshold to their exact k-th best and re-prune before the full
#: verify pass.  Cuts the over-fetch of the coarse leaf bounds by ~10x.
_VERIFY_POOL = 64

#: Bound-grid refinement factor: every bracket of the partition grid is
#: subdivided into this many arcs for the *stored* per-leaf bounds (see
#: :func:`repro.core.angles.refine_angles` and DESIGN.md's bound-hierarchy
#: section).  A finer bound grid shrinks the interpolation cone of
#: :func:`leaf_score_bounds` — the dominant over-fetch term — at a pure
#: memory cost (``4 * num_angles`` floats per leaf); the partition grid that
#: shapes the projection trees is untouched, so refinement never rebuilds.
_BOUND_GRID_REFINE = 4

#: Fraction of live rows worth of accumulated garbage (tombstones) plus
#: imbalance (bound-loosening appends) a session tolerates before it
#: reflattens, mirroring ``ProjectionTree.rebuild_threshold``.
_REFLATTEN_THRESHOLD = 0.25


def _refine_candidates(
    positions: np.ndarray,
    bounds: np.ndarray,
    k_eff: int,
    score_fn,
    weight_scale: float,
    magnitude: float,
) -> Tuple[np.ndarray, Optional[float], int]:
    """Second-stage filter: tighten the pruning bound with a few exact scores.

    ``bounds`` must be admissible per-candidate upper bounds aligned with
    ``positions``.  Exact-scores the best ``max(_VERIFY_POOL, 4k)`` candidates
    by bound; their k-th best exact score is a valid lower bound on the true
    k-th best, so re-pruning against it (minus the usual float slack) keeps
    every possible answer — including exact ties at the boundary — while
    dropping most of the seeded stage's over-fetch.  Returns the surviving
    positions, the tightened threshold (None when the candidate set was small
    enough to skip refinement) and the number of head candidates scored.
    """
    limit = max(_VERIFY_POOL, 4 * k_eff)
    if len(positions) <= limit:
        return positions, None, 0
    head = np.argpartition(-bounds, limit - 1)[:limit]
    head_scores = score_fn(positions[head])
    kth = np.partition(head_scores, limit - k_eff)[limit - k_eff]
    refined = _prune_bound(
        np.asarray([kth]), np.asarray([weight_scale]), magnitude
    )[0]
    return positions[bounds >= refined], float(refined), limit


def _prune_bound(
    kth_lower_bound: np.ndarray,
    weight_scale: np.ndarray,
    magnitude: float,
) -> np.ndarray:
    """The pruning threshold: the seeded k-th best score minus float slack.

    ``weight_scale`` is each query's total weight mass and ``magnitude`` the
    largest absolute coordinate involved; their product bounds the scale of
    the intercept arithmetic whose rounding the slack must absorb.
    """
    finite = np.where(np.isfinite(kth_lower_bound), kth_lower_bound, 0.0)
    slack = _PRUNE_SLACK * (1.0 + np.abs(finite))
    slack = slack + _MAGNITUDE_SLACK * weight_scale * magnitude
    return kth_lower_bound - slack


def _seeded_threshold(
    score_sample,
    ks_eff: np.ndarray,
    n_live: int,
    seed_pool: int,
    weight_scale: np.ndarray,
    magnitude: float,
) -> np.ndarray:
    """Per-query pruning thresholds from an evenly spaced seed sample.

    ``score_sample(positions)`` must return the ``(m, pool)`` exact scores of
    the sampled positions.  Each query's k-th best seed score is a lower bound
    on its true k-th best, loosened by :func:`_prune_bound`'s float slack so
    pruning stays admissible.  Shared by :meth:`QuerySession.run` and
    :func:`batch_topk_2d` so the two engines can never drift apart here.
    """
    sample = np.unique(
        np.linspace(0, n_live - 1, min(n_live, seed_pool)).astype(np.int64)
    )
    seed_scores = score_sample(sample)
    pool = len(sample)
    kth_lower = np.full(len(ks_eff), -math.inf)
    for j in range(len(ks_eff)):
        k_j = int(ks_eff[j])
        if pool >= k_j:
            kth_lower[j] = np.partition(seed_scores[j], pool - k_j)[pool - k_j]
    return _prune_bound(kth_lower, weight_scale, magnitude)


def select_topk(scores: np.ndarray, rows: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best entries by ``(-score, row_id)``.

    Keeps every tie of the k-th score in play before the final deterministic
    sort, so the selection never depends on ``argpartition``'s arbitrary
    ordering of equal keys.
    """
    count = len(scores)
    k = min(k, count)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    negated = -scores
    if count > k:
        kth_value = np.partition(negated, k - 1)[k - 1]
        keep = np.flatnonzero(negated <= kth_value)
        order = np.lexsort((rows[keep], negated[keep]))
        return keep[order[:k]]
    order = np.lexsort((rows, negated))
    return order[:k]


def _coerce_ks(k, num_queries: int) -> np.ndarray:
    """Normalize ``k`` to a validated per-query ``(m,)`` vector of ints >= 1."""
    ks = np.asarray(k, dtype=np.int64)
    if ks.ndim == 0:
        ks = np.full(num_queries, int(ks), dtype=np.int64)
    elif ks.shape != (num_queries,):
        raise ValueError(f"k must be a scalar or an (m,) vector, got shape {ks.shape}")
    if np.any(ks < 1):
        raise ValueError("every k must be >= 1")
    return ks


def coerce_point_batch(qx, qy, k) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalize ``(qx, qy, k)`` for the 2D batch entry points.

    Shared by :func:`batch_topk_2d` and ``Top1Index.batch_query`` so the two
    front doors validate identically.  Returns 1-d ``qx``/``qy`` arrays and a
    per-query ``ks`` vector (``k`` scalars broadcast; every k must be >= 1).
    """
    qx = np.atleast_1d(np.asarray(qx, dtype=float))
    qy = np.atleast_1d(np.asarray(qy, dtype=float))
    if qx.shape != qy.shape or qx.ndim != 1:
        raise ValueError("qx and qy must be 1-d arrays of equal length")
    return qx, qy, _coerce_ks(k, len(qx))


def _normalized_components(
    alpha: np.ndarray, beta: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``Angle.from_weights``: ``(cos, sin, scale)`` with snapping."""
    scale = np.hypot(alpha, beta)
    cos = alpha / scale
    sin = beta / scale
    snap_cos = np.abs(cos) < _SNAP_TOLERANCE
    snap_sin = np.abs(sin) < _SNAP_TOLERANCE
    cos = np.where(snap_cos, 0.0, np.where(snap_sin, 1.0, cos))
    sin = np.where(snap_cos, 1.0, np.where(snap_sin, 0.0, sin))
    return cos, sin, scale


# --------------------------------------------------------------------- queries
def _weight_matrix(
    values, num_queries: int, width: int, name: str
) -> np.ndarray:
    """Normalize a weight argument to a positive ``(m, width)`` float matrix."""
    if values is None:
        return np.ones((num_queries, width), dtype=float)
    array = np.asarray(values, dtype=float)
    if array.ndim == 0:
        array = np.full((num_queries, width), float(array))
    elif array.ndim == 1:
        if array.shape[0] != width:
            raise ValueError(
                f"{name} must have {width} entries per query, got {array.shape[0]}"
            )
        array = np.broadcast_to(array, (num_queries, width)).copy()
    elif array.ndim == 2:
        if array.shape != (num_queries, width):
            raise ValueError(
                f"{name} must have shape ({num_queries}, {width}), got {array.shape}"
            )
    else:
        raise ValueError(f"{name} must be a scalar, vector or (m, {width}) matrix")
    if not np.all(np.isfinite(array)) or np.any(array <= 0.0):
        raise ValueError(f"{name} weights must be finite and > 0")
    return array


def _reorder_columns(
    weights: np.ndarray, from_dims: Sequence[int], to_dims: Sequence[int]
) -> np.ndarray:
    """Reorder per-dimension weight columns from one dimension order to another."""
    if tuple(from_dims) == tuple(to_dims):
        return weights
    column_of = {dim: i for i, dim in enumerate(from_dims)}
    return weights[:, [column_of[dim] for dim in to_dims]]


@dataclass
class BatchQuerySpec:
    """A normalized batch of SD-Queries sharing one set of dimension roles.

    ``alpha``/``beta`` columns follow the order of ``repulsive``/``attractive``
    exactly, which is also the floating-point term order of the scoring kernel.
    """

    points: np.ndarray  # (m, d)
    ks: np.ndarray  # (m,)
    alpha: np.ndarray  # (m, |repulsive|)
    beta: np.ndarray  # (m, |attractive|)
    repulsive: Tuple[int, ...]
    attractive: Tuple[int, ...]
    #: Per-query (repulsive, attractive) dimension orders when queries declared
    #: their roles in a different order than the index; None means every query
    #: uses the index order.  Exact scoring accumulates terms in each query's
    #: own order so batch scores stay bit-identical to the sequential path.
    orders: Optional[List[Tuple[Tuple[int, ...], Tuple[int, ...]]]] = None

    def __len__(self) -> int:
        return len(self.points)

    def term_order(self, j: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """The (repulsive, attractive) term order of query ``j``."""
        if self.orders is None:
            return self.repulsive, self.attractive
        return self.orders[j]

    def order_groups(self) -> Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], np.ndarray]:
        """Query indices grouped by term-order signature (usually one group)."""
        if self.orders is None:
            return {
                (self.repulsive, self.attractive): np.arange(len(self), dtype=np.int64)
            }
        grouped: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], List[int]] = {}
        for j, order in enumerate(self.orders):
            grouped.setdefault(order, []).append(j)
        return {
            order: np.asarray(members, dtype=np.int64)
            for order, members in grouped.items()
        }

    @classmethod
    def coerce(
        cls,
        repulsive: Sequence[int],
        attractive: Sequence[int],
        num_dims: int,
        queries,
        k=None,
        alpha=None,
        beta=None,
    ) -> "BatchQuerySpec":
        """Build a spec from an ``(m, d)`` array, SDQuery sequence or batch workload.

        * ``(m, d)`` array: ``k`` is required; ``alpha``/``beta`` may be scalars,
          per-dimension vectors or ``(m, dims)`` matrices.
        * sequence of :class:`SDQuery`: roles must match; per-query ``k`` and
          weights are taken from the queries (``k``/``alpha``/``beta`` must be
          omitted).
        * an object with ``points``/``ks``/``alphas``/``betas`` attributes (a
          :class:`repro.workloads.workload.BatchWorkload`).
        """
        repulsive = tuple(int(d) for d in repulsive)
        attractive = tuple(int(d) for d in attractive)
        if hasattr(queries, "points") and hasattr(queries, "ks"):
            workload = queries
            if k is not None or alpha is not None or beta is not None:
                raise ValueError("pass either a batch workload or k/weights, not both")
            if set(workload.repulsive) != set(repulsive) or set(
                workload.attractive
            ) != set(attractive):
                raise ValueError(
                    "workload dimension roles do not match the index roles"
                )
            points = np.asarray(workload.points, dtype=float)
            if points.ndim != 2 or points.shape[1] != num_dims:
                raise ValueError(
                    f"workload points must have shape (m, {num_dims}), got {points.shape}"
                )
            if not np.all(np.isfinite(points)):
                raise ValueError("query coordinates must be finite")
            ks = np.asarray(workload.ks, dtype=np.int64)
            if ks.shape != (len(points),):
                raise ValueError(
                    f"workload ks must have shape ({len(points)},), got {ks.shape}"
                )
            if np.any(ks < 1):
                raise ValueError("every k must be >= 1")
            raw_alphas = np.asarray(workload.alphas, dtype=float)
            raw_betas = np.asarray(workload.betas, dtype=float)
            for name, weights, width in (
                ("alpha", raw_alphas, len(repulsive)),
                ("beta", raw_betas, len(attractive)),
            ):
                if weights.shape != (len(points), width):
                    raise ValueError(
                        f"workload {name}s must have shape ({len(points)}, {width}), "
                        f"got {weights.shape}"
                    )
                if not np.all(np.isfinite(weights)) or np.any(weights <= 0.0):
                    raise ValueError(f"{name} weights must be finite and > 0")
            alphas = _reorder_columns(raw_alphas, workload.repulsive, repulsive)
            betas = _reorder_columns(raw_betas, workload.attractive, attractive)
            workload_order = (
                tuple(int(d) for d in workload.repulsive),
                tuple(int(d) for d in workload.attractive),
            )
            orders = (
                None
                if workload_order == (repulsive, attractive)
                else [workload_order] * len(points)
            )
            return cls(points, ks, alphas, betas, repulsive, attractive, orders=orders)

        if not isinstance(queries, np.ndarray) and len(queries) == 0:
            return cls(
                points=np.empty((0, num_dims), dtype=float),
                ks=np.empty(0, dtype=np.int64),
                alpha=np.empty((0, len(repulsive)), dtype=float),
                beta=np.empty((0, len(attractive)), dtype=float),
                repulsive=repulsive,
                attractive=attractive,
            )
        if len(queries) and isinstance(queries[0], SDQuery):
            if k is not None or alpha is not None or beta is not None:
                raise ValueError("pass either SDQuery objects or k/weights, not both")
            points = np.empty((len(queries), num_dims), dtype=float)
            ks = np.empty(len(queries), dtype=np.int64)
            alphas = np.empty((len(queries), len(repulsive)), dtype=float)
            betas = np.empty((len(queries), len(attractive)), dtype=float)
            orders: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
            for j, query in enumerate(queries):
                if set(query.repulsive) != set(repulsive) or set(
                    query.attractive
                ) != set(attractive):
                    raise ValueError(
                        "query dimension roles do not match the index roles"
                    )
                if query.num_dims != num_dims:
                    raise ValueError(
                        f"query {j} has {query.num_dims} dimensions, expected {num_dims}"
                    )
                points[j] = query.point
                ks[j] = query.k
                alpha_of = dict(zip(query.repulsive, query.alpha))
                beta_of = dict(zip(query.attractive, query.beta))
                alphas[j] = [alpha_of[dim] for dim in repulsive]
                betas[j] = [beta_of[dim] for dim in attractive]
                orders.append((query.repulsive, query.attractive))
            if all(order == (repulsive, attractive) for order in orders):
                return cls(points, ks, alphas, betas, repulsive, attractive)
            return cls(points, ks, alphas, betas, repulsive, attractive, orders=orders)

        points = np.atleast_2d(np.asarray(queries, dtype=float))
        if points.ndim != 2 or points.shape[1] != num_dims:
            raise ValueError(
                f"query points must have shape (m, {num_dims}), got {points.shape}"
            )
        if not np.all(np.isfinite(points)):
            raise ValueError("query coordinates must be finite")
        m = len(points)
        if k is None:
            raise ValueError("k is required when querying with raw points")
        ks = _coerce_ks(k, m)
        alphas = _weight_matrix(alpha, m, len(repulsive), "alpha")
        betas = _weight_matrix(beta, m, len(attractive), "beta")
        return cls(points, ks, alphas, betas, repulsive, attractive)

    def subset(self, js) -> "BatchQuerySpec":
        """The spec restricted to the query indices ``js`` (order preserved).

        The sharded serving engine uses this to hand each shard probe only the
        queries that still need that shard, without re-validating the batch.
        """
        js = np.asarray(js, dtype=np.int64)
        return BatchQuerySpec(
            points=self.points[js],
            ks=self.ks[js],
            alpha=self.alpha[js],
            beta=self.beta[js],
            repulsive=self.repulsive,
            attractive=self.attractive,
            orders=None
            if self.orders is None
            else [self.orders[int(j)] for j in js],
        )

    def query(self, j: int) -> SDQuery:
        """Single-query view of batch member ``j`` (for oracles and tests)."""
        return SDQuery.simple(
            point=self.points[j],
            repulsive=self.repulsive,
            attractive=self.attractive,
            k=int(self.ks[j]),
            alpha=self.alpha[j],
            beta=self.beta[j],
        )


# ------------------------------------------------------------- tree flattening
class _FlatTree:
    """A projection tree flattened into leaf-aligned numpy arrays.

    This is the shared-traversal state: the tree is walked exactly once (in x
    order) and every batch query afterwards works on the arrays — live rows,
    coordinates, per-leaf/per-angle intercept bounds and the position-to-leaf
    map used to expand surviving leaves into candidate positions.

    The flat view is *maintained*, not disposable: :meth:`append_points` adds
    new rows by assigning them to the covering leaf and loosening that leaf's
    per-angle bounds (admissible, merely looser), and :meth:`tombstone_rows`
    marks deletions in the ``live`` validity mask.  Both accumulate garbage
    that :meth:`garbage_fraction` reports so owners can reflatten past a
    threshold (see DESIGN.md).
    """

    __slots__ = (
        "angles",
        "rows",
        "x",
        "y",
        "live",
        "leaf_bounds",
        "leaf_min_x",
        "leaf_max_x",
        "leaf_min_y",
        "leaf_max_y",
        "leaf_of_pos",
        "num_leaves",
        "appended",
        "dead",
        "grid_cos",
        "grid_sin",
        "grid_rad",
        "_pos_of_row",
    )

    def __init__(self, tree, bound_refine: Optional[int] = None) -> None:
        # The *bound grid*: the tree's partition grid with every bracket
        # subdivided.  Stored bounds are recomputed from the points on this
        # finer grid, decoupling bound resolution from the partition grid —
        # refinement costs memory, never a tree rebuild (DESIGN.md).
        self.angles: Tuple[Angle, ...] = refine_angles(
            tree.angles, _BOUND_GRID_REFINE if bound_refine is None else bound_refine
        )
        leaves = []
        stack = [tree._root] if tree._root is not None else []
        while stack:
            node = stack.pop()
            if node.is_leaf:
                if node.count > 0:
                    leaves.append(node)
            else:
                stack.extend(reversed(node.children))

        tombstones = tree._tombstones
        pristine = not tombstones and tree._num_extras == 0 and all(
            not leaf.extra_rows for leaf in leaves
        )
        if pristine:
            # Bulk-loaded tree with no updates: the sorted arrays are already
            # leaf-aligned, so the flat view is zero-copy.
            self.rows = tree._rows
            self.x = tree._x
            self.y = tree._y
            sizes = [leaf.stop - leaf.start for leaf in leaves]
        else:
            tombstone_array = (
                np.fromiter(tombstones, dtype=np.int64, count=len(tombstones))
                if tombstones
                else None
            )
            row_parts: List[np.ndarray] = []
            x_parts: List[np.ndarray] = []
            y_parts: List[np.ndarray] = []
            sizes = []
            for leaf in leaves:
                part_rows: List[np.ndarray] = []
                part_x: List[np.ndarray] = []
                part_y: List[np.ndarray] = []
                if leaf.stop > leaf.start:
                    slice_rows = tree._rows[leaf.start : leaf.stop]
                    slice_x = tree._x[leaf.start : leaf.stop]
                    slice_y = tree._y[leaf.start : leaf.stop]
                    if tombstone_array is not None:
                        live = ~np.isin(slice_rows, tombstone_array)
                        slice_rows = slice_rows[live]
                        slice_x = slice_x[live]
                        slice_y = slice_y[live]
                    part_rows.append(slice_rows)
                    part_x.append(slice_x)
                    part_y.append(slice_y)
                if leaf.extra_rows:
                    keep = [
                        i
                        for i, row in enumerate(leaf.extra_rows)
                        if row not in tombstones
                    ]
                    if keep:
                        part_rows.append(
                            np.array([leaf.extra_rows[i] for i in keep], dtype=np.int64)
                        )
                        part_x.append(
                            np.array([leaf.extra_x[i] for i in keep], dtype=float)
                        )
                        part_y.append(
                            np.array([leaf.extra_y[i] for i in keep], dtype=float)
                        )
                size = sum(len(part) for part in part_rows)
                if size == 0:
                    continue
                row_parts.extend(part_rows)
                x_parts.extend(part_x)
                y_parts.extend(part_y)
                sizes.append(size)
            self.rows = (
                np.concatenate(row_parts) if row_parts else np.empty(0, dtype=np.int64)
            )
            self.x = np.concatenate(x_parts) if x_parts else np.empty(0, dtype=float)
            self.y = np.concatenate(y_parts) if y_parts else np.empty(0, dtype=float)

        sizes = np.asarray(sizes, dtype=np.int64)
        self.num_leaves = len(sizes)
        self.leaf_of_pos = np.repeat(
            np.arange(self.num_leaves, dtype=np.int64), sizes
        )
        self.grid_cos = np.array([angle.cos for angle in self.angles])
        self.grid_sin = np.array([angle.sin for angle in self.angles])
        self.grid_rad = np.array([angle.radians for angle in self.angles])
        self._recompute_leaf_bounds(sizes)
        self.live = np.ones(len(self.rows), dtype=bool)
        self.appended = 0
        self.dead = 0
        self._pos_of_row: Optional[Dict[int, int]] = None

    def _recompute_leaf_bounds(self, sizes: np.ndarray) -> None:
        """Per-leaf bounds recomputed from the stored points on the bound grid.

        At flatten time each leaf's points occupy one contiguous segment of the
        flat arrays, so every per-angle intercept extreme — and the leaf's own
        coordinate box (``leaf_min_y``/``leaf_max_y`` feed the second-pass box
        bound of :func:`leaf_score_bounds`) — reduces over the segment starts
        in one ``reduceat`` per statistic.  Recomputing from points instead of
        copying the tree's node bounds keeps the bounds tight on the *refined*
        bound grid and sheds any looseness the tree accumulated from updates
        (tombstoned rows widen node bounds; here they are simply absent).
        """
        num_angles = len(self.grid_rad)
        if self.num_leaves == 0:
            self.leaf_bounds = np.empty((0, num_angles, 4), dtype=float)
            self.leaf_min_x = np.empty(0, dtype=float)
            self.leaf_max_x = np.empty(0, dtype=float)
            self.leaf_min_y = np.empty(0, dtype=float)
            self.leaf_max_y = np.empty(0, dtype=float)
            return
        starts = np.concatenate(([0], np.cumsum(sizes[:-1])))
        wa = (
            self.grid_cos[:, None] * self.y[None, :]
            + self.grid_sin[:, None] * self.x[None, :]
        )
        wb = (
            self.grid_cos[:, None] * self.y[None, :]
            - self.grid_sin[:, None] * self.x[None, :]
        )
        bounds = np.empty((self.num_leaves, num_angles, 4), dtype=float)
        bounds[:, :, _MAX_A] = np.maximum.reduceat(wa, starts, axis=1).T
        bounds[:, :, _MIN_A] = np.minimum.reduceat(wa, starts, axis=1).T
        bounds[:, :, _MAX_B] = np.maximum.reduceat(wb, starts, axis=1).T
        bounds[:, :, _MIN_B] = np.minimum.reduceat(wb, starts, axis=1).T
        self.leaf_bounds = bounds
        self.leaf_min_x = np.minimum.reduceat(self.x, starts)
        self.leaf_max_x = np.maximum.reduceat(self.x, starts)
        self.leaf_min_y = np.minimum.reduceat(self.y, starts)
        self.leaf_max_y = np.maximum.reduceat(self.y, starts)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def live_count(self) -> int:
        return len(self.rows) - self.dead

    # ------------------------------------------------------------ maintenance
    def append_points(self, row_ids, xs, ys) -> np.ndarray:
        """Patch new points in: assign leaves, loosen bounds, extend the arrays.

        Each point lands in the leaf whose x-range covers it (the leaves are in
        x order, so a ``searchsorted`` on the leaf upper bounds finds it); the
        leaf's x-span and per-angle intercept bounds are loosened to admit the
        point, which keeps every stored bound admissible.  Returns the leaf id
        assigned to each appended point.  Callers must not append into an
        empty flat view (``num_leaves == 0``) — reflatten instead.
        """
        if self.num_leaves == 0:
            raise RuntimeError("cannot append into an empty flat view; reflatten")
        row_ids = np.asarray(row_ids, dtype=np.int64)
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        leaves = np.clip(
            np.searchsorted(self.leaf_max_x, xs, side="left"), 0, self.num_leaves - 1
        )
        np.minimum.at(self.leaf_min_x, leaves, xs)
        np.maximum.at(self.leaf_max_x, leaves, xs)
        np.minimum.at(self.leaf_min_y, leaves, ys)
        np.maximum.at(self.leaf_max_y, leaves, ys)
        for ai in range(len(self.grid_rad)):
            wa = self.grid_cos[ai] * ys + self.grid_sin[ai] * xs
            wb = self.grid_cos[ai] * ys - self.grid_sin[ai] * xs
            np.maximum.at(self.leaf_bounds[:, ai, _MAX_A], leaves, wa)
            np.minimum.at(self.leaf_bounds[:, ai, _MIN_A], leaves, wa)
            np.maximum.at(self.leaf_bounds[:, ai, _MAX_B], leaves, wb)
            np.minimum.at(self.leaf_bounds[:, ai, _MIN_B], leaves, wb)
        if self._pos_of_row is not None:
            start = len(self.rows)
            for offset, row in enumerate(row_ids):
                self._pos_of_row[int(row)] = start + offset
        self.rows = np.concatenate([self.rows, row_ids])
        self.x = np.concatenate([self.x, xs])
        self.y = np.concatenate([self.y, ys])
        self.leaf_of_pos = np.concatenate([self.leaf_of_pos, leaves])
        self.live = np.concatenate([self.live, np.ones(len(row_ids), dtype=bool)])
        self.appended += len(row_ids)
        return leaves

    def tombstone_rows(self, row_ids) -> None:
        """Mark rows dead in the validity mask (bounds stay admissible)."""
        if self._pos_of_row is None:
            self._pos_of_row = {int(row): i for i, row in enumerate(self.rows)}
        for row in row_ids:
            position = self._pos_of_row[int(row)]
            if self.live[position]:
                self.live[position] = False
                self.dead += 1

    def garbage_fraction(self) -> float:
        """Accumulated garbage + imbalance relative to the live population.

        Saturates (divides by 1) once every row is tombstoned, so a fully
        emptied view reports huge garbage instead of dividing by zero — the
        owner reflattens it into a valid empty view on the next access.
        """
        return (self.appended + self.dead) / max(self.live_count, 1)

    def clone(self) -> "_FlatTree":
        """Copy-on-write duplicate for epoch-published maintenance.

        Shares the large append-replaced arrays (``rows``/``x``/``y``/
        ``leaf_of_pos`` are swapped wholesale by :meth:`append_points`) and
        copies exactly the ones maintenance mutates in place: the validity
        mask, the per-leaf bounds and x-spans, and the lazy id->position map.
        A reader holding the original therefore never observes the clone's
        subsequent patches.
        """
        dup = _FlatTree.__new__(_FlatTree)
        dup.angles = self.angles
        dup.rows = self.rows
        dup.x = self.x
        dup.y = self.y
        dup.live = self.live.copy()
        dup.leaf_bounds = self.leaf_bounds.copy()
        dup.leaf_min_x = self.leaf_min_x.copy()
        dup.leaf_max_x = self.leaf_max_x.copy()
        dup.leaf_min_y = self.leaf_min_y.copy()
        dup.leaf_max_y = self.leaf_max_y.copy()
        dup.leaf_of_pos = self.leaf_of_pos
        dup.num_leaves = self.num_leaves
        dup.appended = self.appended
        dup.dead = self.dead
        dup.grid_cos = self.grid_cos
        dup.grid_sin = self.grid_sin
        dup.grid_rad = self.grid_rad
        dup._pos_of_row = (
            None if self._pos_of_row is None else dict(self._pos_of_row)
        )
        return dup

    def collapsed(self) -> "_CollapsedTree":
        """A one-pseudo-leaf view aggregating every leaf's stored bounds.

        Feeding the view to :func:`leaf_score_bounds` yields an admissible
        upper bound on the 2D partial score of *any* stored point, in O(1)
        leaves per query — the whole-shard bound the sharded serving engine
        prunes with.  Tombstoned rows may loosen the aggregate (never tighten
        it), so the bound stays admissible across maintenance.
        """
        return _CollapsedTree(self)


class _CollapsedTree:
    """The aggregate of a :class:`_FlatTree`'s leaves as a single pseudo-leaf."""

    __slots__ = (
        "leaf_bounds",
        "leaf_min_x",
        "leaf_max_x",
        "leaf_min_y",
        "leaf_max_y",
        "num_leaves",
        "grid_cos",
        "grid_sin",
        "grid_rad",
    )

    def __init__(self, flat: _FlatTree) -> None:
        self.grid_cos = flat.grid_cos
        self.grid_sin = flat.grid_sin
        self.grid_rad = flat.grid_rad
        num_angles = len(flat.grid_rad)
        if flat.num_leaves == 0:
            self.num_leaves = 0
            self.leaf_bounds = np.empty((0, num_angles, 4), dtype=float)
            self.leaf_min_x = np.empty(0, dtype=float)
            self.leaf_max_x = np.empty(0, dtype=float)
            self.leaf_min_y = np.empty(0, dtype=float)
            self.leaf_max_y = np.empty(0, dtype=float)
            return
        self.num_leaves = 1
        bounds = np.empty((1, num_angles, 4), dtype=float)
        bounds[0, :, _MAX_A] = flat.leaf_bounds[:, :, _MAX_A].max(axis=0)
        bounds[0, :, _MIN_A] = flat.leaf_bounds[:, :, _MIN_A].min(axis=0)
        bounds[0, :, _MAX_B] = flat.leaf_bounds[:, :, _MAX_B].max(axis=0)
        bounds[0, :, _MIN_B] = flat.leaf_bounds[:, :, _MIN_B].min(axis=0)
        self.leaf_bounds = bounds
        self.leaf_min_x = np.asarray([flat.leaf_min_x.min()])
        self.leaf_max_x = np.asarray([flat.leaf_max_x.max()])
        self.leaf_min_y = np.asarray([flat.leaf_min_y.min()])
        self.leaf_max_y = np.asarray([flat.leaf_max_y.max()])


def leaf_score_bounds(
    flat: _FlatTree,
    alpha: np.ndarray,
    beta: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
) -> np.ndarray:
    """Admissible per-leaf upper bounds on the weighted 2D partial score.

    Returns an ``(m, num_leaves)`` array: entry ``(j, l)`` bounds
    ``alpha_j*|y - qy_j| - beta_j*|x - qx_j|`` over every live point of leaf
    ``l``.  Queries are grouped by angular partition (the bracketing indexed
    angles of the grid) and each partition resolves the stored per-angle bounds
    in one kernel — the batched equivalent of ``_BoundResolver``.

    The weighted intercepts ``W_a = a*y + b*x`` and ``W_b = a*y - b*x`` are
    linear in ``(a, b)``, so writing ``(a, b)`` as a non-negative combination
    of the bracketing indexed angle vectors turns the stored normalized bounds
    into admissible weighted bounds.  The partial score of any point is then
    bounded by the best of the four projection-stream expressions, each applied
    only to leaves that can hold points on its side of the query axis (the
    vectorized form of ``ProjectionStream._eligible_node``).
    """
    m = len(alpha)
    bounds = flat.leaf_bounds
    ub = np.full((m, flat.num_leaves), math.inf)
    if flat.num_leaves == 0:
        return ub
    grid_cos = flat.grid_cos
    grid_sin = flat.grid_sin
    grid_rad = flat.grid_rad
    num_angles = len(grid_rad)

    cos, sin, _scale = _normalized_components(alpha, beta)
    theta = np.arctan2(sin, cos)
    positions = np.searchsorted(grid_rad, theta)

    groups: Dict[Tuple[int, int], List[int]] = {}
    for j in range(m):
        i = int(positions[j])
        if i < num_angles and abs(grid_rad[i] - theta[j]) <= _ANGLE_TOLERANCE:
            key = (i, i)
        elif i > 0 and abs(grid_rad[i - 1] - theta[j]) <= _ANGLE_TOLERANCE:
            key = (i - 1, i - 1)
        else:
            lower = min(max(i - 1, 0), num_angles - 2)
            key = (lower, lower + 1)
        groups.setdefault(key, []).append(j)

    for (lower, upper), members in groups.items():
        js = np.asarray(members, dtype=np.int64)
        a = alpha[js]
        b = beta[js]
        if lower == upper:
            lam = np.hypot(a, b)[:, None]
            wa_max = lam * bounds[:, lower, _MAX_A][None, :]
            wa_min = lam * bounds[:, lower, _MIN_A][None, :]
            wb_max = lam * bounds[:, lower, _MAX_B][None, :]
            wb_min = lam * bounds[:, lower, _MIN_B][None, :]
        else:
            det = grid_cos[lower] * grid_sin[upper] - grid_sin[lower] * grid_cos[upper]
            lam_l = np.maximum((a * grid_sin[upper] - b * grid_cos[upper]) / det, 0.0)[
                :, None
            ]
            lam_u = np.maximum((grid_cos[lower] * b - grid_sin[lower] * a) / det, 0.0)[
                :, None
            ]
            wa_max = (
                lam_l * bounds[:, lower, _MAX_A][None, :]
                + lam_u * bounds[:, upper, _MAX_A][None, :]
            )
            wa_min = (
                lam_l * bounds[:, lower, _MIN_A][None, :]
                + lam_u * bounds[:, upper, _MIN_A][None, :]
            )
            wb_max = (
                lam_l * bounds[:, lower, _MAX_B][None, :]
                + lam_u * bounds[:, upper, _MAX_B][None, :]
            )
            wb_min = (
                lam_l * bounds[:, lower, _MIN_B][None, :]
                + lam_u * bounds[:, upper, _MIN_B][None, :]
            )
        aqy = (a * qy[js])[:, None]
        bqx = (b * qx[js])[:, None]
        # Left formulas (W_a for lower, W_b for upper) only bound points with
        # x <= qx; right formulas the mirror image.  Mask each expression to
        # the leaves that can hold eligible points.
        left = flat.leaf_min_x[None, :] <= qx[js][:, None]
        right = flat.leaf_max_x[None, :] >= qx[js][:, None]
        left_lower = np.where(left, wa_max - bqx - aqy, -math.inf)
        right_lower = np.where(right, wb_max + bqx - aqy, -math.inf)
        right_upper = np.where(right, aqy + bqx - wa_min, -math.inf)
        left_upper = np.where(left, aqy - bqx - wb_min, -math.inf)
        ub[js] = np.maximum(
            np.maximum(left_lower, right_lower),
            np.maximum(right_upper, left_upper),
        )
    # Leaf second pass: intersect with the exact-angle *box bound* from each
    # leaf's own coordinate extrema — ``alpha * max |y - qy|`` over the leaf's
    # y-range minus ``beta * dist(qx, x-range)``.  Unlike the interpolated
    # intercept bounds above it pays no angle-grid resolution error at all;
    # it is loose only in the other coordinate's correlation.  Both are
    # admissible upper bounds on the same partial score, so their minimum is
    # too (admissibility argument: DESIGN.md, bound hierarchy).
    far_y = np.maximum(
        np.abs(flat.leaf_min_y[None, :] - qy[:, None]),
        np.abs(flat.leaf_max_y[None, :] - qy[:, None]),
    )
    gap_x = np.maximum(
        0.0,
        np.maximum(
            flat.leaf_min_x[None, :] - qx[:, None],
            qx[:, None] - flat.leaf_max_x[None, :],
        ),
    )
    np.minimum(ub, alpha[:, None] * far_y - beta[:, None] * gap_x, out=ub)
    return ub


# ------------------------------------------------------------------- sessions
class SessionState:
    """One immutable epoch of a :class:`QuerySession`'s execution state.

    Everything the vectorized kernels read lives here: the snapshot row ids
    and coordinate matrix, the validity mask, the per-pair flattened trees
    (with their per-leaf bounds), the sorted-column arrays and the
    id->position maps.  Under ``concurrency="snapshot"`` readers pin one
    ``SessionState`` through the session's
    :class:`~repro.core.epoch.EpochManager` and execute entirely against it,
    so writers preparing the next state can never tear a read; under
    ``concurrency="unsafe"`` the same object is patched in place (the legacy
    single-threaded behavior).
    """

    __slots__ = (
        "rows",
        "matrix",
        "live",
        "num_live",
        "row_order",
        "sorted_rows",
        "columns_by_dim",
        "pairs",
        "pair_leaf_of_position",
        "col_values",
        "col_positions",
        "appended",
        "tombstoned",
    )

    def __init__(
        self,
        rows: np.ndarray,
        matrix: np.ndarray,
        live: np.ndarray,
        num_live: int,
        row_order: np.ndarray,
        sorted_rows: np.ndarray,
        columns_by_dim: Dict[int, np.ndarray],
        pairs: List[Tuple[int, int, _FlatTree]],
        pair_leaf_of_position: List[np.ndarray],
        col_values: Dict[int, np.ndarray],
        col_positions: Dict[int, np.ndarray],
        appended: int = 0,
        tombstoned: int = 0,
    ) -> None:
        self.rows = rows
        self.matrix = matrix
        self.live = live
        self.num_live = num_live
        self.row_order = row_order
        self.sorted_rows = sorted_rows
        self.columns_by_dim = columns_by_dim
        self.pairs = pairs
        self.pair_leaf_of_position = pair_leaf_of_position
        self.col_values = col_values
        self.col_positions = col_positions
        self.appended = appended
        self.tombstoned = tombstoned

    def positions_of(self, row_ids: np.ndarray) -> np.ndarray:
        """Snapshot positions of live row ids (vectorized id -> position map)."""
        if len(row_ids) == 0:
            return np.empty(0, dtype=np.int64)
        return self.row_order[np.searchsorted(self.sorted_rows, row_ids)]

    def assign_from(self, other: "SessionState") -> None:
        """Overwrite every field in place (the ``concurrency="unsafe"`` path)."""
        for slot in SessionState.__slots__:
            setattr(self, slot, getattr(other, slot))

    def garbage_fraction(self) -> float:
        """Accumulated garbage + imbalance relative to the live population.

        Division-safe when every row is tombstoned (live population 0): the
        denominator saturates at 1 so a fully emptied session reports a large
        finite fraction and reflattens into a valid empty view.
        """
        return (self.appended + self.tombstoned) / max(self.num_live, 1)

    def live_row_ids(self) -> np.ndarray:
        """Row ids alive in this epoch (frozen-oracle support for tests)."""
        return self.rows[self.live]

    def live_matrix(self) -> np.ndarray:
        """Coordinates of the live rows, aligned with :meth:`live_row_ids`."""
        return self.matrix[self.live]


class QuerySession:
    """Shared-traversal batch execution over one :class:`SubproblemAggregator`.

    A session snapshots the aggregator's live point set and flattens every 2D
    projection tree once; any number of batches (or single queries, via
    :meth:`run_one`) can then be answered against the shared state with
    :meth:`run`.

    Sessions survive index mutation: the owning aggregator registers every
    session it creates and patches the flattened arrays on each
    ``insert``/``delete``/``bulk_insert``/``bulk_delete`` — appended rows are
    leaf-assigned and loosen only the covering leaf's bounds, deletions are
    tombstoned through a validity mask, and the 1D sorted-column state is
    spliced incrementally.  Once accumulated garbage plus imbalance exceeds
    ``reflatten_threshold`` (a fraction of the live population, mirroring the
    projection tree's rebuild policy) the session marks itself dirty and
    reflattens lazily on the next :meth:`run` — call :meth:`reflatten` to force
    it eagerly.  See DESIGN.md for the maintenance policy discussion.

    **Concurrency.**  The execution state lives in epoch-published
    :class:`SessionState` objects (DESIGN.md section 6).  Under the default
    ``concurrency="snapshot"`` every patch builds a successor state
    copy-on-write (cloning exactly the arrays it would have mutated in place)
    and publishes it atomically, so readers that pinned an epoch — via
    :meth:`snapshot` or implicitly per :meth:`run` — are immune to concurrent
    writers.  ``concurrency="unsafe"`` patches the current state in place:
    slightly cheaper, but only sound with single-threaded mutation.
    """

    def __init__(
        self,
        aggregator,
        seed_pool: int = _SEED_POOL,
        reflatten_threshold: float = _REFLATTEN_THRESHOLD,
        concurrency: Optional[str] = None,
    ) -> None:
        if concurrency is None:
            concurrency = getattr(aggregator, "concurrency", "snapshot")
        validate_concurrency(concurrency)
        self._aggregator = aggregator
        self._seed_pool = int(seed_pool)
        if self._seed_pool < 1:
            # A non-positive pool would seed no candidates, leaving the k-th
            # lower bound at -inf and silently disabling pruning for every
            # query — full scans that *look* like correct (slow) answers.
            raise ValueError(f"seed_pool must be >= 1, got {seed_pool}")
        self.reflatten_threshold = float(reflatten_threshold)
        self.concurrency = concurrency
        #: Epoch manager of the published execution states; readers pin, the
        #: writer (the owning aggregator's patch path) publishes.
        self.epochs = EpochManager()
        #: Lifetime maintenance counters (survive reflattening).
        self.reflattens = 0
        self.patched_inserts = 0
        self.patched_deletes = 0
        self._dirty = False
        # Building reads the aggregator's structures; registration makes the
        # session visible to its patch path — both under the writer lock so a
        # concurrent mutation can neither tear the build nor miss the session.
        with aggregator.write_lock:
            self._build()
            aggregator._register_session(self)

    # ------------------------------------------------------------------ state
    @property
    def _state(self) -> SessionState:
        """The current (most recently published) execution state.

        Read atomically through the epoch manager: a publish racing this read
        may reclaim the *epoch*, but the returned state object itself is
        immutable (snapshot mode) and stays valid for the holder.
        """
        return self.epochs.current_state()

    def _install(self, state: SessionState) -> None:
        """Make ``state`` current: publish a new epoch, or patch in place."""
        if self.concurrency == "snapshot":
            self.epochs.publish(state)
        else:
            self._state.assign_from(state)

    def _build(self) -> None:
        """(Re)build the flattened execution state from the aggregator."""
        self.epochs.publish(self._flatten_state())

    def _flatten_state(self) -> SessionState:
        """Flatten the aggregator's live structures into one execution state.

        Shared by the in-place session (:meth:`_build` publishes it directly)
        and the LSM session (:mod:`repro.core.lsm`), which wraps it as the
        initial immutable level of its layered world.
        """
        aggregator = self._aggregator
        if aggregator._columns_dirty:
            aggregator._refresh_columns()
        self._generation = aggregator.mutations
        self._dirty = False

        deleted = aggregator._deleted
        extras = aggregator._extra_points
        if not deleted and not extras:
            rows = np.fromiter(
                aggregator._base_rows.keys(), dtype=np.int64, count=len(aggregator._base_rows)
            )
            matrix = aggregator._base_matrix
        else:
            base_rows = [row for row in aggregator._base_rows if row not in deleted]
            extra_rows = [row for row in extras if row not in deleted]
            rows = np.asarray(base_rows + extra_rows, dtype=np.int64)
            parts = []
            if base_rows:
                parts.append(
                    aggregator._base_matrix[
                        [aggregator._base_rows[row] for row in base_rows]
                    ]
                )
            if extra_rows:
                parts.append(np.asarray([extras[row] for row in extra_rows], dtype=float))
            matrix = (
                np.vstack(parts)
                if parts
                else np.empty((0, aggregator._num_dims), dtype=float)
            )

        # kind="stable" so equal keys can never reorder across platforms —
        # the bit-identical differential-fuzz guarantees depend on it.
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        scored_dims = set(aggregator.repulsive) | set(aggregator.attractive)
        columns_by_dim = {
            dim: np.ascontiguousarray(matrix[:, dim]) for dim in scored_dims
        }

        state = SessionState(
            rows=rows,
            matrix=matrix,
            live=np.ones(len(rows), dtype=bool),
            num_live=len(rows),
            row_order=order,
            sorted_rows=sorted_rows,
            columns_by_dim=columns_by_dim,
            pairs=[],
            pair_leaf_of_position=[],
            col_values={},
            col_positions={},
        )

        for index, (rep_dim, att_dim) in zip(
            aggregator._pair_indexes, aggregator.pairing.pairs
        ):
            flat = _FlatTree(index.tree)
            positions = state.positions_of(flat.rows)
            state.pairs.append((rep_dim, att_dim, flat))
            # Inverse map: which leaf of this tree holds each snapshot position.
            leaf_of_position = np.empty(len(rows), dtype=np.int64)
            leaf_of_position[positions] = flat.leaf_of_pos
            state.pair_leaf_of_position.append(leaf_of_position)

        # Session-owned sorted-column state (values stay aligned with the
        # snapshot positions); patched incrementally, never rebuilt per update.
        for dim in aggregator._column_dims:
            column = aggregator._columns[dim]
            state.col_values[dim] = np.array(column.values)
            state.col_positions[dim] = state.positions_of(np.asarray(column.row_ids))
        return state

    # -------------------------------------------------------------- maintenance
    @property
    def needs_reflatten(self) -> bool:
        """True once the next :meth:`run` will rebuild the flattened state."""
        return self._dirty or self._generation != self._aggregator.mutations

    def reflatten(self) -> None:
        """Force an eager rebuild of the flattened state (counts in ``reflattens``)."""
        with self._aggregator.write_lock:
            self.reflattens += 1
            self._build()

    def _fresh_state(self) -> SessionState:
        """The current state, rebuilt first if garbage or staleness demands it.

        The rebuild reads the aggregator's structures, so it happens under the
        aggregator's write lock; concurrent readers that lost the race simply
        observe the state the winner published.
        """
        if self.needs_reflatten:
            with self._aggregator.write_lock:
                if self.needs_reflatten:
                    self.reflatten()
        return self._state

    def garbage_fraction(self) -> float:
        """Garbage + imbalance of the current state relative to live rows.

        Defined (saturating denominator) even when every row is tombstoned.
        """
        return self._state.garbage_fraction()

    def _check_garbage(self, state: SessionState) -> None:
        if (state.appended + state.tombstoned) > self.reflatten_threshold * max(
            state.num_live, 1
        ):
            self._dirty = True

    def apply_insert(self, row_id: int, vector: np.ndarray) -> None:
        """Patch one inserted point into the session (called by the aggregator)."""
        self.apply_bulk_insert(
            np.asarray([row_id], dtype=np.int64), np.asarray(vector, dtype=float)[None, :]
        )

    def apply_bulk_insert(self, row_ids, matrix) -> None:
        """Patch a batch of inserted points into a successor execution state.

        Under ``concurrency="snapshot"`` the successor is built copy-on-write
        and published as a new epoch; under ``"unsafe"`` the current state's
        fields are overwritten in place.
        """
        self._generation = self._aggregator.mutations
        if self._dirty:
            return
        row_ids = np.asarray(row_ids, dtype=np.int64)
        matrix = np.asarray(matrix, dtype=float)
        count = len(row_ids)
        if count == 0:
            return
        state = self._state
        if any(flat.num_leaves == 0 for _, _, flat in state.pairs):
            # The flat view was built over an empty tree; nothing to patch
            # into.  Mark dirty so the next read reflattens into a valid
            # non-empty view (regression: fully-emptied-then-refilled index).
            self._dirty = True
            return
        cow = self.concurrency == "snapshot"
        start = len(state.rows)
        new_positions = np.arange(start, start + count, dtype=np.int64)
        rows = np.concatenate([state.rows, row_ids])
        full_matrix = (
            np.vstack([state.matrix, matrix]) if len(state.matrix) else matrix.copy()
        )
        live = np.concatenate([state.live, np.ones(count, dtype=bool)])
        columns_by_dim = {
            dim: np.concatenate([values, np.ascontiguousarray(matrix[:, dim])])
            for dim, values in state.columns_by_dim.items()
        }
        # Maintain the sorted row-id -> position map.
        id_order = np.argsort(row_ids, kind="stable")
        sorted_new = row_ids[id_order]
        insert_at = np.searchsorted(state.sorted_rows, sorted_new)
        sorted_rows = np.insert(state.sorted_rows, insert_at, sorted_new)
        row_order = np.insert(state.row_order, insert_at, new_positions[id_order])
        # Patch every pair tree (cloned copy-on-write under snapshot mode, so
        # pinned epochs keep their bounds and masks) and its inverse leaf map.
        pairs: List[Tuple[int, int, _FlatTree]] = []
        pair_leaf_of_position: List[np.ndarray] = []
        for p, (rep_dim, att_dim, flat) in enumerate(state.pairs):
            # Clone for snapshot isolation — and also whenever the flat view's
            # patched arrays are read-only (a snapshot restored with
            # ``load(..., mmap=True)`` memory-maps them): ``append_points``
            # must never write into a mapped file.
            if cow or not flat.live.flags.writeable:
                flat = flat.clone()
            leaves = flat.append_points(row_ids, matrix[:, att_dim], matrix[:, rep_dim])
            pairs.append((rep_dim, att_dim, flat))
            pair_leaf_of_position.append(
                np.concatenate([state.pair_leaf_of_position[p], leaves])
            )
        # Splice the new values into the session-owned sorted columns.  The
        # batch must be presorted per column: np.insert keeps same-gap values
        # in the given order, so unsorted input would break the sorted-column
        # invariant every searchsorted probe relies on.
        col_values: Dict[int, np.ndarray] = {}
        col_positions: Dict[int, np.ndarray] = {}
        for dim in state.col_values:
            values = np.ascontiguousarray(matrix[:, dim])
            value_order = np.argsort(values, kind="stable")
            sorted_values = values[value_order]
            at = np.searchsorted(state.col_values[dim], sorted_values)
            col_values[dim] = np.insert(state.col_values[dim], at, sorted_values)
            col_positions[dim] = np.insert(
                state.col_positions[dim], at, new_positions[value_order]
            )
        successor = SessionState(
            rows=rows,
            matrix=full_matrix,
            live=live,
            num_live=state.num_live + count,
            row_order=row_order,
            sorted_rows=sorted_rows,
            columns_by_dim=columns_by_dim,
            pairs=pairs,
            pair_leaf_of_position=pair_leaf_of_position,
            col_values=col_values,
            col_positions=col_positions,
            appended=state.appended + count,
            tombstoned=state.tombstoned,
        )
        self._install(successor)
        self.patched_inserts += count
        self._check_garbage(successor)

    def apply_delete(self, row_id: int) -> None:
        """Tombstone one deleted row (called by the aggregator)."""
        self.apply_bulk_delete(np.asarray([row_id], dtype=np.int64))

    def apply_bulk_delete(self, row_ids) -> None:
        """Tombstone a batch of deleted rows through the validity mask.

        Snapshot mode copies the mask before writing it (the only in-place
        mutation a delete patch performs), so pinned epochs keep serving the
        rows they saw alive.
        """
        self._generation = self._aggregator.mutations
        if self._dirty:
            return
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return
        state = self._state
        positions = state.positions_of(row_ids)
        # Copy under snapshot isolation, and always when the mask is read-only
        # (an mmap-restored state): the tombstone write must never land in a
        # mapped snapshot file.
        live = (
            state.live.copy()
            if self.concurrency == "snapshot" or not state.live.flags.writeable
            else state.live
        )
        live[positions] = False
        successor = SessionState(
            rows=state.rows,
            matrix=state.matrix,
            live=live,
            num_live=state.num_live - len(row_ids),
            row_order=state.row_order,
            sorted_rows=state.sorted_rows,
            columns_by_dim=state.columns_by_dim,
            pairs=state.pairs,
            pair_leaf_of_position=state.pair_leaf_of_position,
            col_values=state.col_values,
            col_positions=state.col_positions,
            appended=state.appended,
            tombstoned=state.tombstoned + len(row_ids),
        )
        self._install(successor)
        self.patched_deletes += len(row_ids)
        self._check_garbage(successor)

    def maintenance_stats(self) -> Dict[str, int]:
        """Counters describing how the session has been kept alive."""
        state = self._state
        return {
            "patched_inserts": self.patched_inserts,
            "patched_deletes": self.patched_deletes,
            "reflattens": self.reflattens,
            "appended_since_flatten": state.appended,
            "tombstoned_since_flatten": state.tombstoned,
            "live_rows": state.num_live,
            "needs_reflatten": int(self.needs_reflatten),
            "epoch_version": self.epochs.version,
            "epochs_live": self.epochs.live_epochs,
        }

    # ------------------------------------------------------------------ snapshots
    def snapshot(self) -> "SessionSnapshot":
        """Pin the current epoch and return an immutable read view.

        The view answers :meth:`run`/:meth:`run_one`/bound queries against the
        pinned :class:`SessionState` no matter what writers do afterwards; use
        it as a context manager (or call ``close()``) to release the pin so
        the epoch can be reclaimed.  A stale session reflattens first, so the
        pinned state always reflects every mutation applied so far.
        """
        self._fresh_state()
        return SessionSnapshot(self, self.epochs.pin())

    # ------------------------------------------------------------------ helpers
    # Read-only views of the current state, kept for tests and callers that
    # predate the epoch refactor.
    @property
    def _rows(self) -> np.ndarray:
        return self._state.rows

    @property
    def _matrix(self) -> np.ndarray:
        return self._state.matrix

    @property
    def _live(self) -> np.ndarray:
        return self._state.live

    @property
    def _num_live(self) -> int:
        return self._state.num_live

    @property
    def _col_values(self) -> Dict[int, np.ndarray]:
        return self._state.col_values

    @property
    def _col_positions(self) -> Dict[int, np.ndarray]:
        return self._state.col_positions

    @property
    def _columns_by_dim(self) -> Dict[int, np.ndarray]:
        return self._state.columns_by_dim

    @property
    def _pairs(self) -> List[Tuple[int, int, _FlatTree]]:
        return self._state.pairs

    def _weight_column(self, spec: BatchQuerySpec, dim: int) -> np.ndarray:
        """The per-query weight column of a scored dimension."""
        aggregator = self._aggregator
        if dim in aggregator.repulsive:
            return spec.alpha[:, aggregator.repulsive.index(dim)]
        return spec.beta[:, aggregator.attractive.index(dim)]

    def _score_block(
        self, state: SessionState, positions: np.ndarray, spec: BatchQuerySpec
    ) -> np.ndarray:
        """Scores of the sampled positions for every query: ``(m, p)``.

        Always accumulates in index term order — the result only seeds the
        pruning bound, and ``_PRUNE_SLACK`` absorbs any ulp-level difference
        from a query's own term order.
        """
        aggregator = self._aggregator
        scores = np.zeros((len(spec), len(positions)))
        for i, dim in enumerate(aggregator.repulsive):
            values = state.columns_by_dim[dim][positions]
            scores += spec.alpha[:, i][:, None] * np.abs(
                values[None, :] - spec.points[:, dim][:, None]
            )
        for i, dim in enumerate(aggregator.attractive):
            values = state.columns_by_dim[dim][positions]
            scores -= spec.beta[:, i][:, None] * np.abs(
                values[None, :] - spec.points[:, dim][:, None]
            )
        return scores

    def _score_one(
        self, state: SessionState, positions: np.ndarray, spec: BatchQuerySpec, j: int
    ) -> np.ndarray:
        """Exact scores of candidate positions for query ``j``.

        Accumulates the weighted terms in the query's own role order — the
        exact floating-point order of
        :func:`repro.core.query.make_fast_scorer` — so each score is
        bit-identical to the sequential path's.
        """
        aggregator = self._aggregator
        rep_order, att_order = spec.term_order(j)
        scores = np.zeros(len(positions))
        for dim in rep_order:
            weight = spec.alpha[j, aggregator.repulsive.index(dim)]
            scores += weight * np.abs(
                state.columns_by_dim[dim][positions] - spec.points[j, dim]
            )
        for dim in att_order:
            weight = spec.beta[j, aggregator.attractive.index(dim)]
            scores -= weight * np.abs(
                state.columns_by_dim[dim][positions] - spec.points[j, dim]
            )
        return scores

    def _column_max_contribution(
        self, state: SessionState, dim: int, spec: BatchQuerySpec
    ) -> np.ndarray:
        """Per-query maximum contribution of one leftover 1D subproblem.

        Repulsive columns contribute at most ``alpha * farthest_distance``;
        attractive columns at most ``-beta * nearest_distance``.  Both probes
        run over all queries in one ``searchsorted``-style kernel.  The values
        may include tombstoned rows — a dead row can only move the farthest
        value out or the nearest value in, which loosens the bound admissibly.
        """
        values = state.col_values[dim]
        targets = spec.points[:, dim]
        weight = self._weight_column(spec, dim)
        if len(values) == 0:
            return np.zeros(len(spec))
        if dim in self._aggregator.repulsive:
            farthest = np.maximum(
                np.abs(values[0] - targets), np.abs(values[-1] - targets)
            )
            return weight * farthest
        positions = np.searchsorted(values, targets)
        nearest = np.full(len(targets), np.inf)
        right = positions < len(values)
        nearest[right] = np.abs(values[np.minimum(positions[right], len(values) - 1)] - targets[right])
        left = positions > 0
        nearest[left] = np.minimum(
            nearest[left], np.abs(values[positions[left] - 1] - targets[left])
        )
        return -weight * nearest

    def sample_scores(self, queries, pool: int, k=None, alpha=None, beta=None) -> np.ndarray:
        """Scores of an evenly spaced live sample against every query: ``(m, p)``.

        Accumulated in index term order (like the seeding stage of
        :meth:`run`), so each value is a real point's score up to ulp-level
        term-order differences — :func:`_prune_bound`'s slack absorbs those.
        The sharded engine pools these samples across shards to seed a *global*
        k-th best lower bound before the first probe.
        """
        state = self._fresh_state()
        spec = self._coerce_spec(queries, k=k, alpha=alpha, beta=beta)
        return self._sample_scores(state, spec, pool)

    def _sample_scores(
        self, state: SessionState, spec: BatchQuerySpec, pool: int
    ) -> np.ndarray:
        if state.num_live == 0:
            return np.empty((len(spec), 0))
        live = np.flatnonzero(state.live)
        sample = np.unique(
            np.linspace(0, len(live) - 1, min(len(live), int(pool))).astype(np.int64)
        )
        return self._score_block(state, live[sample], spec)

    def data_magnitude(self) -> float:
        """Largest absolute scored coordinate in the snapshot (0.0 when empty)."""
        return self._data_magnitude(self._state)

    def _data_magnitude(self, state: SessionState) -> float:
        magnitude = 0.0
        for column in state.columns_by_dim.values():
            if len(column):
                magnitude = max(magnitude, float(np.abs(column).max()))
        return magnitude

    def upper_bounds(self, queries, k=None, alpha=None, beta=None) -> np.ndarray:
        """Admissible per-query upper bounds on any live point's total score.

        Each 2D pair contributes the bound of its *collapsed* flat tree (all
        leaves aggregated into one pseudo-leaf, see
        :meth:`_FlatTree.collapsed`), each leftover column its maximum possible
        contribution — O(1) work per pair instead of O(num_leaves).  The
        sharded serving engine orders and prunes whole shards with this bound:
        a shard whose bound misses a query's running k-th best score cannot
        hold any of that query's answers.  Returns ``-inf`` for every query
        when no live rows remain.
        """
        state = self._fresh_state()
        spec = self._coerce_spec(queries, k=k, alpha=alpha, beta=beta)
        return self._upper_bounds(state, spec)

    def _upper_bounds(self, state: SessionState, spec: BatchQuerySpec) -> np.ndarray:
        m = len(spec)
        if state.num_live == 0:
            return np.full(m, -math.inf)
        ub = np.zeros(m)
        for rep_dim, att_dim, flat in state.pairs:
            collapsed = flat.collapsed()
            if collapsed.num_leaves == 0:
                return np.full(m, -math.inf)
            ub += leaf_score_bounds(
                collapsed,
                self._weight_column(spec, rep_dim),
                self._weight_column(spec, att_dim),
                spec.points[:, att_dim],
                spec.points[:, rep_dim],
            )[:, 0]
        for dim in state.col_values:
            ub += self._column_max_contribution(state, dim, spec)
        return ub

    def _coerce_spec(self, queries, k=None, alpha=None, beta=None) -> BatchQuerySpec:
        """Normalize ``queries`` to a spec (pre-built specs pass through)."""
        if isinstance(queries, BatchQuerySpec):
            if k is not None or alpha is not None or beta is not None:
                raise ValueError(
                    "pass either a BatchQuerySpec or k/weights, not both"
                )
            return queries
        aggregator = self._aggregator
        return BatchQuerySpec.coerce(
            aggregator.repulsive,
            aggregator.attractive,
            aggregator._num_dims,
            queries,
            k=k,
            alpha=alpha,
            beta=beta,
        )

    # ---------------------------------------------------------------- execution
    def run_one(self, query) -> TopKResult:
        """The ``m = 1`` fast path: one SD-Query through the batch kernels.

        This is what ``SDIndex.query`` runs by default; scores are bit-identical
        to the legacy threshold traversal (same floating-point term order) and
        ties at the k-th boundary resolve by the deterministic row-id order.
        """
        result = self.run([query], _label="sd-index/fast").results[0]
        return result

    def run(
        self,
        queries,
        k=None,
        alpha=None,
        beta=None,
        lower_bounds=None,
        deadline: Optional[Deadline] = None,
        _label: str = "sd-index/batch",
    ) -> BatchResult:
        """Answer a batch of queries against the maintained session state.

        ``queries`` may also be a pre-built :class:`BatchQuerySpec` (the
        sharded engine reuses one spec across shard probes).  ``lower_bounds``,
        when given, is a per-query array of externally derived pruning
        thresholds — lower bounds on each query's k-th best *global* score
        that the caller has already lowered by an admissible float slack (via
        :func:`_prune_bound` with a magnitude covering every data source the
        bounds were computed from; the sharded router uses the maximum over
        all shards, which this shard's local slack could understate).  Pruning
        tightens to them, so matches scoring strictly below a bound may be
        omitted from that query's result — exactly what a sharded merge wants,
        since such rows cannot enter the global top k.
        """
        # Garbage crossed the threshold (or an unpatched mutation slipped by):
        # rebuild the flattened state before answering, then execute against
        # one consistent state object end to end.
        state = self._fresh_state()
        spec = self._coerce_spec(queries, k=k, alpha=alpha, beta=beta)
        return self._execute(state, spec, lower_bounds, _label, deadline=deadline)

    def _execute(
        self,
        state: SessionState,
        spec: BatchQuerySpec,
        lower_bounds,
        _label: str,
        deadline: Optional[Deadline] = None,
    ) -> BatchResult:
        """The filter-and-verify pipeline over one pinned execution state."""
        faults.fire(_FP_KERNEL)
        if deadline is not None:
            deadline.check()
        m = len(spec)
        n_live = state.num_live
        if m == 0:
            return BatchResult(results=[], algorithm=_label)
        if n_live == 0:
            return BatchResult(
                results=[
                    TopKResult(matches=[], algorithm=_label)
                    for _ in range(m)
                ],
                algorithm=_label,
            )
        ks_eff = np.minimum(spec.ks, n_live)
        live_positions = np.flatnonzero(state.live)

        # Per-pair leaf bounds (shared traversal + per-partition resolution).
        pair_ubs: List[np.ndarray] = []
        for rep_dim, att_dim, flat in state.pairs:
            pair_ubs.append(
                leaf_score_bounds(
                    flat,
                    self._weight_column(spec, rep_dim),
                    self._weight_column(spec, att_dim),
                    spec.points[:, att_dim],
                    spec.points[:, rep_dim],
                )
            )

        column_max = {
            dim: self._column_max_contribution(state, dim, spec)
            for dim in state.col_values
        }

        # Seeded lower bound on each query's k-th best score.
        magnitude = 0.0
        for dim, column in state.columns_by_dim.items():
            if len(column):
                magnitude = max(magnitude, float(np.abs(column).max()))
            magnitude = max(magnitude, float(np.abs(spec.points[:, dim]).max()))
        weight_scale = spec.alpha.sum(axis=1) + spec.beta.sum(axis=1)
        threshold = _seeded_threshold(
            lambda sample: self._score_block(state, live_positions[sample], spec),
            ks_eff,
            n_live,
            self._seed_pool,
            weight_scale,
            magnitude,
        )
        if lower_bounds is not None:
            threshold = np.maximum(threshold, np.asarray(lower_bounds, dtype=float))

        column_total = np.zeros(m)
        for contribution in column_max.values():
            column_total = column_total + contribution

        candidates = self._enumerate_candidates(
            state, spec, pair_ubs, column_total, column_max, threshold, live_positions
        )

        results: List[TopKResult] = []
        for j in range(m):
            # Verification dominates the kernel; yield to the deadline between
            # queries so a starved budget stops the batch at a clean boundary.
            if deadline is not None:
                deadline.check()
            positions, cand_bounds = candidates[j]
            k_eff = int(ks_eff[j])
            if state.pairs and (
                len(state.pairs) + len(state.col_values) >= 2
            ) and len(positions) > max(_VERIFY_POOL, 4 * k_eff):
                # Stage 2a: per-candidate *tight* bounds.  Summing per-pair
                # leaf bounds decorrelates the pairs (the bound assumes one
                # point is simultaneously best in every pair's leaf), which
                # dominates the residual over-fetch once the leaf bounds
                # themselves are tight.  Replace the first pair's leaf bound
                # with that pair's *exact* partial score — still admissible,
                # far better correlated with the true score — so both the
                # refine head selection and the re-prune below work on bounds
                # that rank candidates nearly like their exact scores.
                rep_dim, att_dim, _flat = state.pairs[0]
                rep_w = self._weight_column(spec, rep_dim)[j]
                att_w = self._weight_column(spec, att_dim)[j]
                tight = rep_w * np.abs(
                    state.columns_by_dim[rep_dim][positions]
                    - spec.points[j, rep_dim]
                ) - att_w * np.abs(
                    state.columns_by_dim[att_dim][positions]
                    - spec.points[j, att_dim]
                )
                tight += column_total[j]
                for p in range(1, len(state.pairs)):
                    tight += pair_ubs[p][j][
                        state.pair_leaf_of_position[p][positions]
                    ]
                cand_bounds = np.minimum(cand_bounds, tight)
            # Stage 2b: tighten the threshold to the exact k-th best of the
            # best candidates by bound, then re-prune the rest against it.
            positions, refined, head_count = _refine_candidates(
                positions,
                cand_bounds,
                k_eff,
                lambda sample: self._score_one(state, sample, spec, j),
                float(weight_scale[j]),
                magnitude,
            )
            # Exact scorings performed: the refine head plus the final verify
            # pass (head survivors are rescored — bounded by max(64, 4k)).
            examined = head_count + len(positions)
            scores = self._score_one(state, positions, spec, j)
            top = select_topk(scores, state.rows[positions], k_eff)
            matches = [
                Match(
                    row_id=int(state.rows[positions[i]]),
                    score=float(scores[i]),
                    point=tuple(state.matrix[positions[i]]),
                )
                for i in top
            ]
            results.append(
                TopKResult(
                    matches=matches,
                    candidates_examined=examined,
                    full_evaluations=examined,
                    algorithm=_label,
                )
            )
        return BatchResult(results=results, algorithm=_label)

    def _enumerate_candidates(
        self,
        state: SessionState,
        spec: BatchQuerySpec,
        pair_ubs: List[np.ndarray],
        column_total: np.ndarray,
        column_max: Dict[int, np.ndarray],
        threshold: np.ndarray,
        live_positions: np.ndarray,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-query ``(positions, bounds)``, pruned by admissible point bounds.

        With 2D pairs, every snapshot position sits in exactly one leaf of each
        pair tree, so ``sum_p leaf_bound_p(point) + sum_cols col_max`` is an
        admissible upper bound on the point's total score; positions whose
        bound misses the query's pruning threshold — or that are tombstoned —
        are dropped without being scored.  Without pairs, the first sorted
        column enumerates candidates through vectorized range probes.  With no
        usable bound the candidate set degenerates to the live snapshot (the
        vectorized-scan worst case).  The returned bounds stay aligned with the
        positions so the verification stage can re-prune after tightening.
        """
        m = len(spec)
        n_total = len(state.rows)
        if state.pairs:
            candidates = []
            for j in range(m):
                bound = np.full(n_total, column_total[j])
                for p, leaf_of_position in enumerate(state.pair_leaf_of_position):
                    bound += pair_ubs[p][j][leaf_of_position]
                if not np.isfinite(threshold[j]):
                    positions = live_positions
                else:
                    positions = np.flatnonzero((bound >= threshold[j]) & state.live)
                candidates.append((positions, bound[positions]))
            return candidates

        # No 2D pairs: enumerate through the first sorted column instead
        # (vectorized range probes on the sorted values).
        pairing = self._aggregator.pairing
        if pairing.leftover_repulsive:
            dim = pairing.leftover_repulsive[0]
            repulsive = True
        else:
            dim = pairing.leftover_attractive[0]
            repulsive = False
        values = state.col_values[dim]
        column_positions = state.col_positions[dim]
        weight = self._weight_column(spec, dim)
        targets = spec.points[:, dim]
        other_max = np.zeros(m)
        for other_dim, contribution in column_max.items():
            if other_dim != dim:
                other_max = other_max + contribution
        need = threshold - other_max
        sign = 1.0 if repulsive else -1.0

        def with_bounds(positions_j, values_j, j):
            live = state.live[positions_j]
            positions_j = positions_j[live]
            bounds_j = other_max[j] + sign * weight[j] * np.abs(
                values_j[live] - targets[j]
            )
            return positions_j, bounds_j

        candidates = []
        if repulsive:
            # Keep rows with weight*|v - q| >= need: two tails of the sorted order.
            cut = need / weight
            low_stop = np.searchsorted(values, targets - cut, side="right")
            high_start = np.searchsorted(values, targets + cut, side="left")
            for j in range(m):
                if not np.isfinite(need[j]) or need[j] <= 0.0:
                    candidates.append(with_bounds(column_positions, values, j))
                else:
                    candidates.append(
                        with_bounds(
                            np.concatenate(
                                [
                                    column_positions[: low_stop[j]],
                                    column_positions[high_start[j] :],
                                ]
                            ),
                            np.concatenate(
                                [values[: low_stop[j]], values[high_start[j] :]]
                            ),
                            j,
                        )
                    )
        else:
            # Keep rows with -weight*|v - q| >= need: a window around the query.
            window = np.where(need <= 0.0, -need / weight, 0.0)
            starts = np.searchsorted(values, targets - window, side="left")
            stops = np.searchsorted(values, targets + window, side="right")
            for j in range(m):
                if not np.isfinite(need[j]) or need[j] > 0.0:
                    # Non-finite: no usable seed.  Positive: unreachable bound
                    # (the seeded k-th best already exceeds what this
                    # subproblem allows); fall back to everything to stay
                    # trivially safe.
                    candidates.append(with_bounds(column_positions, values, j))
                else:
                    candidates.append(
                        with_bounds(
                            column_positions[starts[j] : stops[j]],
                            values[starts[j] : stops[j]],
                            j,
                        )
                    )
        return candidates


class SessionSnapshot:
    """A pinned, immutable read view of one :class:`QuerySession` epoch.

    Holds one reader reference on the pinned epoch; every query method
    executes against that epoch's :class:`SessionState`, so concurrent
    ``insert``/``delete``/``rebalance`` on the owning index can never tear or
    shift the answers.  Release the pin with :meth:`close` (or use the view as
    a context manager) — until then the epoch cannot be reclaimed.
    """

    def __init__(self, session: QuerySession, epoch) -> None:
        self._session = session
        self._epoch = epoch
        self._closed = False

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the pinned epoch (idempotent)."""
        if not self._closed:
            self._closed = True
            self._epoch.release()

    def __enter__(self) -> "SessionSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def version(self) -> int:
        """The pinned epoch's version."""
        return self._epoch.version

    @property
    def state(self) -> SessionState:
        if self._closed:
            raise RuntimeError("session snapshot is closed")
        return self._epoch.state

    # ------------------------------------------------------------------ reading
    @property
    def num_live(self) -> int:
        """Live rows in the pinned epoch."""
        return self.state.num_live

    def __len__(self) -> int:
        return self.state.num_live

    def live_row_ids(self) -> np.ndarray:
        """Row ids alive in the pinned epoch (frozen-oracle support)."""
        return self.state.live_row_ids()

    def live_matrix(self) -> np.ndarray:
        """Coordinates of the pinned live rows, aligned with ``live_row_ids``."""
        return self.state.live_matrix()

    def run(
        self,
        queries,
        k=None,
        alpha=None,
        beta=None,
        lower_bounds=None,
        deadline: Optional[Deadline] = None,
        _label: str = "sd-index/snapshot",
    ) -> BatchResult:
        """Answer a batch against the pinned state (same contract as ``run``)."""
        spec = self._session._coerce_spec(queries, k=k, alpha=alpha, beta=beta)
        return self._session._execute(
            self.state, spec, lower_bounds, _label, deadline=deadline
        )

    def run_one(self, query) -> TopKResult:
        """One SD-Query against the pinned state."""
        return self.run([query]).results[0]

    def upper_bounds(self, queries, k=None, alpha=None, beta=None) -> np.ndarray:
        """Admissible per-query score upper bounds over the pinned state."""
        spec = self._session._coerce_spec(queries, k=k, alpha=alpha, beta=beta)
        return self._session._upper_bounds(self.state, spec)

    def sample_scores(self, queries, pool: int, k=None, alpha=None, beta=None) -> np.ndarray:
        """Evenly spaced live-sample scores over the pinned state."""
        spec = self._session._coerce_spec(queries, k=k, alpha=alpha, beta=beta)
        return self._session._sample_scores(self.state, spec, pool)

    def data_magnitude(self) -> float:
        """Largest absolute scored coordinate in the pinned state."""
        return self._session._data_magnitude(self.state)


# ------------------------------------------------------------------ 2D batches
def batch_topk_2d(
    index,
    qx,
    qy,
    k,
    alpha=1.0,
    beta=1.0,
    seed_pool: int = _SEED_POOL,
    flat: Optional[_FlatTree] = None,
    label: str = "sd-topk/batch",
) -> BatchResult:
    """Vectorized batch execution for a single 2D :class:`TopKIndex`.

    Same filter-and-verify scheme as :class:`QuerySession`, specialized to one
    projection tree: flatten once, bound every leaf for every query in shared
    per-partition kernels, prune with a seeded k-th best bound, then score the
    survivors with the exact normalized-then-scaled formula of
    ``TopKIndex.iter_best`` (bit-identical scores).  ``flat`` may be the
    index's maintained flat session (``TopKIndex.flat_session``), in which case
    tombstoned rows are filtered through its validity mask; by default the
    tree is flattened fresh.
    """
    qx, qy, ks = coerce_point_batch(qx, qy, k)
    m = len(qx)
    alphas = np.array(np.broadcast_to(np.asarray(alpha, dtype=float), (m,)))
    betas = np.array(np.broadcast_to(np.asarray(beta, dtype=float), (m,)))
    for name, weights in (("alpha", alphas), ("beta", betas)):
        if not np.all(np.isfinite(weights)) or np.any(weights <= 0.0):
            raise ValueError(f"{name} weights must be finite and > 0")

    if flat is None:
        flat = _FlatTree(index.tree)
    n_live = flat.live_count
    if n_live == 0 or m == 0:
        return BatchResult(
            results=[TopKResult(matches=[], algorithm=label) for _ in range(m)],
            algorithm=label,
        )
    ks_eff = np.minimum(ks, n_live)
    live_positions = np.flatnonzero(flat.live)
    # Normalize per query through Angle / math.hypot — np.hypot rounds a small
    # fraction of inputs differently, which would break bit-identity with the
    # sequential path's ``iter_best`` (Angle.from_weights + math.hypot).
    cos = np.empty(m)
    sin = np.empty(m)
    scale = np.empty(m)
    for j in range(m):
        angle = Angle.from_weights(float(alphas[j]), float(betas[j]))
        cos[j] = angle.cos
        sin[j] = angle.sin
        scale[j] = math.hypot(float(alphas[j]), float(betas[j]))

    def exact_scores(positions: np.ndarray, j: int) -> np.ndarray:
        normalized = cos[j] * np.abs(flat.y[positions] - qy[j]) - sin[j] * np.abs(
            flat.x[positions] - qx[j]
        )
        return normalized * scale[j]

    magnitude = max(
        float(np.abs(flat.x).max()),
        float(np.abs(flat.y).max()),
        float(np.abs(qx).max()),
        float(np.abs(qy).max()),
    )
    threshold = _seeded_threshold(
        lambda sample: np.vstack(
            [exact_scores(live_positions[sample], j) for j in range(m)]
        ),
        ks_eff,
        n_live,
        seed_pool,
        alphas + betas,
        magnitude,
    )

    ub = leaf_score_bounds(flat, alphas, betas, qx, qy)
    alive = ub >= threshold[:, None]
    results: List[TopKResult] = []
    for j in range(m):
        if alive[j].all():
            positions = live_positions
        else:
            positions = np.flatnonzero(alive[j][flat.leaf_of_pos] & flat.live)
        positions, _refined, head_count = _refine_candidates(
            positions,
            ub[j][flat.leaf_of_pos[positions]],
            int(ks_eff[j]),
            lambda sample: exact_scores(sample, j),
            float(alphas[j] + betas[j]),
            magnitude,
        )
        examined = head_count + len(positions)
        scores = exact_scores(positions, j)
        rows = flat.rows[positions]
        top = select_topk(scores, rows, int(ks_eff[j]))
        matches = [
            Match(
                row_id=int(rows[i]),
                score=float(scores[i]),
                point=(float(flat.x[positions[i]]), float(flat.y[positions[i]])),
            )
            for i in top
        ]
        results.append(
            TopKResult(
                matches=matches,
                candidates_examined=examined,
                full_evaluations=examined,
                algorithm=label,
            )
        )
    return BatchResult(results=results, algorithm=label)
