"""Top-k SD-Queries over 2D points with runtime ``k`` and weights (Section 4).

:class:`TopKIndex` wraps a :class:`repro.core.projection_tree.ProjectionTree`
and implements three query strategies:

``"flat"`` (default)
    Run the vectorized filter-and-verify kernels of :mod:`repro.core.batch`
    over a cached flattened view of the tree (the ``m = 1`` case of the batch
    engine).  The flat view is built lazily and *maintained*: inserts append
    leaf-assigned rows and loosen only the covering leaf's bounds, deletes
    tombstone through a validity mask, and the view reflattens only once
    garbage crosses a threshold (see DESIGN.md).  Scores are bit-identical to
    ``"streams"``.

``"streams"``
    Open the four projection streams at the query angle and merge them with a
    TA-style threshold: the stream heads give an upper bound on the score of any
    point not yet seen, so the merge can stop as soon as the provisional k-th
    best score reaches that bound.  This is the refinement of Algorithm 2
    discussed in DESIGN.md; it is exact for every angle because per-node bounds
    at non-indexed angles are derived admissibly from the bracketing indexed
    angles.  Kept as the oracle for the flat path and for the incremental
    ``iter_best`` stream the Section 5 aggregation consumes.

``"claim6"``
    The paper's Algorithm 4: answer the query at the lower bracketing indexed
    angle, then enumerate results at the upper bracketing angle until they cover
    that answer set, and re-rank the union at the true query angle (Claim 6).

All strategies return identical score sets; the ``claim6`` strategy is kept for
fidelity and for the angle-grid ablation experiments.
"""

from __future__ import annotations

import heapq
import math
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.angles import AngleGrid
from repro.core.epoch import EpochManager, validate_concurrency
from repro.core.geometry import Angle
from repro.core.projection_tree import ProjectionTree, StreamSpec
from repro.core.results import IndexStats, Match, TopKResult

__all__ = ["TopKIndex", "TopKSnapshot"]


class TopKIndex:
    """Index answering 2D top-k SD-Queries with runtime ``k``, ``alpha`` and ``beta``."""

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        angle_grid: Optional[AngleGrid] = None,
        branching: int = 8,
        leaf_capacity: int = 32,
        row_ids: Optional[Sequence[int]] = None,
        rebuild_threshold: float = 0.25,
        concurrency: str = "snapshot",
    ) -> None:
        validate_concurrency(concurrency)
        self.angle_grid = angle_grid or AngleGrid.default()
        self.tree = ProjectionTree(
            x,
            y,
            angles=tuple(self.angle_grid),
            branching=branching,
            leaf_capacity=leaf_capacity,
            row_ids=row_ids,
            rebuild_threshold=rebuild_threshold,
        )
        #: Maintained flattened view backing the ``"flat"`` strategy and
        #: ``batch_query``: built lazily, patched on updates, reflattened once
        #: its garbage fraction exceeds ``rebuild_threshold``.  Under
        #: ``concurrency="snapshot"`` each patch clones the view copy-on-write
        #: and publishes it as a new epoch, so readers holding the previous
        #: view (or a pinned :meth:`snapshot`) are immune to the writer.
        self._flat = None
        self._flat_dirty = False
        self._flat_threshold = float(rebuild_threshold)
        self.concurrency = concurrency
        self._write_lock = threading.RLock()
        self.flat_epochs = EpochManager()
        self.session_reflattens = 0

    def __len__(self) -> int:
        return len(self.tree)

    @classmethod
    def sharded(
        cls,
        x: Sequence[float],
        y: Sequence[float],
        num_shards: int = 4,
        row_ids: Optional[Sequence[int]] = None,
        **options,
    ):
        """A sharded serving engine over the same 2D point set.

        Returns a :class:`repro.core.sharding.ShardedXYIndex` whose
        ``query(qx, qy, k, alpha, beta)`` mirrors :meth:`query`; rows are
        partitioned across ``num_shards`` shards and probed in bound order.
        Scores follow the SD-Index term order ``alpha*|dy| - beta*|dx|``
        (mathematically equal to this index's normalized-then-scaled kernel,
        not bit-for-bit).
        """
        from repro.core.sharding import ShardedXYIndex

        return ShardedXYIndex(x, y, num_shards=num_shards, row_ids=row_ids, **options)

    # ------------------------------------------------------------------ queries
    def flat_session(self):
        """The cached flattened view of the tree (build or reflatten lazily)."""
        from repro.core.batch import _FlatTree

        if self._flat is None or self._flat_dirty:
            with self._write_lock:
                if self._flat is None or self._flat_dirty:
                    if self._flat is not None:
                        self.session_reflattens += 1
                    self._flat = _FlatTree(self.tree)
                    self._flat_dirty = False
                    self.flat_epochs.publish(self._flat)
        return self._flat

    def snapshot(self) -> "TopKSnapshot":
        """Pin the current flat-view epoch: a repeatable-read view.

        Queries answered through the returned :class:`TopKSnapshot` run the
        vectorized flat kernels against the pinned view, unaffected by
        concurrent :meth:`insert`/:meth:`delete`.  Close it (or use it as a
        context manager) to release the pin.
        """
        self.flat_session()
        return TopKSnapshot(self, self.flat_epochs.pin())

    def query(
        self,
        qx: float,
        qy: float,
        k: int,
        alpha: float = 1.0,
        beta: float = 1.0,
        strategy: str = "flat",
    ) -> TopKResult:
        """Return the top-``k`` points for query ``(qx, qy)`` and weights ``alpha, beta``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if strategy == "flat":
            return self._query_flat(qx, qy, k, alpha, beta)
        if strategy == "streams":
            return self._query_streams(qx, qy, k, alpha, beta)
        if strategy == "claim6":
            return self._query_claim6(qx, qy, k, alpha, beta)
        raise ValueError(
            f"unknown strategy {strategy!r}; use 'flat', 'streams' or 'claim6'"
        )

    def _query_flat(self, qx: float, qy: float, k: int, alpha: float, beta: float) -> TopKResult:
        """The ``m = 1`` fast path through the vectorized batch kernels."""
        if alpha <= 0.0 or beta <= 0.0:
            # Degenerate axis-aligned weights: the batch kernels require
            # strictly positive weights, the stream merge does not.
            return self._query_streams(qx, qy, k, alpha, beta)
        from repro.core.batch import batch_topk_2d

        return batch_topk_2d(
            self,
            [qx],
            [qy],
            k,
            alpha=alpha,
            beta=beta,
            flat=self.flat_session(),
            label="sd-topk/flat",
        ).results[0]

    def batch_query(
        self,
        qx,
        qy,
        k,
        alpha=1.0,
        beta=1.0,
    ):
        """Answer many 2D top-k queries at once with the vectorized batch engine.

        ``qx``/``qy`` are ``(m,)`` arrays of query coordinates; ``k``/``alpha``/
        ``beta`` are scalars or ``(m,)`` vectors.  Returns a
        :class:`repro.core.results.BatchResult`; scores are bit-identical to
        :meth:`query` and row ids agree whenever the k-th best score is not
        exactly tied with the (k+1)-th (see :mod:`repro.core.batch`).
        """
        from repro.core.batch import batch_topk_2d

        return batch_topk_2d(self, qx, qy, k, alpha=alpha, beta=beta,
                             flat=self.flat_session())

    def iter_best(
        self,
        qx: float,
        qy: float,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> Iterator[Tuple[int, float]]:
        """Yield ``(row_id, score)`` pairs in non-increasing score order.

        This incremental form of the top-k query is what the higher-dimensional
        aggregation of Section 5 consumes: each 2D subproblem is represented by
        such a stream and the threshold algorithm pulls from it on demand.
        """
        angle = Angle.from_weights(alpha, beta)
        scale = math.hypot(alpha, beta)
        qx, qy = float(qx), float(qy)
        streams = self.tree.open_streams(qx, angle)
        emitted: set = set()
        pool: List[Tuple[float, int]] = []  # max-heap via negated scores
        pooled: set = set()

        cos_qy = angle.cos * qy
        sin_qx = angle.sin * qx
        cos = angle.cos
        sin = angle.sin
        # Each stream head implies an upper bound on the score of every point that
        # stream has not yet produced; uniformly bound = sign * key + offset.
        # Lower streams: bound = (projected height at the axis) - cos*qy.
        # Upper streams: bound = cos*qy - (projected height at the axis).
        stream_terms = [
            (streams[StreamSpec.LLP], 1.0, sin_qx - cos_qy),
            (streams[StreamSpec.RLP], 1.0, -sin_qx - cos_qy),
            (streams[StreamSpec.LUP], -1.0, cos_qy + sin_qx),
            (streams[StreamSpec.RUP], -1.0, cos_qy - sin_qx),
        ]

        def head_bound(entry) -> float:
            stream, sign, offset = entry
            key = stream.head_key()
            if key is None:
                return -math.inf
            return sign * key + offset

        while True:
            # Refill the candidate pool until its best member provably beats every
            # unseen point (TA-style threshold over the four stream heads).
            while True:
                best_entry = None
                threshold = -math.inf
                for entry in stream_terms:
                    bound = head_bound(entry)
                    if bound > threshold:
                        threshold = bound
                        best_entry = entry
                if pool and -pool[0][0] >= threshold:
                    break
                if threshold == -math.inf:
                    break
                try:
                    row, px, py, _key = next(best_entry[0])
                except StopIteration:
                    continue
                if row in emitted or row in pooled:
                    continue
                score = cos * abs(py - qy) - sin * abs(px - qx)
                heapq.heappush(pool, (-score, row))
                pooled.add(row)
            if not pool:
                return
            negative_score, row = heapq.heappop(pool)
            pooled.discard(row)
            emitted.add(row)
            yield row, -negative_score * scale

    def _query_streams(self, qx: float, qy: float, k: int, alpha: float, beta: float) -> TopKResult:
        matches: List[Match] = []
        examined = 0
        for row, score in self.iter_best(qx, qy, alpha, beta):
            examined += 1
            matches.append(Match(row_id=row, score=score, point=self.tree.point(row)))
            if len(matches) >= k:
                break
        return TopKResult(
            matches=matches,
            candidates_examined=examined,
            full_evaluations=examined,
            algorithm="sd-topk/streams",
        )

    # ------------------------------------------------------------------ Claim 6
    def _query_claim6(self, qx: float, qy: float, k: int, alpha: float, beta: float) -> TopKResult:
        query_angle = Angle.from_weights(alpha, beta)
        scale = math.hypot(alpha, beta)
        lower, upper = self.angle_grid.bracket(query_angle)
        examined = 0

        def weighted_score(row: int) -> float:
            px, py = self.tree.point(row)
            return scale * query_angle.normalized_score(px - qx, py - qy)

        if lower.radians == upper.radians:
            # The query angle is indexed: answer directly at that angle.
            rows: List[int] = []
            for row, _ in self._iter_at_angle(qx, qy, lower):
                rows.append(row)
                examined += 1
                if len(rows) >= k:
                    break
            matches = [
                Match(row_id=row, score=weighted_score(row), point=self.tree.point(row))
                for row in rows
            ]
            return TopKResult(
                matches=matches,
                candidates_examined=examined,
                full_evaluations=examined,
                algorithm="sd-topk/claim6",
            )

        # Step 1: top-k at the lower bracketing angle.
        top_lower: List[int] = []
        lower_scores: List[float] = []
        for row, score in self._iter_at_angle(qx, qy, lower):
            top_lower.append(row)
            lower_scores.append(score)
            examined += 1
            if len(top_lower) >= k:
                break
        required = set(top_lower)

        # Step 2: enumerate at the upper bracketing angle until the prefix covers
        # the lower-angle answer set (consuming ties so the prefix is well defined).
        candidates: Dict[int, float] = {}
        missing = set(required)
        boundary_score: Optional[float] = None
        for row, score in self._iter_at_angle(qx, qy, upper):
            if not missing and (boundary_score is None or score < boundary_score - 1e-12):
                break
            candidates[row] = score
            missing.discard(row)
            boundary_score = score
            examined += 1
        for row in top_lower:
            candidates.setdefault(row, 0.0)

        matches = sorted(
            Match(row_id=row, score=weighted_score(row), point=self.tree.point(row))
            for row in candidates
        )[:k]
        return TopKResult(
            matches=matches,
            candidates_examined=examined,
            full_evaluations=len(candidates),
            algorithm="sd-topk/claim6",
        )

    def _iter_at_angle(self, qx: float, qy: float, angle: Angle) -> Iterator[Tuple[int, float]]:
        """Best-first iteration at an exactly indexed angle (normalized weights)."""
        return self.iter_best(qx, qy, alpha=angle.cos, beta=angle.sin)

    # ------------------------------------------------------------------ updates
    def insert(self, x: float, y: float, row_id: Optional[int] = None) -> int:
        """Insert a point (see :meth:`ProjectionTree.insert`).

        The cached flat view, if built, is patched rather than discarded: the
        point is appended to its covering leaf and only that leaf's bounds
        loosen.  Snapshot mode patches a copy-on-write clone and publishes it,
        so readers of the previous view are unaffected.
        """
        with self._write_lock:
            row = self.tree.insert(x, y, row_id)
            flat = self._flat
            if flat is not None and not self._flat_dirty:
                if flat.num_leaves == 0:
                    self._flat_dirty = True
                else:
                    # Clone for snapshot isolation — and whenever the view's
                    # arrays are read-only (restored via ``load(mmap=True)``).
                    if self.concurrency == "snapshot" or not flat.live.flags.writeable:
                        flat = flat.clone()
                    flat.append_points([row], [float(x)], [float(y)])
                    self._install_flat(flat)
            return row

    def delete(self, row_id: int) -> None:
        """Delete a point (see :meth:`ProjectionTree.delete`).

        The cached flat view tombstones the row through its validity mask
        (on a published copy-on-write clone under snapshot mode).
        """
        with self._write_lock:
            self.tree.delete(row_id)
            flat = self._flat
            if flat is not None and not self._flat_dirty:
                if self.concurrency == "snapshot" or not flat.live.flags.writeable:
                    flat = flat.clone()
                flat.tombstone_rows([row_id])
                self._install_flat(flat)

    def _install_flat(self, flat) -> None:
        """Publish a patched flat view and re-check its garbage threshold."""
        if flat is not self._flat:
            self._flat = flat
            self.flat_epochs.publish(flat)
        if flat.garbage_fraction() > self._flat_threshold:
            self._flat_dirty = True

    # ------------------------------------------------------------- persistence
    def save(self, path) -> None:
        """Write a durable snapshot of the maintained flat view at ``path``.

        Pins the current flat epoch (writers keep running while the arrays
        stream) and records the tree build parameters; :meth:`load` rebuilds
        the projection tree lazily on first structural need.
        """
        from repro.core.persistence import save_engine

        save_engine(self, path)

    @classmethod
    def load(cls, path, mmap: bool = False, verify: Optional[bool] = None) -> "TopKIndex":
        """Load a snapshot written by :meth:`save` (``mmap=True`` maps arrays)."""
        from repro.core.persistence import load_engine

        return load_engine(path, mmap=mmap, verify=verify, expect="topk")

    def rebuild(self) -> None:
        """Force a rebuild of the underlying tree (drops the flat view too)."""
        with self._write_lock:
            self.tree.rebuild()
            self._flat = None
            self._flat_dirty = False

    # ------------------------------------------------------------------ stats
    def stats(self) -> IndexStats:
        """Size statistics of the underlying projection tree."""
        stats = self.tree.stats()
        stats.name = "sd-topk"
        return stats


class TopKSnapshot:
    """A pinned, immutable flat view of one :class:`TopKIndex` epoch.

    Answers 2D top-k queries through the vectorized flat kernels against the
    pinned view; concurrent inserts and deletes on the owning index publish
    new epochs and never touch this one.  Weights must be strictly positive
    (the flat kernels' requirement — the degenerate axis-aligned fallback
    needs the live tree, which a snapshot deliberately does not read).
    """

    def __init__(self, index: TopKIndex, epoch) -> None:
        self._index = index
        self._epoch = epoch
        self._closed = False

    def close(self) -> None:
        """Release the pinned epoch (idempotent)."""
        if not self._closed:
            self._closed = True
            self._epoch.release()

    def __enter__(self) -> "TopKSnapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def version(self) -> int:
        """The pinned flat epoch's version."""
        return self._epoch.version

    @property
    def flat(self):
        if self._closed:
            raise RuntimeError("top-k snapshot is closed")
        return self._epoch.state

    def __len__(self) -> int:
        return self.flat.live_count

    def query(self, qx: float, qy: float, k: int, alpha: float = 1.0, beta: float = 1.0) -> TopKResult:
        """Top-``k`` for one query point against the pinned view."""
        return self.batch_query([qx], [qy], k, alpha=alpha, beta=beta).results[0]

    def batch_query(self, qx, qy, k, alpha=1.0, beta=1.0):
        """Top-``k`` for a batch of query points against the pinned view."""
        from repro.core.batch import batch_topk_2d

        return batch_topk_2d(
            self._index, qx, qy, k, alpha=alpha, beta=beta, flat=self.flat,
            label="sd-topk/snapshot",
        )
