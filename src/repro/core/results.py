"""Result and statistics records shared by every query algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Match", "ShardCoverage", "TopKResult", "BatchResult", "IndexStats"]


@dataclass(frozen=True, order=True)
class Match:
    """One answer of a top-k query.

    Ordering is by ``(-score, row_id)`` so sorting a list of matches yields the
    best-first order with a deterministic tie-break on the row identifier.
    """

    sort_key: Tuple[float, int] = field(init=False, repr=False, compare=True)
    row_id: int = field(compare=False)
    score: float = field(compare=False)
    point: Optional[Tuple[float, ...]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "sort_key", (-float(self.score), int(self.row_id)))


@dataclass(frozen=True)
class ShardCoverage:
    """Which fault domains a degraded answer actually covered (DESIGN.md §9).

    Attached to a :class:`TopKResult` whenever the sharded engine had to
    skip a shard (fault, open breaker, or deadline).  The contract is
    *never silently wrong, always explicitly partial*: every returned match
    is a genuine row with its exact score, and any row the answer might be
    missing has a true score of at most ``score_bound`` (the maximum
    admissible upper bound over the skipped shards, the same bounds the
    bound-ordered serving loop prunes with).  ``skipped`` records
    ``(shard, reason)`` pairs with reason one of ``"fault"``,
    ``"breaker_open"`` or ``"deadline"``; shards that were *pruned* by the
    bound order are complete coverage, not skips.
    """

    total: int  #: shards in the serving topology
    probed: Tuple[int, ...]  #: shards fully accounted for (probed or pruned)
    skipped: Tuple[Tuple[int, str], ...]  #: (shard, reason) left uncovered
    score_bound: float  #: no missing row can score above this

    @property
    def covered_fraction(self) -> float:
        """Fraction of shards fully accounted for."""
        if self.total <= 0:
            return 1.0
        return len(self.probed) / self.total

    def as_dict(self) -> dict:
        """JSON-friendly view (the serving payload embeds it)."""
        return {
            "total": self.total,
            "probed": list(self.probed),
            "skipped": [[shard, reason] for shard, reason in self.skipped],
            "score_bound": self.score_bound,
            "covered_fraction": self.covered_fraction,
        }


@dataclass
class TopKResult:
    """The answer set of a top-k query plus execution counters.

    ``matches`` is always sorted best-first.  The counters are filled in by each
    algorithm and are used by the experiment harness to report pruning power in
    addition to wall-clock time.  ``degraded`` marks an explicitly partial
    answer (some fault domain was skipped); ``coverage`` then reports which
    shards were covered and the conservative bound on anything missing.
    """

    matches: List[Match]
    candidates_examined: int = 0
    full_evaluations: int = 0
    nodes_visited: int = 0
    algorithm: str = ""
    degraded: bool = False
    coverage: Optional[ShardCoverage] = None

    def __post_init__(self) -> None:
        self.matches = sorted(self.matches)

    def __len__(self) -> int:
        return len(self.matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(self.matches)

    def __getitem__(self, index: int) -> Match:
        return self.matches[index]

    @property
    def row_ids(self) -> List[int]:
        """Row identifiers of the matches, best first."""
        return [match.row_id for match in self.matches]

    @property
    def scores(self) -> List[float]:
        """Scores of the matches, best first."""
        return [match.score for match in self.matches]

    def score_vector(self) -> np.ndarray:
        """Scores as a numpy array (handy for comparisons in tests)."""
        return np.asarray(self.scores, dtype=float)

    def same_scores(self, other: "TopKResult", tol: float = 1e-9) -> bool:
        """True if both results contain the same multiset of scores.

        Two correct algorithms may return different points when scores tie, so
        result equivalence is defined on scores, not on row ids.
        """
        if len(self) != len(other):
            return False
        mine = sorted(self.scores, reverse=True)
        theirs = sorted(other.scores, reverse=True)
        return all(abs(a - b) <= tol for a, b in zip(mine, theirs))

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, float]],
        k: int,
        points: Optional[Sequence[Sequence[float]]] = None,
        algorithm: str = "",
    ) -> "TopKResult":
        """Build a result from ``(row_id, score)`` pairs, keeping only the best ``k``."""
        matches = [
            Match(
                row_id=row_id,
                score=score,
                point=tuple(points[row_id]) if points is not None else None,
            )
            for row_id, score in pairs
        ]
        matches.sort()
        return cls(matches=matches[:k], algorithm=algorithm)


@dataclass
class BatchResult:
    """The answer sets of a batch of top-k queries, one :class:`TopKResult` each.

    Produced by the vectorized batch execution paths
    (:meth:`repro.core.sdindex.SDIndex.batch_query` and friends).  The container
    preserves query order: ``batch[j]`` is the answer of the ``j``-th query of
    the batch.  Aggregate counters sum the per-query counters so batched and
    sequential executions can be compared like-for-like.
    """

    results: List[TopKResult]
    algorithm: str = ""

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[TopKResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> TopKResult:
        return self.results[index]

    @property
    def row_ids(self) -> List[List[int]]:
        """Per-query row identifiers, best first."""
        return [result.row_ids for result in self.results]

    @property
    def scores(self) -> List[List[float]]:
        """Per-query scores, best first."""
        return [result.scores for result in self.results]

    @property
    def degraded(self) -> bool:
        """True when any query's answer in the batch is explicitly partial."""
        return any(result.degraded for result in self.results)

    @property
    def candidates_examined(self) -> int:
        """Total candidates examined across the batch."""
        return sum(result.candidates_examined for result in self.results)

    @property
    def full_evaluations(self) -> int:
        """Total full score evaluations across the batch."""
        return sum(result.full_evaluations for result in self.results)

    def score_matrix(self, fill: float = float("nan")) -> np.ndarray:
        """Scores as an ``(m, max_k)`` array, padded with ``fill``.

        Queries may ask for different ``k`` (or hit a dataset smaller than
        ``k``), so rows are padded to the widest answer set.
        """
        width = max((len(result) for result in self.results), default=0)
        matrix = np.full((len(self.results), width), fill, dtype=float)
        for j, result in enumerate(self.results):
            matrix[j, : len(result)] = result.scores
        return matrix

    def same_scores(self, other: "BatchResult", tol: float = 1e-9) -> bool:
        """True if every query's result has the same score multiset as ``other``.

        ``other`` may be a :class:`BatchResult` or any sequence of
        :class:`TopKResult` (e.g. a Python loop over the single-query path).
        """
        theirs = list(other)
        if len(self.results) != len(theirs):
            return False
        return all(
            mine.same_scores(result, tol=tol)
            for mine, result in zip(self.results, theirs)
        )


@dataclass
class IndexStats:
    """Size and shape statistics reported by index structures.

    ``memory_bytes`` is an analytic estimate of the main-memory footprint (number
    of stored floats/ints/pointers times their size), matching how the paper
    reports memory in Figures 8h-8i.  ``deep_memory_bytes`` may additionally hold
    a measured ``sys.getsizeof``-based figure when the caller requests it.
    """

    name: str
    num_points: int
    num_nodes: int = 0
    num_regions: int = 0
    height: int = 0
    branching: int = 0
    num_angles: int = 0
    memory_bytes: int = 0
    deep_memory_bytes: Optional[int] = None
    build_seconds: Optional[float] = None

    @property
    def memory_mb(self) -> float:
        """Analytic memory footprint in megabytes."""
        return self.memory_bytes / (1024.0 * 1024.0)

    def as_dict(self) -> dict:
        """Plain-dict view used by the experiment reporting code."""
        return {
            "name": self.name,
            "num_points": self.num_points,
            "num_nodes": self.num_nodes,
            "num_regions": self.num_regions,
            "height": self.height,
            "branching": self.branching,
            "num_angles": self.num_angles,
            "memory_bytes": self.memory_bytes,
            "memory_mb": self.memory_mb,
            "deep_memory_bytes": self.deep_memory_bytes,
            "build_seconds": self.build_seconds,
        }
