"""Pairing repulsive with attractive dimensions (Section 5).

The higher-dimensional SD-Query is decomposed into 2D subproblems by pairing each
repulsive dimension with an attractive dimension (a bijection over
``min(|D|, |S|)`` pairs); dimensions left over form 1D subproblems.  The paper
pairs dimensions arbitrarily and calls a smarter mapping future work; this module
provides the arbitrary strategy plus two informed strategies used by the pairing
ablation:

``order``
    Pair the i-th repulsive dimension with the i-th attractive dimension in the
    order the caller listed them (the paper's choice).
``spread``
    Pair dimensions by matching value spread (largest standard deviation with
    largest standard deviation), which keeps the projection angles of the
    subproblems away from the degenerate 0/90-degree corners.
``correlation``
    Greedy maximum |Pearson correlation| matching, so that each 2D index covers a
    pair of dimensions whose joint distribution is most structured — the
    direction the paper's future-work section points at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["DimensionPairing", "pair_dimensions", "PAIRING_STRATEGIES"]

PAIRING_STRATEGIES = ("order", "spread", "correlation")


@dataclass(frozen=True)
class DimensionPairing:
    """The result of pairing: 2D subproblems plus leftover 1D subproblems."""

    pairs: Tuple[Tuple[int, int], ...]  # (repulsive_dim, attractive_dim)
    leftover_repulsive: Tuple[int, ...]
    leftover_attractive: Tuple[int, ...]

    @property
    def num_subproblems(self) -> int:
        return len(self.pairs) + len(self.leftover_repulsive) + len(self.leftover_attractive)

    def describe(self) -> str:
        """Human-readable summary used in experiment logs."""
        parts = [f"pair(y=d{r}, x=d{a})" for r, a in self.pairs]
        parts += [f"1d-repulsive(d{d})" for d in self.leftover_repulsive]
        parts += [f"1d-attractive(d{d})" for d in self.leftover_attractive]
        return ", ".join(parts) if parts else "<empty>"


def _pair_by_order(repulsive: Sequence[int], attractive: Sequence[int]) -> List[Tuple[int, int]]:
    return list(zip(repulsive, attractive))


def _pair_by_spread(
    data: np.ndarray, repulsive: Sequence[int], attractive: Sequence[int]
) -> List[Tuple[int, int]]:
    spread = data.std(axis=0)
    ordered_repulsive = sorted(repulsive, key=lambda d: -spread[d])
    ordered_attractive = sorted(attractive, key=lambda d: -spread[d])
    count = min(len(ordered_repulsive), len(ordered_attractive))
    return list(zip(ordered_repulsive[:count], ordered_attractive[:count]))


def _pair_by_correlation(
    data: np.ndarray, repulsive: Sequence[int], attractive: Sequence[int]
) -> List[Tuple[int, int]]:
    count = min(len(repulsive), len(attractive))
    if count == 0:
        return []
    candidates: List[Tuple[float, int, int]] = []
    for r in repulsive:
        for a in attractive:
            r_values = data[:, r]
            a_values = data[:, a]
            if r_values.std() == 0 or a_values.std() == 0:
                correlation = 0.0
            else:
                correlation = float(abs(np.corrcoef(r_values, a_values)[0, 1]))
            candidates.append((correlation, r, a))
    candidates.sort(reverse=True)
    used_repulsive: set = set()
    used_attractive: set = set()
    pairs: List[Tuple[int, int]] = []
    for correlation, r, a in candidates:
        if r in used_repulsive or a in used_attractive:
            continue
        pairs.append((r, a))
        used_repulsive.add(r)
        used_attractive.add(a)
        if len(pairs) == count:
            break
    return pairs


def pair_dimensions(
    repulsive: Sequence[int],
    attractive: Sequence[int],
    strategy: str = "order",
    data: np.ndarray = None,
) -> DimensionPairing:
    """Pair dimensions according to ``strategy`` and report the leftovers.

    ``data`` (the ``(n, m)`` matrix) is required for the data-driven strategies
    (``spread`` and ``correlation``).
    """
    repulsive = [int(d) for d in repulsive]
    attractive = [int(d) for d in attractive]
    if strategy not in PAIRING_STRATEGIES:
        raise ValueError(f"unknown pairing strategy {strategy!r}; choose from {PAIRING_STRATEGIES}")
    if strategy == "order":
        pairs = _pair_by_order(repulsive, attractive)
    else:
        if data is None:
            raise ValueError(f"the {strategy!r} pairing strategy needs the data matrix")
        matrix = np.asarray(data, dtype=float)
        if strategy == "spread":
            pairs = _pair_by_spread(matrix, repulsive, attractive)
        else:
            pairs = _pair_by_correlation(matrix, repulsive, attractive)
    paired_repulsive = {r for r, _ in pairs}
    paired_attractive = {a for _, a in pairs}
    leftover_repulsive = tuple(d for d in repulsive if d not in paired_repulsive)
    leftover_attractive = tuple(d for d in attractive if d not in paired_attractive)
    return DimensionPairing(
        pairs=tuple(pairs),
        leftover_repulsive=leftover_repulsive,
        leftover_attractive=leftover_attractive,
    )
