"""Epoch-based snapshot isolation for serve-while-mutate (DESIGN.md section 6).

PR 3 fans shard probes out on a thread pool, but every layer underneath still
assumes single-threaded mutation: ``insert`` / ``bulk_delete`` patch a
:class:`~repro.core.batch.QuerySession`'s flat arrays and validity mask in
place, and ``ShardedIndex.rebalance`` rebuilds the shard list under an
in-flight probe.  A reader that overlaps any of those writes sees torn state —
a half-extended row array, a mask ahead of its bounds, a router mid-refit —
and silently returns wrong answers.

The standard fix for a read-mostly serving tier is not a global lock but
*versioned snapshots* (cf. ProvSQL's in-engine bookkeeping layered under
unchanged query semantics, and NeedleTail serving reads off immutable layouts
while appends land elsewhere — both in PAPERS.md):

* Readers **pin** the current :class:`Epoch` and execute entirely against its
  immutable ``state``; nothing a writer does afterwards can reach them.
* Writers prepare the next state off to the side (copy-on-write of exactly the
  arrays they would have mutated in place) and **publish** it — one reference
  swap under the manager lock, atomic with respect to every pin.
* A superseded epoch is **retired** at publish time and **reclaimed** (its
  state reference dropped, an optional callback fired) as soon as its reader
  refcount drains to zero.  An epoch is therefore alive iff it is current or
  some reader still holds it — no reader ever observes a reclaimed state, and
  no abandoned state outlives its last reader.

The manager serializes nothing but the pin/publish bookkeeping itself; callers
that allow multiple writer threads serialize the *preparation* of successor
states with their own write lock (the aggregator and sharded engines do).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

from repro import faults

__all__ = ["Epoch", "EpochManager", "validate_concurrency"]

#: Fault points of the epoch lifecycle (DESIGN.md §9).  Both fire *before*
#: any bookkeeping mutates, so an injected raise leaves the manager exactly
#: as it was — readers keep their pins, the current epoch stays current.
_FP_PIN = faults.declare_fault_point(
    "epoch.pin", "reader about to pin the current epoch"
)
_FP_PUBLISH = faults.declare_fault_point(
    "epoch.publish", "writer about to publish a successor epoch"
)


def validate_concurrency(mode: str) -> str:
    """Validate a ``concurrency`` knob value (shared by every engine facade)."""
    if mode not in ("snapshot", "unsafe"):
        raise ValueError(
            f"unknown concurrency mode {mode!r}; use 'snapshot' or 'unsafe'"
        )
    return mode


class Epoch:
    """One published, immutable version of a serving state.

    ``state`` is whatever payload the owner published (a flattened session
    state, a shard topology, a frozen region view).  The epoch itself only
    adds identity (``version``), the reader refcount, and its place in the
    retire/reclaim lifecycle.  All lifecycle transitions happen under the
    owning manager's lock; the ``pins``/``retired``/``reclaimed`` properties
    are unsynchronized peeks for monitoring and tests.
    """

    __slots__ = ("version", "state", "_pins", "_retired", "_reclaimed", "_manager")

    def __init__(self, manager: "EpochManager", version: int, state: Any) -> None:
        self.version = version
        self.state = state
        self._pins = 0
        self._retired = False
        self._reclaimed = False
        self._manager = manager

    @property
    def pins(self) -> int:
        """Readers currently holding this epoch."""
        return self._pins

    @property
    def retired(self) -> bool:
        """True once a newer epoch has been published over this one."""
        return self._retired

    @property
    def reclaimed(self) -> bool:
        """True once the state reference has been dropped (refcount drained)."""
        return self._reclaimed

    def release(self) -> None:
        """Unpin this epoch (idempotence is the caller's responsibility)."""
        self._manager.unpin(self)

    # Context-manager form so ``with manager.pin() as epoch:`` reads naturally.
    def __enter__(self) -> "Epoch":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, on in (("R", self._retired), ("X", self._reclaimed))
            if on
        )
        return f"Epoch(version={self.version}, pins={self._pins}{', ' + flags if flags else ''})"


class EpochManager:
    """Hands out pinned immutable epochs to readers; publishes writer states.

    The lifecycle invariants (all enforced under one lock):

    * Exactly one epoch is *current* at any time (after the first publish).
    * ``pin`` returns the current epoch with its refcount raised — atomic with
      respect to ``publish``, so a reader can never pin a state that is
      already being torn down.
    * ``publish`` retires the previous current epoch; a retired epoch is
      reclaimed the moment its refcount drains (immediately, if unpinned).
    * Reclamation drops the epoch's state reference and fires ``on_reclaim``
      (used by tests to assert nothing leaks, and available to owners that
      cache derived structures per epoch).
    """

    def __init__(self, on_reclaim: Optional[Callable[[Epoch], None]] = None) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Epoch] = None
        self._version = 0
        self._published = 0
        self._reclaimed = 0
        self._retired_live: List[Epoch] = []
        self._on_reclaim = on_reclaim

    # ------------------------------------------------------------------ writers
    def publish(self, state: Any) -> Epoch:
        """Atomically install ``state`` as the new current epoch.

        The previous current epoch is retired; if no reader holds it, it is
        reclaimed before ``publish`` returns.  Returns the new epoch.
        """
        faults.fire(_FP_PUBLISH)
        to_reclaim: Optional[Epoch] = None
        with self._lock:
            self._version += 1
            self._published += 1
            epoch = Epoch(self, self._version, state)
            previous = self._current
            self._current = epoch
            if previous is not None:
                previous._retired = True
                if previous._pins == 0:
                    to_reclaim = previous
                    self._reclaim_locked(previous)
                else:
                    self._retired_live.append(previous)
        self._notify(to_reclaim)
        return epoch

    # ------------------------------------------------------------------ readers
    def pin(self) -> Epoch:
        """Pin and return the current epoch (raises before the first publish)."""
        faults.fire(_FP_PIN)
        with self._lock:
            if self._current is None:
                raise RuntimeError("no epoch has been published yet")
            self._current._pins += 1
            return self._current

    def unpin(self, epoch: Epoch) -> None:
        """Drop one reader reference; reclaims the epoch if it drained retired."""
        to_reclaim: Optional[Epoch] = None
        with self._lock:
            if epoch._pins <= 0:
                raise RuntimeError(
                    f"epoch {epoch.version} is not pinned (double release?)"
                )
            epoch._pins -= 1
            if epoch._pins == 0 and epoch._retired and not epoch._reclaimed:
                to_reclaim = epoch
                self._reclaim_locked(epoch)
                self._retired_live.remove(epoch)
        self._notify(to_reclaim)

    # ------------------------------------------------------------------ internals
    def _reclaim_locked(self, epoch: Epoch) -> None:
        epoch._reclaimed = True
        epoch.state = None
        self._reclaimed += 1

    def _notify(self, epoch: Optional[Epoch]) -> None:
        # Callbacks run outside the lock: they may touch the manager again.
        if epoch is not None and self._on_reclaim is not None:
            self._on_reclaim(epoch)

    # ------------------------------------------------------------------ peeking
    @property
    def current(self) -> Epoch:
        """The current epoch without pinning it (raises before first publish).

        Only safe for single-threaded owners (the ``concurrency="unsafe"``
        paths) or for monitoring; concurrent readers must :meth:`pin` — or
        use :meth:`current_state`, which reads the epoch and its state in one
        atomic step.
        """
        current = self._current
        if current is None:
            raise RuntimeError("no epoch has been published yet")
        return current

    def current_state(self) -> Any:
        """The current epoch's state, read atomically under the manager lock.

        Safe without pinning: a concurrent publish can reclaim the *epoch*
        (dropping its state pointer), but the caller already holds a direct
        reference to the state object, which stays intact — reclamation never
        mutates published states.  Use this instead of ``current.state``
        whenever another thread may publish in between the two reads.
        """
        with self._lock:
            if self._current is None:
                raise RuntimeError("no epoch has been published yet")
            return self._current.state

    @property
    def version(self) -> int:
        """Version of the most recently published epoch (0 before any)."""
        return self._version

    @property
    def published(self) -> int:
        """Total epochs ever published."""
        return self._published

    @property
    def reclaimed(self) -> int:
        """Total epochs reclaimed so far."""
        return self._reclaimed

    @property
    def live_epochs(self) -> int:
        """Epochs not yet reclaimed: the current one plus retired-but-pinned."""
        with self._lock:
            return (1 if self._current is not None else 0) + len(self._retired_live)

    @property
    def pinned_readers(self) -> int:
        """Total outstanding reader pins across all live epochs."""
        with self._lock:
            pins = sum(epoch._pins for epoch in self._retired_live)
            if self._current is not None:
                pins += self._current._pins
            return pins

    def leak_report(self) -> dict:
        """Counters for drain assertions in tests (one consistent view)."""
        with self._lock:
            return {
                "version": self._version,
                "published": self._published,
                "reclaimed": self._reclaimed,
                "live_epochs": (1 if self._current is not None else 0)
                + len(self._retired_live),
                "pinned_readers": sum(e._pins for e in self._retired_live)
                + (self._current._pins if self._current is not None else 0),
            }
