"""Top-1 (apriori-``k``) region index over 2D points (Section 3 of the paper).

The index assumes that ``k`` and the weighting parameters ``alpha`` / ``beta`` are
known when the index is built.  It stores, for each of the two projection sides,
the decomposition of the x-axis into regions in which a single point provides the
highest lower projection (respectively the lowest upper projection).  Claim 5
guarantees at most ``n`` regions per side, and Claim 4 guarantees that the top-1
answer for any query is one of the two region owners at the query's axis.

For ``k > 1`` (still known apriori) the index stores the paper's generalization:
the regions in which the identity of the *k highest lower projections* and the *k
lowest upper projections* stays constant.  At any axis position the k highest
lower projections consist of the k largest ``w_a`` intercepts among points left of
the axis plus the k largest ``w_b`` intercepts among points right of it (and dually
for the upper side), so the structure reduces to four prefix/suffix "running
top-k" region lists with O(k n) total storage — the bound Section 3 states.

Updates follow Section 3: an inserted point that never surfaces on the indexed
envelopes is recorded but requires no structural work; a surfacing insert is a
local splice for ``k = 1`` and a buffered point (re-indexed lazily) otherwise;
deleting a region owner triggers a rebuild of the affected side.
"""

from __future__ import annotations

import bisect
import heapq
import math
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.epoch import EpochManager
from repro.core.geometry import Angle
from repro.core.isoline import Envelope, EnvelopeSide, build_envelope
from repro.core.results import IndexStats, Match, TopKResult

__all__ = ["Top1Index", "Top1Snapshot"]


class _RunningTopKRegions:
    """Regions of a 1D sweep in which the running top-``k`` of a key stays constant.

    Built from points sorted by a sweep coordinate: after processing a prefix of
    the sweep order, the structure records the ``k`` best keys seen so far; a new
    region is emitted every time that set changes.  Querying with a sweep value
    returns the candidate rows for the prefix ending at that value, via binary
    search.  Suffix structures are obtained by negating the sweep coordinate.
    """

    def __init__(
        self,
        sweep_values: Sequence[float],
        key_values: Sequence[float],
        row_ids: Sequence[int],
        k: int,
        maximize: bool,
    ) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        order = sorted(range(len(row_ids)), key=lambda i: (sweep_values[i], row_ids[i]))
        sign = 1.0 if maximize else -1.0
        # Min-heap over the retained keys; the root is the weakest retained entry.
        heap: List[Tuple[float, int]] = []
        self.breakpoints: List[float] = []
        self.candidate_sets: List[Tuple[int, ...]] = [()]
        for position in order:
            key = sign * float(key_values[position])
            row = int(row_ids[position])
            changed = False
            if len(heap) < k:
                heapq.heappush(heap, (key, row))
                changed = True
            elif key > heap[0][0]:
                heapq.heapreplace(heap, (key, row))
                changed = True
            if changed:
                sweep = float(sweep_values[position])
                members = tuple(sorted(row for _, row in heap))
                if self.breakpoints and self.breakpoints[-1] == sweep:
                    self.candidate_sets[-1] = members
                else:
                    self.breakpoints.append(sweep)
                    self.candidate_sets.append(members)

    def candidates_at(self, sweep_value: float) -> Tuple[int, ...]:
        """Candidate rows for the prefix of points with sweep coordinate <= value."""
        position = bisect.bisect_right(self.breakpoints, sweep_value)
        return self.candidate_sets[position]

    def indexed_rows(self) -> set:
        """Every row id stored in any region (owners whose deletion needs a rebuild)."""
        rows: set = set()
        for members in self.candidate_sets:
            rows.update(members)
        return rows

    def memory_bytes(self) -> int:
        stored = sum(len(members) for members in self.candidate_sets)
        return 8 * len(self.breakpoints) + 8 * stored

    def num_regions(self) -> int:
        return len(self.candidate_sets)


class Top1Index:
    """Region index answering top-``k`` SD-Queries for a fixed ``k`` and fixed weights."""

    #: Rebuild the index once the lazily-buffered inserts exceed this fraction of
    #: the indexed points (with a small absolute floor so tiny indexes do not
    #: rebuild on every insert).
    _PENDING_REBUILD_FRACTION = 0.02
    _PENDING_REBUILD_FLOOR = 32

    def __init__(
        self,
        x: Sequence[float],
        y: Sequence[float],
        angle: Optional[Angle] = None,
        k: int = 1,
        row_ids: Optional[Sequence[int]] = None,
        alpha: float = 1.0,
        beta: float = 1.0,
    ) -> None:
        if angle is None:
            angle = Angle.from_weights(alpha, beta)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.angle = angle
        self.k = int(k)
        #: Scale factor converting normalized scores back to the weighted score.
        self.score_scale = math.hypot(alpha, beta)

        xs = np.asarray(x, dtype=float)
        ys = np.asarray(y, dtype=float)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("x and y must be 1-d arrays of equal length")
        ids = (
            list(range(len(xs)))
            if row_ids is None
            else [int(r) for r in row_ids]
        )
        if len(ids) != len(xs):
            raise ValueError("row_ids must align with coordinates")
        if len(set(ids)) != len(ids):
            raise ValueError("row_ids must be unique")

        self._points: Dict[int, Tuple[float, float]] = {
            row: (float(px), float(py)) for row, px, py in zip(ids, xs, ys)
        }
        self._pending: Dict[int, Tuple[float, float]] = {}
        self._build_seconds = 0.0
        #: Lazily built numpy views of the region structures (breakpoints and
        #: owners/candidate sets) shared by the single-query fast path and the
        #: vectorized batch path; invalidated whenever a region changes.
        self._region_cache = None
        #: Mutation counter (every insert/delete/rebuild bumps it) plus the
        #: epoch manager of frozen read views built on demand by snapshot().
        self._mutations = 0
        self._write_lock = threading.RLock()
        self.view_epochs = EpochManager()
        self._view_built_at = -1
        self._rebuild()

    # ------------------------------------------------------------------ build
    @classmethod
    def from_weights(
        cls,
        x: Sequence[float],
        y: Sequence[float],
        alpha: float,
        beta: float,
        k: int = 1,
        row_ids: Optional[Sequence[int]] = None,
    ) -> "Top1Index":
        """Build the index for the (apriori known) weights ``alpha`` and ``beta``."""
        return cls(x, y, angle=Angle.from_weights(alpha, beta), k=k, row_ids=row_ids,
                   alpha=alpha, beta=beta)

    @classmethod
    def sharded(
        cls,
        x: Sequence[float],
        y: Sequence[float],
        alpha: float = 1.0,
        beta: float = 1.0,
        k: int = 1,
        num_shards: int = 4,
        row_ids: Optional[Sequence[int]] = None,
        **options,
    ):
        """A sharded serving engine with this index's apriori parameters pinned.

        Returns a :class:`repro.core.sharding.ShardedXYIndex` whose
        ``query(qx, qy)`` answers with the build-time ``k``/``alpha``/``beta``
        (the Section 3 apriori-parameter contract) while rows are partitioned
        across ``num_shards`` shards.  Unlike :class:`Top1Index` the sharded
        engine also accepts a per-query ``k`` above the pinned one — it is a
        runtime-k structure underneath.
        """
        from repro.core.sharding import ShardedXYIndex

        return ShardedXYIndex(
            x,
            y,
            num_shards=num_shards,
            k=k,
            alpha=alpha,
            beta=beta,
            row_ids=row_ids,
            **options,
        )

    def _rebuild(self) -> None:
        """Recompute the region structures from the full current point set."""
        self._mutations += 1
        started = time.perf_counter()
        self._points.update(self._pending)
        self._pending.clear()
        rows = list(self._points)
        xs = np.array([self._points[r][0] for r in rows], dtype=float)
        ys = np.array([self._points[r][1] for r in rows], dtype=float)
        self._lower_layers: List[Envelope] = []
        self._upper_layers: List[Envelope] = []
        self._klists: Dict[str, _RunningTopKRegions] = {}
        self._owner_rows = set()
        if self.k == 1:
            if rows:
                self._lower_layers = [
                    build_envelope(xs, ys, self.angle, EnvelopeSide.LOWER_PROJECTIONS, rows)
                ]
                self._upper_layers = [
                    build_envelope(xs, ys, self.angle, EnvelopeSide.UPPER_PROJECTIONS, rows)
                ]
            for envelope in self._lower_layers + self._upper_layers:
                self._owner_rows.update(envelope.owners)
        elif rows:
            w_a, w_b = self.angle.intercepts(xs, ys)
            # Lower projections at axis x: for points left of x the height is ordered
            # by w_a, for points right of x by w_b; the upper side is the mirror
            # image.  Prefix structures sweep on x, suffix structures sweep on -x.
            self._klists = {
                "lower-left": _RunningTopKRegions(xs, w_a, rows, self.k, maximize=True),
                "lower-right": _RunningTopKRegions(-xs, w_b, rows, self.k, maximize=True),
                "upper-left": _RunningTopKRegions(xs, w_b, rows, self.k, maximize=False),
                "upper-right": _RunningTopKRegions(-xs, w_a, rows, self.k, maximize=False),
            }
            for structure in self._klists.values():
                self._owner_rows.update(structure.indexed_rows())
        self._region_cache = None
        self._build_seconds += time.perf_counter() - started

    def _region_arrays(self):
        """Cached numpy region lookups (rebuilt only when a region changed)."""
        if self._region_cache is None:
            if self.k == 1:
                self._region_cache = (
                    "envelopes",
                    [
                        (
                            np.asarray(envelope.breakpoints, dtype=float),
                            np.asarray(envelope.owners, dtype=np.int64),
                        )
                        for envelope in self._lower_layers + self._upper_layers
                        if envelope.owners
                    ],
                )
            else:
                self._region_cache = (
                    "klists",
                    [
                        (
                            name.endswith("left"),
                            np.asarray(structure.breakpoints, dtype=float),
                            structure.candidate_sets,
                        )
                        for name, structure in self._klists.items()
                    ],
                )
        return self._region_cache

    # ------------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self._points) + len(self._pending)

    def query(self, qx: float, qy: float, k: Optional[int] = None) -> TopKResult:
        """Top-``k`` points for the query ``(qx, qy)``.

        ``k`` defaults to the apriori ``k`` the index was built for and may not
        exceed it (use :class:`repro.core.topk.TopKIndex` for runtime ``k``).
        """
        if k is None:
            k = self.k
        if k < 1 or k > self.k:
            raise ValueError(f"k must be in [1, {self.k}] for this index, got {k}")
        candidates: Dict[int, float] = {}
        examined = 0
        kind, structures = self._region_arrays()
        qx = float(qx)
        if kind == "envelopes":
            for breakpoints, owners in structures:
                owner = int(owners[np.searchsorted(breakpoints, qx, side="left")])
                if owner not in candidates:
                    candidates[owner] = self._score(owner, qx, qy)
                    examined += 1
        else:
            # Left structures index points with x <= qx (sweep value qx), right
            # structures index points with x >= qx (sweep value -qx).
            for is_left, breakpoints, candidate_sets in structures:
                sweep_value = qx if is_left else -qx
                position = int(np.searchsorted(breakpoints, sweep_value, side="right"))
                for row in candidate_sets[position]:
                    if row not in candidates:
                        candidates[row] = self._score(row, qx, qy)
                        examined += 1
        for row, (px, py) in self._pending.items():
            candidates[row] = self._score_point(px, py, qx, qy)
            examined += 1
        matches = sorted(
            (Match(row_id=row, score=score, point=self._coords(row)) for row, score in candidates.items())
        )[:k]
        return TopKResult(
            matches=matches,
            candidates_examined=examined,
            full_evaluations=examined,
            algorithm="sd-top1",
        )

    def batch_query(self, qx, qy, k=None):
        """Answer many queries at once with vectorized region lookups.

        ``qx``/``qy`` are ``(m,)`` arrays; ``k`` is a scalar or ``(m,)`` vector
        bounded by the apriori ``k``.  The region binary searches of
        :meth:`query` run as single ``np.searchsorted`` kernels over all
        queries (vectorized isoline-envelope lookups) and candidate scoring is
        one numpy expression per query, so every result is identical —
        including tie-breaks — to calling :meth:`query` in a loop.  Returns a
        :class:`repro.core.results.BatchResult`.
        """
        from repro.core.batch import coerce_point_batch
        from repro.core.results import BatchResult

        qx, qy, ks = coerce_point_batch(qx, qy, self.k if k is None else k)
        m = len(qx)
        if np.any(ks > self.k):
            raise ValueError(f"k must be in [1, {self.k}] for this index")

        # Region lookups for all queries in one searchsorted kernel per
        # structure, over the cached numpy views.
        per_query_candidates: List[List[int]] = [[] for _ in range(m)]
        kind, structures = self._region_arrays()
        if kind == "envelopes":
            for breakpoints, owners in structures:
                positions = np.searchsorted(breakpoints, qx, side="left")
                env_owners = owners[positions]
                for j in range(m):
                    per_query_candidates[j].append(int(env_owners[j]))
        else:
            for is_left, breakpoints, candidate_sets in structures:
                sweep = qx if is_left else -qx
                positions = np.searchsorted(breakpoints, sweep, side="right")
                for j in range(m):
                    per_query_candidates[j].extend(
                        candidate_sets[int(positions[j])]
                    )
        pending_rows = list(self._pending)

        results = []
        cos, sin, scale = self.angle.cos, self.angle.sin, self.score_scale
        for j in range(m):
            rows = list(dict.fromkeys(per_query_candidates[j]))
            examined = len(rows) + len(pending_rows)
            indexed = set(rows)
            rows.extend(row for row in pending_rows if row not in indexed)
            if rows:
                coords = np.asarray([self._coords(row) for row in rows], dtype=float)
                px, py = coords[:, 0], coords[:, 1]
                scores = scale * (cos * np.abs(py - qy[j]) - sin * np.abs(px - qx[j]))
                order = np.lexsort((np.asarray(rows), -scores))[: int(ks[j])]
                matches = [
                    Match(
                        row_id=int(rows[i]),
                        score=float(scores[i]),
                        point=(float(px[i]), float(py[i])),
                    )
                    for i in order
                ]
            else:
                matches = []
            results.append(
                TopKResult(
                    matches=matches,
                    candidates_examined=examined,
                    full_evaluations=examined,
                    algorithm="sd-top1",
                )
            )
        return BatchResult(results=results, algorithm="sd-top1/batch")

    def _coords(self, row: int) -> Tuple[float, float]:
        return self._pending.get(row, self._points.get(row))

    def _score_point(self, px: float, py: float, qx: float, qy: float) -> float:
        return self.score_scale * self.angle.normalized_score(px - qx, py - qy)

    def _score(self, row: int, qx: float, qy: float) -> float:
        px, py = self._coords(row)
        return self._score_point(px, py, qx, qy)

    # ------------------------------------------------------------------ updates
    def insert(self, x: float, y: float, row_id: Optional[int] = None) -> int:
        """Insert a point; returns its row id.

        Points that cannot appear in any top-``k`` answer (they never surface on
        the indexed envelope layers) only cost the surfacing test.  For ``k = 1``
        a surfacing point is spliced into the affected envelope in place; for
        ``k > 1`` it is buffered and the index is rebuilt once the buffer grows
        beyond a small fraction of the data.
        """
        with self._write_lock:
            if row_id is None:
                row_id = self._next_row_id()
            row_id = int(row_id)
            if row_id in self._points or row_id in self._pending:
                raise ValueError(f"row id {row_id} already present")
            px, py = float(x), float(y)
            self._mutations += 1

            surfaces_lower = self._beats_layers(px, py, self._lower_layers, lower_side=True)
            surfaces_upper = self._beats_layers(px, py, self._upper_layers, lower_side=False)
            if not surfaces_lower and not surfaces_upper:
                self._points[row_id] = (px, py)
                return row_id

            if self.k == 1:
                self._points[row_id] = (px, py)
                if surfaces_lower and self._lower_layers:
                    self._splice(self._lower_layers[0], row_id, px, py, lower_side=True)
                elif surfaces_lower:
                    self._lower_layers = [
                        Envelope(EnvelopeSide.LOWER_PROJECTIONS, [row_id], [])
                    ]
                if surfaces_upper and self._upper_layers:
                    self._splice(self._upper_layers[0], row_id, px, py, lower_side=False)
                elif surfaces_upper:
                    self._upper_layers = [
                        Envelope(EnvelopeSide.UPPER_PROJECTIONS, [row_id], [])
                    ]
                self._owner_rows.add(row_id)
                self._region_cache = None
                return row_id

            self._pending[row_id] = (px, py)
            if len(self._pending) > max(
                self._PENDING_REBUILD_FLOOR,
                int(self._PENDING_REBUILD_FRACTION * len(self._points)),
            ):
                self._rebuild()
            return row_id

    def delete(self, row_id: int) -> None:
        """Delete a point by row id.

        Deleting a point that owns a region forces a rebuild (the envelope hides
        whatever lay beneath the owner); any other delete is constant time.
        """
        row_id = int(row_id)
        with self._write_lock:
            if row_id in self._pending:
                del self._pending[row_id]
                self._mutations += 1
                return
            if row_id not in self._points:
                raise KeyError(f"row id {row_id} not present")
            del self._points[row_id]
            self._mutations += 1
            if row_id in self._owner_rows:
                self._rebuild()

    def _next_row_id(self) -> int:
        existing = self._points.keys() | self._pending.keys()
        return (max(existing) + 1) if existing else 0

    # ------------------------------------------------------------- envelope math
    def _beats_layers(
        self, px: float, py: float, layers: List[Envelope], lower_side: bool
    ) -> bool:
        """True if the point would surface within the indexed layers on this side.

        A point belongs to the first ``k`` dominance layers exactly when it beats
        the deepest indexed layer's envelope at its own x position (its layer is
        one plus the deepest old layer whose envelope still beats it there).  If
        fewer than ``k`` layers exist the point always belongs.
        """
        if len(layers) < self.k:
            return True
        deepest = layers[-1]
        owner = deepest.owner_at(px)
        if owner is None:
            return True
        ox, oy = self._coords(owner)
        if lower_side:
            own = self.angle.cos * py
            envelope_value = self.angle.cos * oy - self.angle.sin * abs(px - ox)
            return own > envelope_value
        own = self.angle.cos * py
        envelope_value = self.angle.cos * oy + self.angle.sin * abs(px - ox)
        return own < envelope_value

    def _splice(
        self, envelope: Envelope, row_id: int, px: float, py: float, lower_side: bool
    ) -> None:
        """Insert a surfacing point into a single-layer envelope in place.

        Owners dominated by the new point (in intercept space) form a contiguous
        run of the sorted owner list; they are replaced by the new point and the
        two breakpoints adjacent to the run are recomputed.
        """
        a_new = self.angle.intercept_a(px, py)
        b_new = self.angle.intercept_b(px, py)
        owners = envelope.owners
        breakpoints = envelope.breakpoints

        def intercepts(row: int) -> Tuple[float, float]:
            ox, oy = self._coords(row)
            return self.angle.intercept_a(ox, oy), self.angle.intercept_b(ox, oy)

        def dominated(row: int) -> bool:
            a_old, b_old = intercepts(row)
            if lower_side:
                return a_old <= a_new and b_old <= b_new
            return a_old >= a_new and b_old >= b_new

        # Locate the insertion position: owners are sorted left-to-right, which on
        # both sides means ascending intercept_a.
        keys = [intercepts(row)[0] for row in owners]
        position = bisect.bisect_left(keys, a_new)

        # Expand around the insertion position over every dominated owner.
        start = position
        while start > 0 and dominated(owners[start - 1]):
            start -= 1
        end = position
        while end < len(owners) and dominated(owners[end]):
            end += 1

        new_owners = owners[:start] + [row_id] + owners[end:]
        sin = self.angle.sin
        if sin == 0:
            # Degenerate flat projections: the surfacing point beats the single
            # existing owner, so it owns the whole axis.
            envelope.owners = [row_id]
            envelope.breakpoints = []
            return
        # Recompute breakpoints left and right of the spliced-in point.
        left_breaks = breakpoints[: max(start - 1, 0)]
        right_breaks = breakpoints[end:] if end < len(owners) else []
        if start > 0:
            a_prev, b_prev = intercepts(owners[start - 1])
            if lower_side:
                boundary = (a_prev - b_new) / (2.0 * sin)
            else:
                boundary = (a_new - b_prev) / (2.0 * sin)
            left_breaks = breakpoints[: start - 1] + [boundary]
        if end < len(owners):
            a_next, b_next = intercepts(owners[end])
            if lower_side:
                boundary = (a_new - b_next) / (2.0 * sin)
            else:
                boundary = (a_next - b_new) / (2.0 * sin)
            right_breaks = [boundary] + breakpoints[end:]
        new_breakpoints = left_breaks + right_breaks
        envelope.owners = new_owners
        envelope.breakpoints = new_breakpoints

    # ------------------------------------------------------------- persistence
    def save(self, path) -> None:
        """Write a durable snapshot of the region structures at ``path``.

        Persists the envelopes / running top-k region lists verbatim (plus
        the point and pending maps), so :meth:`load` restores the index
        without re-running the region sweep.
        """
        from repro.core.persistence import save_engine

        save_engine(self, path)

    @classmethod
    def load(cls, path, mmap: bool = False, verify: Optional[bool] = None) -> "Top1Index":
        """Load a snapshot written by :meth:`save`."""
        from repro.core.persistence import load_engine

        return load_engine(path, mmap=mmap, verify=verify, expect="top1")

    # ------------------------------------------------------------------ stats
    def stats(self) -> IndexStats:
        """Size statistics (regions, analytic memory) for the experiment harness."""
        num_regions = sum(len(env) for env in self._lower_layers + self._upper_layers)
        memory = sum(env.memory_bytes() for env in self._lower_layers + self._upper_layers)
        num_regions += sum(structure.num_regions() for structure in self._klists.values())
        memory += sum(structure.memory_bytes() for structure in self._klists.values())
        # Points retained for updates/scoring: two floats + one id each.
        memory += 24 * (len(self._points) + len(self._pending))
        return IndexStats(
            name="sd-top1",
            num_points=len(self),
            num_regions=num_regions,
            num_angles=1,
            memory_bytes=memory,
            build_seconds=self._build_seconds,
        )

    # ------------------------------------------------------------------ snapshots
    @property
    def version(self) -> int:
        """Mutation counter: bumped by every insert, delete and rebuild."""
        return self._mutations

    def snapshot(self) -> "Top1Snapshot":
        """Pin a frozen read view of the current region structures.

        The view (region arrays plus copies of the point/pending maps) is
        built at most once per mutation version and published as an epoch;
        concurrent inserts/deletes build new versions and never touch pinned
        ones.  Close the snapshot (or use it as a context manager) to release
        the pin.
        """
        with self._write_lock:
            if self._view_built_at != self._mutations:
                self.view_epochs.publish(
                    _FrozenTop1View(
                        k=self.k,
                        angle=self.angle,
                        score_scale=self.score_scale,
                        points=dict(self._points),
                        pending=dict(self._pending),
                        region_cache=self._region_arrays(),
                    )
                )
                self._view_built_at = self._mutations
            return Top1Snapshot(self.view_epochs.pin())

    # ------------------------------------------------------------------ debugging
    def envelope_layers(self) -> Tuple[List[Envelope], List[Envelope]]:
        """The (lower, upper) envelopes (``k == 1`` mode) — for tests and inspection."""
        return self._lower_layers, self._upper_layers

    def region_structures(self) -> Dict[str, _RunningTopKRegions]:
        """The four running top-k region structures (``k > 1`` mode)."""
        return dict(self._klists)


class _FrozenTop1View:
    """The immutable payload of one Top1 snapshot epoch."""

    __slots__ = ("k", "angle", "score_scale", "points", "pending", "region_cache")

    def __init__(self, k, angle, score_scale, points, pending, region_cache) -> None:
        self.k = k
        self.angle = angle
        self.score_scale = score_scale
        self.points = points
        self.pending = pending
        self.region_cache = region_cache


class Top1Snapshot:
    """A pinned, frozen read view of one :class:`Top1Index` epoch.

    Reuses the index's own query kernels over frozen copies of the region
    arrays and point maps, so answers are identical to querying the index at
    the moment the snapshot was taken — and stay identical under concurrent
    updates until the snapshot is closed.
    """

    # Borrow the query kernels: they only read attributes the snapshot carries.
    query = Top1Index.query
    batch_query = Top1Index.batch_query
    _coords = Top1Index._coords
    _score = Top1Index._score
    _score_point = Top1Index._score_point

    def __init__(self, epoch) -> None:
        self._epoch = epoch
        self._closed = False
        view = epoch.state
        self.k = view.k
        self.angle = view.angle
        self.score_scale = view.score_scale
        self._points = view.points
        self._pending = view.pending
        self._frozen_regions = view.region_cache

    def _region_arrays(self):
        return self._frozen_regions

    def close(self) -> None:
        """Release the pinned epoch (idempotent)."""
        if not self._closed:
            self._closed = True
            self._epoch.release()

    def __enter__(self) -> "Top1Snapshot":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def version(self) -> int:
        """The pinned epoch's version."""
        return self._epoch.version

    def __len__(self) -> int:
        return len(self._points) + len(self._pending)
