"""Figure 7: querying time in the multi-dimensional setting.

* 7a-7c — querying time vs dataset size on 6-dimensional uniform / correlated /
  anti-correlated data (three repulsive + three attractive dimensions), for
  SeqScan, SD-Index, TA, BRS and PE.
* 7d-7f — querying time vs dimensionality (2 to 8 dimensions, half repulsive and
  half attractive), PE excluded as in the paper.
* 7g-7h — querying time vs ``k`` (5 to 100) on 6-dimensional data.
* 7i-7j — querying time vs the number of attractive dimensions (0 to 3) with
  three repulsive dimensions fixed.

Each function returns one :class:`ExperimentResult` per distribution, with one
series per method; the y-axis is the mean per-query time in milliseconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generators import generate_dataset
from repro.experiments.config import ExperimentConfig
from repro.workloads.registry import build_algorithm
from repro.workloads.runner import ExperimentResult, time_queries
from repro.workloads.workload import make_workload

__all__ = [
    "dataset_size_sweep",
    "dimension_sweep",
    "k_sweep",
    "attractive_sweep",
    "PAPER_SIZES",
]

#: Dataset sizes of Figures 7a-7c (points).
PAPER_SIZES: Tuple[int, ...] = (100_000, 250_000, 500_000, 750_000, 1_000_000)

#: Distributions the multi-dimensional figures cover.
_FIG7_DISTRIBUTIONS = ("uniform", "correlated", "anticorrelated")


def _roles(num_dims: int, num_attractive: Optional[int] = None) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Split ``num_dims`` dimensions into repulsive and attractive halves."""
    if num_attractive is None:
        num_attractive = num_dims // 2
    num_repulsive = num_dims - num_attractive
    repulsive = tuple(range(num_repulsive))
    attractive = tuple(range(num_repulsive, num_dims))
    return repulsive, attractive


def _measure(
    methods: Sequence[str],
    data: np.ndarray,
    repulsive: Sequence[int],
    attractive: Sequence[int],
    num_queries: int,
    k: int,
    seed: int,
    config: ExperimentConfig,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Per-method (mean milliseconds, mean candidates examined) on one dataset.

    The candidate count is the substrate-independent measure of pruning power: it
    is what the wall-clock figures of the paper reflect once every competitor
    pays the same per-point cost (see EXPERIMENTS.md).
    """
    workload = make_workload(
        repulsive,
        attractive,
        num_queries=num_queries,
        k=k,
        num_dims=data.shape[1],
        seed=seed,
    )
    timings: Dict[str, float] = {}
    candidates: Dict[str, float] = {}
    for method in methods:
        algorithm = build_algorithm(
            method,
            data,
            repulsive,
            attractive,
            angles=config.angles,
            branching=config.branching,
        )
        summary = time_queries(algorithm, workload)
        timings[method] = summary.mean_milliseconds
        candidates[method] = summary.mean_candidates
    return timings, candidates


def dataset_size_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = _FIG7_DISTRIBUTIONS,
    methods: Sequence[str] = ("SeqScan", "SD-Index", "TA", "BRS", "PE"),
    num_dims: int = 6,
) -> List[ExperimentResult]:
    """Figures 7a-7c: querying time vs dataset size (6-dimensional data)."""
    config = config or ExperimentConfig()
    sizes = config.sizes(PAPER_SIZES)
    repulsive, attractive = _roles(num_dims)
    results: List[ExperimentResult] = []
    for distribution in distributions:
        result = ExperimentResult(
            name=f"Figure 7 ({distribution}): querying time vs dataset size",
            x_label="num_points",
            y_label="mean query time (ms)",
            notes=f"{num_dims}-dimensional {distribution} data, k={config.k}",
        )
        pruning = ExperimentResult(
            name=f"Figure 7 ({distribution}): candidates examined vs dataset size",
            x_label="num_points",
            y_label="mean candidates examined",
            notes="substrate-independent pruning power for the same workloads",
        )
        for size in sizes:
            dataset = generate_dataset(distribution, size, num_dims, seed=config.seed)
            timings, candidates = _measure(
                methods,
                dataset.matrix,
                repulsive,
                attractive,
                num_queries=config.queries(),
                k=config.k,
                seed=config.seed,
                config=config,
            )
            for method, value in timings.items():
                result.series_for(method).add(size, value)
            for method, value in candidates.items():
                pruning.series_for(method).add(size, value)
        results.append(result)
        results.append(pruning)
    return results


def dimension_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = _FIG7_DISTRIBUTIONS,
    methods: Sequence[str] = ("SeqScan", "SD-Index", "TA", "BRS"),
    dimensions: Sequence[int] = (2, 4, 6, 8),
    paper_size: int = 500_000,
) -> List[ExperimentResult]:
    """Figures 7d-7f: querying time vs dimensionality."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size])[0]
    results: List[ExperimentResult] = []
    for distribution in distributions:
        result = ExperimentResult(
            name=f"Figure 7 ({distribution}): querying time vs dimensionality",
            x_label="num_dims",
            y_label="mean query time (ms)",
            notes=f"{size} points per dataset, k={config.k}",
        )
        pruning = ExperimentResult(
            name=f"Figure 7 ({distribution}): candidates examined vs dimensionality",
            x_label="num_dims",
            y_label="mean candidates examined",
            notes="substrate-independent pruning power for the same workloads",
        )
        for num_dims in dimensions:
            repulsive, attractive = _roles(num_dims)
            dataset = generate_dataset(distribution, size, num_dims, seed=config.seed)
            timings, candidates = _measure(
                methods,
                dataset.matrix,
                repulsive,
                attractive,
                num_queries=config.queries(),
                k=config.k,
                seed=config.seed,
                config=config,
            )
            for method, value in timings.items():
                result.series_for(method).add(num_dims, value)
            for method, value in candidates.items():
                pruning.series_for(method).add(num_dims, value)
        results.append(result)
        results.append(pruning)
    return results


def k_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = ("uniform", "correlated"),
    methods: Sequence[str] = ("SeqScan", "SD-Index", "TA", "BRS"),
    k_values: Sequence[int] = (5, 25, 50, 75, 100),
    num_dims: int = 6,
    paper_size: int = 500_000,
) -> List[ExperimentResult]:
    """Figures 7g-7h: querying time vs k on 6-dimensional data."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size])[0]
    repulsive, attractive = _roles(num_dims)
    results: List[ExperimentResult] = []
    for distribution in distributions:
        result = ExperimentResult(
            name=f"Figure 7 ({distribution}): querying time vs k",
            x_label="k",
            y_label="mean query time (ms)",
            notes=f"{size} points, {num_dims}-dimensional {distribution} data",
        )
        dataset = generate_dataset(distribution, size, num_dims, seed=config.seed)
        algorithms = {
            method: build_algorithm(
                method,
                dataset.matrix,
                repulsive,
                attractive,
                angles=config.angles,
                branching=config.branching,
            )
            for method in methods
        }
        for k in k_values:
            workload = make_workload(
                repulsive,
                attractive,
                num_queries=config.queries(),
                k=k,
                num_dims=num_dims,
                seed=config.seed,
            )
            for method, algorithm in algorithms.items():
                summary = time_queries(algorithm, workload)
                result.series_for(method).add(k, summary.mean_milliseconds)
        results.append(result)
    return results


def attractive_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = ("uniform", "correlated"),
    methods: Sequence[str] = ("SeqScan", "SD-Index", "TA", "BRS"),
    attractive_counts: Sequence[int] = (0, 1, 2, 3),
    num_repulsive: int = 3,
    paper_size: int = 500_000,
) -> List[ExperimentResult]:
    """Figures 7i-7j: querying time vs the number of attractive dimensions.

    Three repulsive dimensions are kept fixed and the number of attractive
    dimensions varies from 0 to 3; with 0 attractive dimensions the SD-Index
    degenerates into the adapted TA (no 2D subproblems remain), which is the
    behaviour the paper reports.
    """
    config = config or ExperimentConfig()
    size = config.sizes([paper_size])[0]
    results: List[ExperimentResult] = []
    for distribution in distributions:
        result = ExperimentResult(
            name=f"Figure 7 ({distribution}): querying time vs attractive dimensions",
            x_label="num_attractive_dims",
            y_label="mean query time (ms)",
            notes=f"{size} points, {num_repulsive} repulsive dimensions fixed, k={config.k}",
        )
        for num_attractive in attractive_counts:
            num_dims = num_repulsive + num_attractive
            repulsive = tuple(range(num_repulsive))
            attractive = tuple(range(num_repulsive, num_dims))
            dataset = generate_dataset(distribution, size, num_dims, seed=config.seed)
            # A query must involve at least one dimension; with zero attractive
            # dimensions the query is a pure "farthest" query on the repulsive ones.
            timings, _candidates = _measure(
                methods,
                dataset.matrix,
                repulsive,
                attractive,
                num_queries=config.queries(),
                k=config.k,
                seed=config.seed,
                config=config,
            )
            for method, value in timings.items():
                result.series_for(method).add(num_attractive, value)
        results.append(result)
    return results
