"""Ablation experiments for design choices called out in the paper.

These are not figures of the paper, but they quantify design decisions the paper
discusses in prose:

* ``angle_grid`` — Section 4.2 recommends five uniformly spread indexed angles;
  this ablation varies the grid size and measures query time and index memory.
* ``pairing`` — Section 5 pairs repulsive and attractive dimensions arbitrarily
  and calls a smarter mapping future work; this ablation compares the arbitrary
  pairing with the spread- and correlation-aware strategies.
* ``query_strategy`` — compares the stream-merge query with the paper-literal
  Claim 6 / Algorithm 4 strategy on the 2D index.
* ``top1_vs_topk`` — quantifies the benefit of the apriori-``k`` region index
  over the general tree when ``k`` is known in advance (Sections 3-4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.angles import AngleGrid
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from repro.data.generators import generate_dataset
from repro.experiments.config import ExperimentConfig
from repro.workloads.registry import build_algorithm
from repro.workloads.runner import ExperimentResult, time_queries
from repro.workloads.workload import make_workload

__all__ = ["angle_grid", "pairing", "query_strategy", "top1_vs_topk"]


def angle_grid(
    config: Optional[ExperimentConfig] = None,
    grid_sizes: Sequence[int] = (2, 3, 5, 9),
    paper_size: int = 500_000,
    num_dims: int = 6,
) -> List[ExperimentResult]:
    """Query time and memory of the SD-Index as the number of indexed angles varies."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size])[0]
    repulsive = tuple(range(num_dims // 2))
    attractive = tuple(range(num_dims // 2, num_dims))
    dataset = generate_dataset("uniform", size, num_dims, seed=config.seed)
    workload = make_workload(
        repulsive, attractive, num_queries=config.queries(), k=config.k,
        num_dims=num_dims, seed=config.seed,
    )
    timing = ExperimentResult(
        name="Ablation: indexed angles vs query time",
        x_label="num_indexed_angles",
        y_label="mean query time (ms)",
        notes=f"{size} {num_dims}-dimensional uniform points, k={config.k}",
    )
    memory = ExperimentResult(
        name="Ablation: indexed angles vs memory",
        x_label="num_indexed_angles",
        y_label="memory (MB)",
    )
    for count in grid_sizes:
        degrees = AngleGrid.uniform(count).degrees()
        index = build_algorithm(
            "SD-Index", dataset.matrix, repulsive, attractive,
            angles=degrees, branching=config.branching,
        )
        summary = time_queries(index, workload)
        timing.series_for("SD-Index").add(count, summary.mean_milliseconds)
        memory.series_for("SD-Index").add(count, index.stats().memory_mb)
    return [timing, memory]


def pairing(
    config: Optional[ExperimentConfig] = None,
    strategies: Sequence[str] = ("order", "spread", "correlation"),
    paper_size: int = 500_000,
    num_dims: int = 6,
    distribution: str = "anticorrelated",
) -> List[ExperimentResult]:
    """Query time of the SD-Index under different dimension pairing strategies."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size])[0]
    repulsive = tuple(range(num_dims // 2))
    attractive = tuple(range(num_dims // 2, num_dims))
    dataset = generate_dataset(distribution, size, num_dims, seed=config.seed)
    workload = make_workload(
        repulsive, attractive, num_queries=config.queries(), k=config.k,
        num_dims=num_dims, seed=config.seed,
    )
    result = ExperimentResult(
        name="Ablation: dimension pairing strategy vs query time",
        x_label="strategy_index",
        y_label="mean query time (ms)",
        notes=f"{size} {num_dims}-dimensional {distribution} points; "
        + ", ".join(f"{i}={s}" for i, s in enumerate(strategies)),
    )
    for position, strategy in enumerate(strategies):
        index = build_algorithm(
            "SD-Index", dataset.matrix, repulsive, attractive,
            angles=config.angles, branching=config.branching, pairing=strategy,
        )
        summary = time_queries(index, workload)
        result.series_for(strategy).add(position, summary.mean_milliseconds)
    return [result]


def query_strategy(
    config: Optional[ExperimentConfig] = None,
    paper_size: int = 2_000_000,
    distribution: str = "uniform",
) -> List[ExperimentResult]:
    """Stream-merge vs the paper's Claim 6 / Algorithm 4 strategy on the 2D index."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size], minimum=5000)[0]
    dataset = generate_dataset(distribution, size, 2, seed=config.seed)
    index = TopKIndex(
        dataset.matrix[:, 0],
        dataset.matrix[:, 1],
        angle_grid=AngleGrid.from_degrees(config.angles),
        branching=config.branching,
    )
    workload = make_workload(
        (1,), (0,), num_queries=config.queries(), k=config.k, num_dims=2, seed=config.seed,
    )
    result = ExperimentResult(
        name="Ablation: 2D query strategy (stream merge vs Claim 6)",
        x_label="k",
        y_label="mean query time (ms)",
        notes=f"{size} 2-dimensional {distribution} points",
    )
    import time as _time

    for k in (1, 5, 20, 50):
        for strategy in ("streams", "claim6"):
            durations = []
            for query in workload:
                started = _time.perf_counter()
                index.query(
                    query.point[0], query.point[1], k=k,
                    alpha=query.alpha[0], beta=query.beta[0], strategy=strategy,
                )
                durations.append(_time.perf_counter() - started)
            result.series_for(strategy).add(k, 1000.0 * sum(durations) / len(durations))
    return [result]


def top1_vs_topk(
    config: Optional[ExperimentConfig] = None,
    paper_size: int = 2_000_000,
    distribution: str = "uniform",
) -> List[ExperimentResult]:
    """Apriori-k region index vs the runtime-k tree when k is known in advance."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size], minimum=5000)[0]
    dataset = generate_dataset(distribution, size, 2, seed=config.seed)
    x, y = dataset.matrix[:, 0], dataset.matrix[:, 1]
    workload = make_workload(
        (1,), (0,), num_queries=config.queries(), k=1, num_dims=2,
        seed=config.seed, random_weights=False,
    )
    timing = ExperimentResult(
        name="Ablation: apriori-k top-1 index vs runtime-k tree",
        x_label="k",
        y_label="mean query time (ms)",
        notes=f"{size} 2-dimensional {distribution} points, unit weights",
    )
    memory = ExperimentResult(
        name="Ablation: apriori-k top-1 index vs runtime-k tree (memory)",
        x_label="k",
        y_label="memory (MB)",
    )
    import time as _time

    topk_index = TopKIndex(
        x, y, angle_grid=AngleGrid.from_degrees(config.angles), branching=config.branching
    )
    for k in (1, 5, 10):
        top1_index = Top1Index(x, y, k=k)
        durations_top1 = []
        durations_topk = []
        for query in workload:
            started = _time.perf_counter()
            top1_index.query(query.point[0], query.point[1], k=k)
            durations_top1.append(_time.perf_counter() - started)
            started = _time.perf_counter()
            topk_index.query(query.point[0], query.point[1], k=k)
            durations_topk.append(_time.perf_counter() - started)
        timing.series_for("SD-Index top1").add(k, 1000.0 * sum(durations_top1) / len(durations_top1))
        timing.series_for("SD-Index topK").add(k, 1000.0 * sum(durations_topk) / len(durations_topk))
        memory.series_for("SD-Index top1").add(k, top1_index.stats().memory_mb)
        memory.series_for("SD-Index topK").add(k, topk_index.stats().memory_mb)
    return [timing, memory]
