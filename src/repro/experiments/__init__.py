"""Regeneration of every figure and table of the paper's evaluation (Section 6).

Each experiment module exposes functions returning
:class:`repro.workloads.runner.ExperimentResult` objects (figures) or plain row
lists (tables), plus the command line interface in :mod:`repro.experiments.cli`:

``python -m repro.experiments list``
    Show every available experiment.
``python -m repro.experiments run fig7-size --scale 0.1``
    Run one experiment at a fraction of the paper's dataset sizes.
``python -m repro.experiments all --scale 0.05``
    Run the full suite and print every table.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments import figure7, figure8, table1, ablations

__all__ = ["ExperimentConfig", "figure7", "figure8", "table1", "ablations"]
