"""Command-line interface regenerating the paper's figures and tables.

Examples
--------
List the experiments::

    python -m repro.experiments list

Run one figure at 5% of the paper's dataset sizes::

    python -m repro.experiments run fig7-size --scale 0.05

Run everything (can take a while at larger scales)::

    python -m repro.experiments all --scale 0.02 --queries 10
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Callable, Dict, List, Sequence

from repro import faults
from repro.experiments import ablations, figure7, figure8, serving, sharding
from repro.experiments.config import ExperimentConfig
from repro.experiments.table1 import format_table1, run_table1
from repro.workloads.reporting import format_series_table

__all__ = ["main", "EXPERIMENTS"]


def _run_table1(config: ExperimentConfig) -> str:
    rows = run_table1(config)
    return format_table1(rows)


def _wrap(function: Callable) -> Callable[[ExperimentConfig], str]:
    def runner(config: ExperimentConfig) -> str:
        results = function(config)
        return "\n\n".join(format_series_table(result) for result in results)

    return runner


#: Experiment name -> callable(config) -> printable report.
EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], str]] = {
    "fig7-size": _wrap(figure7.dataset_size_sweep),
    "fig7-dims": _wrap(figure7.dimension_sweep),
    "fig7-k": _wrap(figure7.k_sweep),
    "fig7-attractive": _wrap(figure7.attractive_sweep),
    "fig8-updates": _wrap(figure8.update_sweep),
    "fig8-insertion": _wrap(figure8.insertion_sweep),
    "fig8-2d-size": _wrap(figure8.twod_size_sweep),
    "fig8-top1": _wrap(figure8.top1_size_sweep),
    "fig8-2d-k": _wrap(figure8.twod_k_sweep),
    "fig8-memory": _wrap(figure8.memory_sweep),
    "fig8-branching": _wrap(figure8.branching_sweep),
    "fig8-construction": _wrap(figure8.construction_sweep),
    "table1": _run_table1,
    "sharded-serving": _wrap(sharding.shard_sweep),
    "serving-latency": _wrap(serving.coalescing_sweep),
    "ablation-angles": _wrap(ablations.angle_grid),
    "ablation-pairing": _wrap(ablations.pairing),
    "ablation-strategy": _wrap(ablations.query_strategy),
    "ablation-top1-vs-topk": _wrap(ablations.top1_vs_topk),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures and tables of the SD-Query paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS), help="experiment id")
    _add_config_arguments(run_parser)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    _add_config_arguments(all_parser)
    return parser


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", type=float, default=ExperimentConfig.scale,
        help="fraction of the paper's dataset sizes (1.0 = full scale)",
    )
    parser.add_argument(
        "--queries", type=int, default=ExperimentConfig.num_queries,
        help="queries per configuration (the paper uses 100)",
    )
    parser.add_argument("--k", type=int, default=ExperimentConfig.k, help="default k")
    parser.add_argument("--seed", type=int, default=ExperimentConfig.seed, help="random seed")
    parser.add_argument(
        "--branching", type=int, default=ExperimentConfig.branching,
        help="branching factor of the SD-Index projection tree",
    )
    parser.add_argument(
        "--faults", action="append", default=[], metavar="SPEC",
        help=(
            "install a fault rule for the run (repeatable), e.g. "
            "'shard.probe:raise:0.3:key=1' or 'coalescer.flush:delay:delay=0.002'; "
            "see repro.faults.FaultPlane.from_specs"
        ),
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plane's injection streams (same seed, same storm)",
    )


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scale=args.scale,
        num_queries=args.queries,
        k=args.k,
        seed=args.seed,
        branching=args.branching,
    )


def main(argv: Sequence[str] = None) -> int:
    """CLI entry point (also exposed as the ``repro-experiments`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    config = _config_from_args(args)
    plane = _plane_from_args(args)
    with _installed(plane):
        if args.command == "run":
            print(EXPERIMENTS[args.experiment](config))
            _report_fault_plane(plane)
            return 0
        if args.command == "all":
            for name in sorted(EXPERIMENTS):
                print(f"==== {name} " + "=" * max(0, 60 - len(name)))
                print(EXPERIMENTS[name](config))
                print()
            _report_fault_plane(plane)
            return 0
    parser.error(f"unknown command {args.command!r}")
    return 2


def _plane_from_args(args: argparse.Namespace):
    if not args.faults:
        return None
    return faults.FaultPlane.from_specs(args.faults, seed=args.fault_seed)


@contextmanager
def _installed(plane):
    """Scoped fault-plane installation (a no-op without ``--faults``)."""
    if plane is None:
        yield None
    else:
        with faults.fault_plane(plane):
            yield plane


def _report_fault_plane(plane) -> None:
    if plane is None:
        return
    stats = plane.stats()
    print(
        f"fault plane (seed {plane.seed}): "
        f"hits {sum(stats['hits'].values())} "
        f"injections {sum(stats['injections'].values())}"
    )


if __name__ == "__main__":
    sys.exit(main())
