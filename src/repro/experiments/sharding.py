"""Sharded-serving experiment: batch throughput versus shard count.

Not a figure of the paper — a scale-out experiment for the serving engine of
:mod:`repro.core.sharding`.  Two scenarios bracket the partitioning design
space:

``uniform``
    Independent uniform coordinates; no locality for range partitioning to
    exploit, so the sweep shows the overhead floor of the shard fan-out and
    whatever the tightened cross-shard thresholds save.
``chembl``
    The paper's Table 1 shape (attractive drug-likeness with tight locality,
    repulsive molecular weight spanning wide) with query molecules sampled
    from the library — the serving case range sharding is built for, where
    bound-ordered probing prunes most non-local shards outright.

Every sharded answer is verified bit-identical against the single-session
engine before a timing is reported.
"""

from __future__ import annotations

import time
from typing import List

import numpy as np

from repro.core.sdindex import SDIndex
from repro.data.chembl import generate_chembl_like
from repro.data.generators import generate_dataset
from repro.experiments.config import ExperimentConfig
from repro.workloads.registry import build_workload
from repro.workloads.runner import ExperimentResult
from repro.workloads.workload import BatchWorkload

__all__ = ["shard_sweep", "SHARD_COUNTS"]

SHARD_COUNTS = (1, 2, 4, 8)

#: The paper's ChEMBL v2 library size; scaled by ``config.scale``.
_CHEMBL_SIZE = 428_913


def _verify_identical(batch, expected, context: str) -> None:
    for mine, theirs in zip(batch, expected):
        if mine.row_ids != theirs.row_ids or mine.scores != theirs.scores:
            raise AssertionError(
                f"{context}: sharded answers drifted from the single-session engine"
            )


def _time_batch(engine, workload, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        engine.batch_query(workload)
        best = min(best, time.perf_counter() - started)
    return best


def _sweep_scenario(
    name: str,
    data: np.ndarray,
    repulsive,
    attractive,
    workload,
    config: ExperimentConfig,
) -> ExperimentResult:
    result = ExperimentResult(
        name=f"sharded serving ({name}, {len(data)} points)",
        x_label="shards",
        y_label="batch queries/s",
        notes="answers verified bit-identical to the single-session engine",
    )
    baseline = SDIndex.build(
        data, repulsive=repulsive, attractive=attractive, branching=config.branching
    )
    baseline.batch_query(workload)  # build the serving session before timing
    flat_seconds = _time_batch(baseline, workload)
    expected = baseline.batch_query(workload)
    flat_series = result.series_for("SD-Index")
    for partitioner in ("range", "hash"):
        series = result.series_for(f"SD-Sharded/{partitioner}")
        for num_shards in SHARD_COUNTS:
            sharded = SDIndex.build_sharded(
                data,
                repulsive=repulsive,
                attractive=attractive,
                num_shards=num_shards,
                partitioner=partitioner,
                branching=config.branching,
            )
            sharded.batch_query(workload)
            _verify_identical(
                sharded.batch_query(workload),
                expected,
                f"{name}/{partitioner}/{num_shards}",
            )
            seconds = _time_batch(sharded, workload)
            series.add(num_shards, len(workload) / seconds)
            sharded.close()
    for num_shards in SHARD_COUNTS:
        flat_series.add(num_shards, len(workload) / flat_seconds)
    return result


def shard_sweep(config: ExperimentConfig) -> List[ExperimentResult]:
    """Throughput of the sharded engine at 1/2/4/8 shards vs the flat engine."""
    results: List[ExperimentResult] = []

    num_points = config.sizes([_CHEMBL_SIZE])[0]
    num_queries = config.queries()

    uniform = generate_dataset("uniform", num_points, 4, seed=config.seed).matrix
    workload = build_workload(
        "sharded_serving",
        (0, 1),
        (2, 3),
        num_queries=num_queries,
        num_dims=4,
        seed=config.seed + 1,
    )
    results.append(
        _sweep_scenario("uniform", uniform, (0, 1), (2, 3), workload, config)
    )

    chembl = generate_chembl_like(max(1000, num_points), seed=config.seed + 7).matrix
    rng = np.random.default_rng(config.seed + 2)
    points = chembl[rng.integers(0, len(chembl), size=num_queries)]
    chembl_workload = BatchWorkload(
        points=points,
        ks=rng.choice(np.asarray([1, 10]), size=num_queries),
        alphas=rng.uniform(0.05, 1.0, size=(num_queries, 1)),
        betas=rng.uniform(0.05, 1.0, size=(num_queries, 1)),
        repulsive=(1,),
        attractive=(0,),
        description="query molecules sampled from the library",
        seed=config.seed + 2,
    )
    results.append(
        _sweep_scenario("chembl", chembl, (1,), (0,), chembl_workload, config)
    )
    return results
