"""Table 1: qualitative analysis on a molecular property dataset (Section 6.3).

The experiment issues the paper's SD-Query over the (synthetic) ChEMBL-like
library — the query molecule has a high drug-likeness score of 11 and a low
molecular weight of 250, drug-likeness is the attractive dimension and molecular
weight the repulsive one — and reports, for each ``k`` in {10, 50, 100, 200},
the average drug-likeness, molecular weight and polar surface area of the top-k
answers, next to the overall dataset averages.

The qualitative claims being reproduced:

1. the retrieved molecules are roughly twice as heavy as the dataset average,
2. despite their weight their drug-likeness sits above the dataset average,
3. their polar surface area is far below the dataset average,
4. all three statistics drift back toward the dataset average as ``k`` grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.data.chembl import (
    PAPER_OVERALL_AVERAGES,
    PAPER_TABLE1,
    generate_chembl_like,
    paper_query_molecule,
)
from repro.data.dataset import Dataset
from repro.experiments.config import ExperimentConfig

__all__ = ["Table1Row", "run_table1", "format_table1"]

_REPORTED_COLUMNS = ("drug_likeness", "molecular_weight", "polar_surface_area")


@dataclass
class Table1Row:
    """One row of Table 1: averages over a top-k answer set (or the whole dataset)."""

    description: str
    drug_likeness: float
    molecular_weight: float
    polar_surface_area: float

    def as_tuple(self) -> tuple:
        return (
            self.description,
            self.drug_likeness,
            self.molecular_weight,
            self.polar_surface_area,
        )


def _averages(dataset: Dataset, rows: Sequence[int]) -> Dict[str, float]:
    matrix = dataset.matrix[list(rows)] if rows is not None else dataset.matrix
    return {
        column: float(matrix[:, dataset.column_index(column)].mean())
        for column in _REPORTED_COLUMNS
    }


def run_table1(
    config: Optional[ExperimentConfig] = None,
    k_values: Sequence[int] = (10, 50, 100, 200),
    num_molecules: Optional[int] = None,
    mw_weight: float = 1.0,
    drug_likeness_weight: float = 1.0,
) -> List[Table1Row]:
    """Run the qualitative experiment and return the measured Table 1 rows."""
    config = config or ExperimentConfig()
    if num_molecules is None:
        num_molecules = max(20_000, int(428_913 * min(config.scale * 6, 1.0)))
    dataset = generate_chembl_like(num_molecules=num_molecules, seed=config.seed + 7)
    mw_dim = dataset.column_index("molecular_weight")
    drug_dim = dataset.column_index("drug_likeness")

    index = SDIndex.build(
        dataset.matrix,
        repulsive=[mw_dim],
        attractive=[drug_dim],
        angles=config.angles,
        branching=config.branching,
    )
    query_point = paper_query_molecule(dataset)

    rows: List[Table1Row] = []
    overall = _averages(dataset, range(len(dataset)))
    rows.append(Table1Row(description="Overall Average", **overall))
    for k in k_values:
        query = SDQuery.simple(
            point=query_point,
            repulsive=[mw_dim],
            attractive=[drug_dim],
            k=k,
            alpha=mw_weight,
            beta=drug_likeness_weight,
        )
        result = index.query(query)
        averages = _averages(dataset, result.row_ids)
        rows.append(Table1Row(description=f"k={k}", **averages))
    return rows


def format_table1(rows: Sequence[Table1Row], include_paper: bool = True) -> str:
    """Render the measured rows (and the paper's numbers) as a text table."""
    lines: List[str] = []
    header = f"{'Description':<18}{'Drug-likeness':>15}{'MW':>12}{'PSA':>12}"
    lines.append("Table 1: statistics on top-k results (measured)")
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            f"{row.description:<18}{row.drug_likeness:>15.2f}"
            f"{row.molecular_weight:>12.2f}{row.polar_surface_area:>12.2f}"
        )
    if include_paper:
        lines.append("")
        lines.append("Table 1 as reported by the paper (ChEMBL v2, 428,913 molecules)")
        lines.append(header)
        lines.append("-" * len(header))
        lines.append(
            f"{'Overall Average':<18}{PAPER_OVERALL_AVERAGES['drug_likeness']:>15.2f}"
            f"{PAPER_OVERALL_AVERAGES['molecular_weight']:>12.2f}"
            f"{PAPER_OVERALL_AVERAGES['polar_surface_area']:>12.2f}"
        )
        for k, values in PAPER_TABLE1.items():
            lines.append(
                f"{'k=' + str(k):<18}{values['drug_likeness']:>15.2f}"
                f"{values['molecular_weight']:>12.2f}{values['polar_surface_area']:>12.2f}"
            )
    return "\n".join(lines)
