"""Serving-latency experiment: coalescing tick sweep under open-loop load.

Not a figure of the paper — the serving-tier companion of the batch engine
(DESIGN.md §8).  One embedded :class:`~repro.serving.server.SDQueryServer`
answers a seeded open-loop Poisson workload while the coalescing tick sweeps
from "no coalescing at all" (the per-request baseline) through increasingly
wide micro-batching windows.  Reported per tick: tail latency percentiles
and the mean coalesced batch size — the trade the tick knob buys (a wider
tick batches more but holds early arrivals longer).

Every run's responses are verified bit-identical against a
:class:`~repro.baselines.sequential.SequentialScan` oracle before its
timings are reported, and the engine's epochs must have drained afterwards.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional

from repro.baselines.sequential import SequentialScan
from repro.core.sdindex import SDIndex
from repro.data.generators import generate_dataset
from repro.experiments.config import ExperimentConfig
from repro.serving.loadgen import run_open_loop
from repro.serving.server import SDQueryServer, ServingConfig
from repro.workloads.registry import build_workload
from repro.workloads.runner import ExperimentResult

__all__ = ["coalescing_sweep", "TICKS_MS"]

#: Coalescing windows swept (milliseconds); None is the per-request baseline.
TICKS_MS = (0.0, 0.5, 1.0, 2.0, 5.0)

_DEFAULT_POINTS = 50_000
_DEFAULT_REQUESTS = 400
_TARGET_RATE = 3000.0  # requests/second the open-loop schedule aims for


async def _run_once(
    index,
    workload,
    tick_seconds: Optional[float],
    coalesce: bool,
    oracle: SequentialScan,
) -> dict:
    config = ServingConfig(
        tick_seconds=tick_seconds if coalesce else 0.0,
        coalesce=coalesce,
        request_timeout=None,
    )
    async with SDQueryServer(index, config) as server:
        # Warm the serving session and the executor before the clock matters.
        probe = workload.reads.queries()[0]
        await server.submit(
            probe.point, k=probe.k, alpha=probe.alpha, beta=probe.beta
        )
        report = await run_open_loop(server, workload, collect=True)
        queries = workload.reads.queries()
        for j, served in report.responses:
            expect = oracle.query(queries[j])
            if (
                served.result.row_ids != expect.row_ids
                or served.result.scores != expect.scores
            ):
                raise AssertionError(
                    f"request {j}: served answer drifted from the sequential "
                    f"scan oracle"
                )
        histogram = server.coalescer.batch_sizes
        batched = sum(size * count for size, count in histogram.items())
        batches = sum(histogram.values())
        stats = report.as_dict()
        stats["mean_batch_size"] = batched / batches if batches else 0.0
        return stats


def coalescing_sweep(config: ExperimentConfig) -> List[ExperimentResult]:
    """Open-loop tail latency and batch size across coalescing tick widths."""
    num_points = config.sizes([_DEFAULT_POINTS])[0]
    num_requests = max(40, config.queries() * 4)
    data = generate_dataset("uniform", num_points, 4, seed=config.seed).matrix
    index = SDIndex.build(
        data, repulsive=(0, 1), attractive=(2, 3), branching=config.branching
    )
    oracle = SequentialScan(data, (0, 1), (2, 3))
    workload = build_workload(
        "serving",
        (0, 1),
        (2, 3),
        num_requests=num_requests,
        target_rate=_TARGET_RATE,
        num_dims=4,
        seed=config.seed + 1,
    )

    latency = ExperimentResult(
        name=f"serving latency ({num_points} points, {num_requests} open-loop "
        f"requests at ~{_TARGET_RATE:g}/s)",
        x_label="coalescing tick (ms)",
        y_label="latency (ms)",
        notes="answers verified bit-identical to the sequential-scan oracle",
    )
    batching = ExperimentResult(
        name="coalesced batch size vs tick",
        x_label="coalescing tick (ms)",
        y_label="mean batch size",
    )

    baseline = asyncio.run(
        _run_once(index, workload, None, coalesce=False, oracle=oracle)
    )
    for tick_ms in TICKS_MS:
        stats = asyncio.run(
            _run_once(index, workload, tick_ms / 1000.0, True, oracle)
        )
        for percentile in ("p50", "p95", "p99"):
            latency.series_for(f"coalesced {percentile}").add(
                tick_ms, stats[percentile]
            )
            latency.series_for(f"baseline {percentile}").add(
                tick_ms, baseline[percentile]
            )
        batching.series_for("coalesced").add(tick_ms, stats["mean_batch_size"])
        batching.series_for("baseline").add(tick_ms, baseline["mean_batch_size"])

    report = index.query_session().epochs.leak_report()
    if report["pinned_readers"] != 0:
        raise AssertionError(f"serving sweep leaked epoch pins: {report}")
    return [latency, batching]
