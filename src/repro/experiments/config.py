"""Shared configuration for the experiment harness.

The paper's experiments use datasets of up to ten million points and 100 queries
per configuration.  A pure-Python reproduction cannot run those sizes in
interactive time, so every experiment takes an :class:`ExperimentConfig` whose
``scale`` multiplies the paper's dataset sizes (and whose ``num_queries`` shrinks
the workload).  The default configuration finishes the full suite in a few
minutes on a laptop; ``ExperimentConfig(scale=1.0, num_queries=100)`` reproduces
the paper's sizes when given enough time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["ExperimentConfig"]


@dataclass
class ExperimentConfig:
    """Scaling knobs shared by every experiment."""

    #: Multiplier on the paper's dataset sizes (1.0 = the sizes in the figures).
    scale: float = 0.02
    #: Queries per configuration (the paper uses 100).
    num_queries: int = 20
    #: Default k (the paper uses 5 unless the figure varies k).
    k: int = 5
    #: Random seed for data and workload generation.
    seed: int = 0
    #: Branching factor of the SD-Index projection tree.
    branching: int = 8
    #: Indexed angles (degrees) for the SD-Index (the paper's five-angle grid).
    angles: Tuple[float, ...] = (0.0, 22.5, 45.0, 67.5, 90.0)

    def sizes(self, paper_sizes: Sequence[int], minimum: int = 1000) -> List[int]:
        """Scale a list of the paper's dataset sizes, keeping them distinct."""
        scaled: List[int] = []
        for size in paper_sizes:
            value = max(minimum, int(round(size * self.scale)))
            if scaled and value <= scaled[-1]:
                value = scaled[-1] + minimum
            scaled.append(value)
        return scaled

    def queries(self, maximum: int = 100) -> int:
        """Number of queries per configuration."""
        return max(1, min(maximum, self.num_queries))
