"""Figure 8: updates, 2D querying, memory footprints and construction times.

* 8a — querying time of the SD-Index top-k structure before vs after a batch of
  deletions and insertions (uniform and correlated data).
* 8b — insertion cost vs dataset size for SD top-1, SD top-k, BRS and PE.
* 8c-8d — 2D querying time vs dataset size (uniform, correlated).
* 8e — 2D top-1 querying time vs dataset size for the three distributions.
* 8f-8g — 2D querying time vs k.
* 8h — memory footprint vs dataset size (SD top-k on 6D data, SD top-1 per
  distribution on 2D data).
* 8i — memory footprint vs the branching factor of the SD top-k tree.
* 8j — index construction time vs dataset size (SD top-1, SD top-k, BRS, PE).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import BRSTopK, ProgressiveExplorationTopK
from repro.core.angles import AngleGrid
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from repro.data.generators import generate_dataset
from repro.experiments.config import ExperimentConfig
from repro.workloads.registry import build_algorithm
from repro.workloads.runner import ExperimentResult, time_queries
from repro.workloads.workload import make_workload

__all__ = [
    "update_sweep",
    "insertion_sweep",
    "twod_size_sweep",
    "top1_size_sweep",
    "twod_k_sweep",
    "memory_sweep",
    "branching_sweep",
    "construction_sweep",
    "PAPER_2D_SIZES",
]

#: Dataset sizes of the 2D experiments (Figures 8c-8e reach ten million points).
PAPER_2D_SIZES: Tuple[int, ...] = (1_000_000, 2_500_000, 5_000_000, 7_500_000, 10_000_000)

#: Dataset sizes of the multi-dimensional figure-8 experiments.
PAPER_6D_SIZES: Tuple[int, ...] = (100_000, 250_000, 500_000, 750_000, 1_000_000)


def _angle_grid(config: ExperimentConfig) -> AngleGrid:
    return AngleGrid.from_degrees(config.angles)


def _six_dim_roles() -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    return (0, 1, 2), (3, 4, 5)


# --------------------------------------------------------------------- Figure 8a
def update_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = ("uniform", "correlated"),
    paper_updates: Sequence[int] = (0, 250, 500, 1000),
    num_dims: int = 6,
    paper_size: int = 500_000,
) -> List[ExperimentResult]:
    """Figure 8a: querying cost of SD-Index top-k before and after updates.

    For each update count ``u`` the experiment deletes ``u`` random points and
    inserts ``u`` fresh points (keeping the index size constant) and then
    re-measures the querying time; the ``SD-Index`` series is the no-update
    reference and ``SD-Index*`` the post-update measurement, as in the paper.
    """
    config = config or ExperimentConfig()
    size = config.sizes([paper_size])[0]
    update_counts = [int(round(u * max(config.scale * 5, 0.05))) if u else 0 for u in paper_updates]
    update_counts = sorted(set(update_counts))
    num_repulsive = num_dims - num_dims // 2
    repulsive = tuple(range(num_repulsive))
    attractive = tuple(range(num_repulsive, num_dims))
    results: List[ExperimentResult] = []
    for distribution in distributions:
        result = ExperimentResult(
            name=f"Figure 8a ({distribution}): querying cost vs updates",
            x_label="num_deletes_and_inserts",
            y_label="mean query time (ms)",
            notes=f"{size} points, {num_dims}-dimensional data, k={config.k}",
        )
        dataset = generate_dataset(distribution, size, num_dims, seed=config.seed)
        workload = make_workload(
            repulsive,
            attractive,
            num_queries=config.queries(),
            k=config.k,
            num_dims=num_dims,
            seed=config.seed,
        )
        baseline_index = build_algorithm(
            "SD-Index",
            dataset.matrix,
            repulsive,
            attractive,
            angles=config.angles,
            branching=config.branching,
        )
        baseline_ms = time_queries(baseline_index, workload).mean_milliseconds
        rng = np.random.default_rng(config.seed + 1)
        for count in update_counts:
            index = build_algorithm(
                "SD-Index",
                dataset.matrix,
                repulsive,
                attractive,
                angles=config.angles,
                branching=config.branching,
            )
            victims = rng.choice(size, size=count, replace=False) if count else []
            for victim in victims:
                index.delete(int(victim))
            replacements = rng.random((count, num_dims))
            for point in replacements:
                index.insert(point)
            updated_ms = time_queries(index, workload).mean_milliseconds
            result.series_for("SD-Index").add(count, baseline_ms)
            result.series_for("SD-Index*").add(count, updated_ms)
        results.append(result)
    return results


# --------------------------------------------------------------------- Figure 8b
def insertion_sweep(
    config: Optional[ExperimentConfig] = None,
    paper_sizes: Sequence[int] = PAPER_6D_SIZES,
    num_inserts: int = 200,
    distribution: str = "uniform",
) -> List[ExperimentResult]:
    """Figure 8b: insertion cost vs dataset size for SD top-1, SD top-k, BRS and PE.

    The 2D structures (top-1 and top-k) are built on the first two dimensions;
    BRS and PE insert full 6-dimensional points, as in the paper's setup.
    """
    config = config or ExperimentConfig()
    sizes = config.sizes(paper_sizes)
    result = ExperimentResult(
        name="Figure 8b: insertion cost vs dataset size",
        x_label="num_points",
        y_label=f"time for {num_inserts} inserts (ms)",
        notes=f"{distribution} data",
    )
    rng = np.random.default_rng(config.seed + 2)
    grid = _angle_grid(config)
    for size in sizes:
        dataset6 = generate_dataset(distribution, size, 6, seed=config.seed)
        matrix = dataset6.matrix
        x, y = matrix[:, 0], matrix[:, 1]

        top1 = Top1Index(x, y, k=1)
        topk = TopKIndex(x, y, angle_grid=grid, branching=config.branching)
        brs = BRSTopK(matrix, (0, 1, 2), (3, 4, 5))
        pe = ProgressiveExplorationTopK(matrix, (0, 1, 2), (3, 4, 5))

        new_points = rng.random((num_inserts, 6))
        timings: Dict[str, float] = {}

        started = time.perf_counter()
        for i, point in enumerate(new_points):
            top1.insert(point[0], point[1], row_id=size + i)
        timings["SD-Index top1"] = (time.perf_counter() - started) * 1000.0

        started = time.perf_counter()
        for i, point in enumerate(new_points):
            topk.insert(point[0], point[1], row_id=size + i)
        timings["SD-Index topK"] = (time.perf_counter() - started) * 1000.0

        started = time.perf_counter()
        for i, point in enumerate(new_points):
            brs.insert(point, row_id=size + i)
        timings["BRS"] = (time.perf_counter() - started) * 1000.0

        started = time.perf_counter()
        for i, point in enumerate(new_points):
            pe.insert(point, row_id=size + i)
        timings["PE"] = (time.perf_counter() - started) * 1000.0

        for method, value in timings.items():
            result.series_for(method).add(size, value)
    return [result]


# ----------------------------------------------------------------- Figures 8c-8d
def twod_size_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = ("uniform", "correlated"),
    methods: Sequence[str] = ("SeqScan", "SD-Index", "TA", "BRS"),
    paper_sizes: Sequence[int] = PAPER_2D_SIZES,
) -> List[ExperimentResult]:
    """Figures 8c-8d: 2D querying time vs dataset size."""
    config = config or ExperimentConfig()
    sizes = config.sizes(paper_sizes, minimum=5000)
    repulsive, attractive = (1,), (0,)
    results: List[ExperimentResult] = []
    for distribution in distributions:
        result = ExperimentResult(
            name=f"Figure 8c-d ({distribution}): 2D querying time vs dataset size",
            x_label="num_points",
            y_label="mean query time (ms)",
            notes=f"2-dimensional {distribution} data, k={config.k}",
        )
        for size in sizes:
            dataset = generate_dataset(distribution, size, 2, seed=config.seed)
            workload = make_workload(
                repulsive,
                attractive,
                num_queries=config.queries(),
                k=config.k,
                num_dims=2,
                seed=config.seed,
            )
            for method in methods:
                algorithm = build_algorithm(
                    method,
                    dataset.matrix,
                    repulsive,
                    attractive,
                    angles=config.angles,
                    branching=config.branching,
                )
                summary = time_queries(algorithm, workload)
                result.series_for(method).add(size, summary.mean_milliseconds)
        results.append(result)
    return results


# --------------------------------------------------------------------- Figure 8e
def top1_size_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = ("uniform", "correlated", "anticorrelated"),
    paper_sizes: Sequence[int] = PAPER_2D_SIZES,
) -> List[ExperimentResult]:
    """Figure 8e: 2D top-1 querying time vs dataset size (per distribution)."""
    config = config or ExperimentConfig()
    sizes = config.sizes(paper_sizes, minimum=5000)
    result = ExperimentResult(
        name="Figure 8e: SD-Index top-1 querying time vs dataset size",
        x_label="num_points",
        y_label="mean query time (ms)",
        notes="2-dimensional data, k=1, unit weights; SeqScan shown for reference",
    )
    repulsive, attractive = (1,), (0,)
    for size in sizes:
        for distribution in distributions:
            dataset = generate_dataset(distribution, size, 2, seed=config.seed)
            workload = make_workload(
                repulsive,
                attractive,
                num_queries=config.queries(),
                k=1,
                num_dims=2,
                seed=config.seed,
                random_weights=False,
            )
            index = Top1Index(dataset.matrix[:, 0], dataset.matrix[:, 1], k=1)
            durations = []
            for query in workload:
                started = time.perf_counter()
                index.query(query.point[0], query.point[1], k=1)
                durations.append(time.perf_counter() - started)
            mean_ms = 1000.0 * sum(durations) / len(durations)
            result.series_for(f"SD-Index top1 {distribution}").add(size, mean_ms)
        # Sequential scan reference on the uniform dataset.
        dataset = generate_dataset("uniform", size, 2, seed=config.seed)
        workload = make_workload(
            repulsive, attractive, num_queries=config.queries(), k=1, num_dims=2,
            seed=config.seed, random_weights=False,
        )
        scan = build_algorithm("SeqScan", dataset.matrix, repulsive, attractive)
        result.series_for("SeqScan").add(size, time_queries(scan, workload).mean_milliseconds)
    return [result]


# ----------------------------------------------------------------- Figures 8f-8g
def twod_k_sweep(
    config: Optional[ExperimentConfig] = None,
    distributions: Sequence[str] = ("uniform", "correlated"),
    methods: Sequence[str] = ("SeqScan", "SD-Index", "TA", "BRS"),
    k_values: Sequence[int] = (5, 25, 50, 75, 100),
    paper_size: int = 10_000_000,
) -> List[ExperimentResult]:
    """Figures 8f-8g: 2D querying time vs k."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size], minimum=5000)[0]
    repulsive, attractive = (1,), (0,)
    results: List[ExperimentResult] = []
    for distribution in distributions:
        result = ExperimentResult(
            name=f"Figure 8f-g ({distribution}): 2D querying time vs k",
            x_label="k",
            y_label="mean query time (ms)",
            notes=f"{size} 2-dimensional points",
        )
        dataset = generate_dataset(distribution, size, 2, seed=config.seed)
        algorithms = {
            method: build_algorithm(
                method,
                dataset.matrix,
                repulsive,
                attractive,
                angles=config.angles,
                branching=config.branching,
            )
            for method in methods
        }
        for k in k_values:
            workload = make_workload(
                repulsive,
                attractive,
                num_queries=config.queries(),
                k=k,
                num_dims=2,
                seed=config.seed,
            )
            for method, algorithm in algorithms.items():
                summary = time_queries(algorithm, workload)
                result.series_for(method).add(k, summary.mean_milliseconds)
        results.append(result)
    return results


# --------------------------------------------------------------------- Figure 8h
def memory_sweep(
    config: Optional[ExperimentConfig] = None,
    paper_sizes: Sequence[int] = PAPER_6D_SIZES,
) -> List[ExperimentResult]:
    """Figure 8h: memory footprint vs dataset size.

    The SD-Index top-k series measures the full 6-dimensional index (three paired
    projection trees over five angles); the top-1 series measure the 2D region
    index for each data distribution, whose size depends on how many points ever
    own a region.
    """
    config = config or ExperimentConfig()
    sizes = config.sizes(paper_sizes)
    result = ExperimentResult(
        name="Figure 8h: memory footprint vs dataset size",
        x_label="num_points",
        y_label="memory (MB)",
        notes="analytic footprint; top-k on 6D data, top-1 on 2D data per distribution",
    )
    repulsive, attractive = _six_dim_roles()
    for size in sizes:
        dataset = generate_dataset("uniform", size, 6, seed=config.seed)
        index = build_algorithm(
            "SD-Index",
            dataset.matrix,
            repulsive,
            attractive,
            angles=config.angles,
            branching=config.branching,
        )
        result.series_for("SD-Index topK").add(size, index.stats().memory_mb)
        for distribution in ("uniform", "correlated", "anticorrelated"):
            data2 = generate_dataset(distribution, size, 2, seed=config.seed)
            top1 = Top1Index(data2.matrix[:, 0], data2.matrix[:, 1], k=1)
            result.series_for(f"SD-Index top1 {distribution}").add(
                size, top1.stats().memory_mb
            )
    return [result]


# --------------------------------------------------------------------- Figure 8i
def branching_sweep(
    config: Optional[ExperimentConfig] = None,
    branching_factors: Sequence[int] = (2, 4, 8, 16, 32, 48),
    paper_size: int = 500_000,
) -> List[ExperimentResult]:
    """Figure 8i: memory footprint of the top-k index vs branching factor."""
    config = config or ExperimentConfig()
    size = config.sizes([paper_size])[0]
    repulsive, attractive = _six_dim_roles()
    dataset = generate_dataset("uniform", size, 6, seed=config.seed)
    result = ExperimentResult(
        name="Figure 8i: memory footprint vs branching factor",
        x_label="branching_factor",
        y_label="memory (MB)",
        notes=f"{size} 6-dimensional uniform points",
    )
    for branching in branching_factors:
        index = build_algorithm(
            "SD-Index",
            dataset.matrix,
            repulsive,
            attractive,
            angles=config.angles,
            branching=branching,
        )
        result.series_for("SD-Index topK").add(branching, index.stats().memory_mb)
    return [result]


# --------------------------------------------------------------------- Figure 8j
def construction_sweep(
    config: Optional[ExperimentConfig] = None,
    paper_sizes: Sequence[int] = PAPER_6D_SIZES,
    distribution: str = "uniform",
) -> List[ExperimentResult]:
    """Figure 8j: index construction time vs dataset size."""
    config = config or ExperimentConfig()
    sizes = config.sizes(paper_sizes)
    grid = _angle_grid(config)
    result = ExperimentResult(
        name="Figure 8j: index construction time vs dataset size",
        x_label="num_points",
        y_label="construction time (s)",
        notes=f"{distribution} data; top-1/top-k built on 2 dimensions, BRS/PE on 6",
    )
    for size in sizes:
        dataset6 = generate_dataset(distribution, size, 6, seed=config.seed)
        matrix = dataset6.matrix
        x, y = matrix[:, 0], matrix[:, 1]

        started = time.perf_counter()
        Top1Index(x, y, k=1)
        result.series_for("SD-Index top1").add(size, time.perf_counter() - started)

        started = time.perf_counter()
        TopKIndex(x, y, angle_grid=grid, branching=config.branching)
        result.series_for("SD-Index topK").add(size, time.perf_counter() - started)

        started = time.perf_counter()
        BRSTopK(matrix, (0, 1, 2), (3, 4, 5))
        result.series_for("BRS").add(size, time.perf_counter() - started)

        started = time.perf_counter()
        ProgressiveExplorationTopK(matrix, (0, 1, 2), (3, 4, 5))
        result.series_for("PE").add(size, time.perf_counter() - started)
    return [result]
