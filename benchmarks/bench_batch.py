#!/usr/bin/env python3
"""Batch-serving benchmark: SDIndex.batch_query vs a loop of legacy queries.

Builds the SD-Index over a 50k-point uniform dataset (paper-style roles: two
repulsive, two attractive dimensions), answers the registered ``batch_serving``
workload of 100 queries both ways — batched through the shared session vs a
Python loop over ``query(..., engine="legacy")``, the threshold-traversal
oracle — verifies the answers are bit-identical, and writes a trajectory point
to ``BENCH_batch.json``.  (``bench_single.py`` covers the single-query fast
path against the same oracle.)

Run with::

    PYTHONPATH=src python benchmarks/bench_batch.py

Knobs (environment): ``REPRO_BENCH_BATCH_POINTS`` (dataset size, default
50000), ``REPRO_BENCH_BATCH_QUERIES`` (batch size, default 100),
``REPRO_BENCH_BATCH_REPEAT`` (timing repetitions, default 3, best-of),
``REPRO_BENCH_BATCH_MIN_SPEEDUP`` (exit-1 bar, default 5.0; set to 0 on
noisy shared runners to gate on correctness only),
``REPRO_BENCH_BATCH_MAX_OVERFETCH`` (exit-1 bar on the batch-vs-sequential
candidates-per-query ratio, default 2.5 — deterministic, so it stays on even
on noisy runners; the healthy ratio is ~1.2x now that verification re-prunes
with exact-pair-0 tight bounds over the refined bound grid (DESIGN.md,
"The bound hierarchy"), and a pruning regression shows up here long before
wall clock).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.sdindex import SDIndex  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402
from repro.workloads.registry import build_workload  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_BATCH_POINTS", "50000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_BATCH_QUERIES", "100"))
REPEAT = int(os.environ.get("REPRO_BENCH_BATCH_REPEAT", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_BATCH_MIN_SPEEDUP", "5.0"))
MAX_OVERFETCH = float(os.environ.get("REPRO_BENCH_BATCH_MAX_OVERFETCH", "2.5"))
REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def main() -> int:
    print(f"dataset: uniform, {NUM_POINTS} points, 4 dims; "
          f"batch of {NUM_QUERIES} queries (mixed k)")
    data = generate_dataset("uniform", NUM_POINTS, 4, seed=0).matrix
    build_started = time.perf_counter()
    index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    build_seconds = time.perf_counter() - build_started
    workload = build_workload(
        "batch_serving", REPULSIVE, ATTRACTIVE,
        num_queries=NUM_QUERIES, num_dims=4, seed=1,
    )
    queries = workload.queries()

    # Warm both paths once (first-touch allocations, branch caches).
    index.query(queries[0], engine="legacy")
    index.batch_query(workload)

    sequential_seconds = float("inf")
    singles = None
    for _ in range(max(1, REPEAT)):
        started = time.perf_counter()
        answers = [index.query(query, engine="legacy") for query in queries]
        sequential_seconds = min(sequential_seconds, time.perf_counter() - started)
        singles = answers

    batch_seconds = float("inf")
    batch = None
    for _ in range(max(1, REPEAT)):
        started = time.perf_counter()
        batch = index.batch_query(workload)
        batch_seconds = min(batch_seconds, time.perf_counter() - started)

    # Bit-identical verification: same row ids, exactly equal float scores.
    identical = all(
        batched.row_ids == single.row_ids and batched.scores == single.scores
        for batched, single in zip(batch, singles)
    )
    speedup = sequential_seconds / batch_seconds

    point = {
        "benchmark": "batch_serving",
        "distribution": "uniform",
        "num_points": NUM_POINTS,
        "num_dims": 4,
        "repulsive": list(REPULSIVE),
        "attractive": list(ATTRACTIVE),
        "num_queries": NUM_QUERIES,
        "k_choices": sorted(set(int(k) for k in workload.ks)),
        "build_seconds": build_seconds,
        "sequential_seconds": sequential_seconds,
        "batch_seconds": batch_seconds,
        "sequential_ms_per_query": 1000.0 * sequential_seconds / NUM_QUERIES,
        "batch_ms_per_query": 1000.0 * batch_seconds / NUM_QUERIES,
        "speedup": speedup,
        "bit_identical": identical,
        "batch_candidates_per_query": batch.candidates_examined / NUM_QUERIES,
        "sequential_candidates_per_query": (
            sum(result.candidates_examined for result in singles) / NUM_QUERIES
        ),
    }
    point["overfetch_ratio"] = point["batch_candidates_per_query"] / max(
        point["sequential_candidates_per_query"], 1e-9
    )
    OUTPUT.write_text(json.dumps(point, indent=2) + "\n")

    print(f"sequential: {sequential_seconds:.3f}s "
          f"({point['sequential_ms_per_query']:.2f} ms/query)")
    print(f"batch:      {batch_seconds:.3f}s "
          f"({point['batch_ms_per_query']:.2f} ms/query)")
    print(f"speedup:    {speedup:.1f}x   bit-identical: {identical}")
    print(
        f"candidates: batch {point['batch_candidates_per_query']:.0f}/query vs "
        f"sequential {point['sequential_candidates_per_query']:.0f}/query "
        f"(over-fetch {point['overfetch_ratio']:.1f}x)"
    )
    print(f"wrote {OUTPUT}")

    if not identical:
        print("FAIL: batch answers differ from the sequential path", file=sys.stderr)
        return 1
    if MAX_OVERFETCH > 0 and point["overfetch_ratio"] > MAX_OVERFETCH:
        print(
            f"FAIL: batch over-fetches {point['overfetch_ratio']:.1f}x the "
            f"sequential candidates per query (bar: {MAX_OVERFETCH:g}x) — "
            "the pooled threshold has stopped pruning",
            file=sys.stderr,
        )
        return 1
    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {speedup:.1f}x below the {MIN_SPEEDUP:g}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
