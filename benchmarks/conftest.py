"""Shared fixtures and scaling knobs for the benchmark suite.

Every benchmark mirrors one figure or table of the paper's evaluation (see
DESIGN.md for the experiment index).  Dataset sizes default to a small fraction
of the paper's so that ``pytest benchmarks/ --benchmark-only`` finishes in
minutes; set the environment variable ``REPRO_BENCH_SCALE`` (e.g. ``0.2`` or
``1.0``) to move toward paper scale, and ``REPRO_BENCH_QUERIES`` to change the
number of queries per measured call.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import numpy as np
import pytest

from repro.data.generators import generate_dataset
from repro.experiments.config import ExperimentConfig
from repro.workloads.registry import build_algorithm
from repro.workloads.workload import make_workload

#: Fraction of the paper's dataset sizes used by the benchmarks.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))
#: Queries per measured benchmark call.
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "5"))

#: The default k of the paper's experiments.
BENCH_K = 5

#: Six-dimensional roles used by the Figure 7 benchmarks.
SIX_DIM_ROLES: Tuple[Tuple[int, ...], Tuple[int, ...]] = ((0, 1, 2), (3, 4, 5))
#: Two-dimensional roles used by the Figure 8 benchmarks (y repulsive, x attractive).
TWO_DIM_ROLES: Tuple[Tuple[int, ...], Tuple[int, ...]] = ((1,), (0,))


def bench_config() -> ExperimentConfig:
    """The experiment configuration equivalent of the benchmark scaling knobs."""
    return ExperimentConfig(scale=BENCH_SCALE, num_queries=BENCH_QUERIES, k=BENCH_K)


def scaled_size(paper_size: int, minimum: int = 2000) -> int:
    """One paper dataset size scaled by ``REPRO_BENCH_SCALE``."""
    return max(minimum, int(round(paper_size * BENCH_SCALE)))


_DATASET_CACHE: Dict[Tuple[str, int, int, int], np.ndarray] = {}


def dataset(distribution: str, num_points: int, num_dims: int, seed: int = 0) -> np.ndarray:
    """Cached dataset matrix so repeated benchmarks do not regenerate data."""
    key = (distribution, num_points, num_dims, seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_dataset(distribution, num_points, num_dims, seed=seed).matrix
    return _DATASET_CACHE[key]


_ALGORITHM_CACHE: Dict[Tuple, object] = {}


def algorithm(method: str, distribution: str, num_points: int, num_dims: int,
              repulsive, attractive, seed: int = 0, **options):
    """Cached algorithm instance (index construction happens once per configuration)."""
    key = (method, distribution, num_points, num_dims, tuple(repulsive), tuple(attractive),
           seed, tuple(sorted(options.items())))
    if key not in _ALGORITHM_CACHE:
        data = dataset(distribution, num_points, num_dims, seed=seed)
        _ALGORITHM_CACHE[key] = build_algorithm(method, data, repulsive, attractive, **options)
    return _ALGORITHM_CACHE[key]


def workload(repulsive, attractive, num_dims: int, k: int = BENCH_K, seed: int = 1,
             num_queries: int = BENCH_QUERIES):
    """A small reusable query workload."""
    return make_workload(repulsive, attractive, num_queries=num_queries, k=k,
                         num_dims=num_dims, seed=seed)


def run_workload(algo, queries) -> int:
    """Benchmark payload: answer every query, return a checksum of result sizes."""
    total = 0
    for query in queries:
        total += len(algo.query(query))
    return total


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
