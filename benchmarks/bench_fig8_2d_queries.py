"""Figures 8c-8g: two-dimensional querying benchmarks.

* 8c-8d — querying time vs dataset size (uniform, correlated data).
* 8e    — top-1 region-index querying time vs dataset size per distribution.
* 8f-8g — querying time vs k at the largest configured 2D size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_K,
    BENCH_QUERIES,
    TWO_DIM_ROLES,
    algorithm,
    dataset,
    run_workload,
    scaled_size,
    workload,
)
from repro.core.top1 import Top1Index

PAPER_2D_SIZES = (1_000_000, 5_000_000, 10_000_000)
SIZES = sorted({scaled_size(size, minimum=10_000) for size in PAPER_2D_SIZES})
METHODS = ("SeqScan", "SD-Index", "TA", "BRS")
K_VALUES = (5, 50, 100)


@pytest.mark.parametrize("distribution", ("uniform", "correlated"))
@pytest.mark.parametrize("num_points", SIZES)
@pytest.mark.parametrize("method", METHODS)
def test_fig8cd_2d_query_time_vs_dataset_size(benchmark, method, distribution, num_points):
    repulsive, attractive = TWO_DIM_ROLES
    algo = algorithm(method, distribution, num_points, 2, repulsive, attractive)
    queries = workload(repulsive, attractive, num_dims=2, k=BENCH_K)
    benchmark.group = f"fig8cd-2d-size-{distribution}-n{num_points}"
    benchmark.extra_info.update({"figure": "8c-8d", "method": method,
                                 "distribution": distribution, "num_points": num_points})
    benchmark(run_workload, algo, queries)


_TOP1_CACHE = {}


@pytest.mark.parametrize("distribution", ("uniform", "correlated", "anticorrelated"))
@pytest.mark.parametrize("num_points", SIZES)
def test_fig8e_top1_query_time_vs_dataset_size(benchmark, distribution, num_points):
    key = (distribution, num_points)
    if key not in _TOP1_CACHE:
        matrix = dataset(distribution, num_points, 2)
        _TOP1_CACHE[key] = Top1Index(matrix[:, 0], matrix[:, 1], k=1)
    index = _TOP1_CACHE[key]
    queries = workload(*TWO_DIM_ROLES, num_dims=2, k=1)

    def run():
        total = 0
        for query in queries:
            total += len(index.query(query.point[0], query.point[1], k=1))
        return total

    benchmark.group = f"fig8e-top1-{distribution}-n{num_points}"
    benchmark.extra_info.update({"figure": "8e", "method": "SD-Index top1",
                                 "distribution": distribution, "num_points": num_points})
    benchmark(run)


@pytest.mark.parametrize("distribution", ("uniform", "correlated"))
@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("method", METHODS)
def test_fig8fg_2d_query_time_vs_k(benchmark, method, distribution, k):
    num_points = SIZES[-1]
    repulsive, attractive = TWO_DIM_ROLES
    algo = algorithm(method, distribution, num_points, 2, repulsive, attractive)
    queries = workload(repulsive, attractive, num_dims=2, k=k)
    benchmark.group = f"fig8fg-2d-k-{distribution}-k{k}"
    benchmark.extra_info.update({"figure": "8f-8g", "method": method,
                                 "distribution": distribution, "k": k})
    benchmark(run_workload, algo, queries)
