#!/usr/bin/env python3
"""Serving front-end benchmark: coalesced micro-batching vs per-request serving.

The scenario the serving tier (DESIGN.md section 8) exists for: many
concurrent clients each asking one top-k SD-Query, arriving on an open-loop
Poisson schedule that does not slow down when the server falls behind.  Two
front-end configurations are measured on identical traffic:

* **coalesced** — the default :class:`repro.serving.coalescer.TickCoalescer`
  path: requests arriving within one tick are merged into a single
  ``batch_query`` against one pinned epoch snapshot, amortizing the kernel
  dispatch the way the batch engine's ~20x (BENCH_batch.json) promises.
* **per-request** — the same admission, cache, pin and timeout machinery
  with ``coalesce=False``: every request is its own batch of one, the design
  a straightforward asyncio front end would ship.

Latency is measured open-loop from each request's *scheduled* arrival, so
queueing delay is charged to the server (no coordinated omission).  The
headline gate is the p95 improvement of coalescing at the saturating rate.

Before any timing, every served response must be bit-identical to a
``SequentialScan`` oracle over the same population — row ids, scores and
tie-breaks — and after every run the engine's epoch ledger must show zero
pinned readers (``leak_report``).

Run with::

    PYTHONPATH=src python benchmarks/bench_serving.py

Knobs (environment): ``REPRO_BENCH_SERVING_POINTS`` (dataset size, default
50000), ``REPRO_BENCH_SERVING_REQUESTS`` (requests per run, default 600),
``REPRO_BENCH_SERVING_RATE`` (open-loop arrivals/second, default 4000),
``REPRO_BENCH_SERVING_TICK_MS`` (coalescing tick, default 1.0),
``REPRO_BENCH_SERVING_MAX_BATCH`` (flush threshold, default 64),
``REPRO_BENCH_SERVING_REPEAT`` (best-of repetitions, default 2),
``REPRO_BENCH_SERVING_MIN_SPEEDUP`` (exit-1 bar on the headline p95
improvement, default 1.2; set to 0 on noisy shared runners to gate on
correctness only).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.sequential import SequentialScan  # noqa: E402
from repro.core.sdindex import SDIndex  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402
from repro.serving.loadgen import run_open_loop  # noqa: E402
from repro.serving.server import SDQueryServer, ServingConfig  # noqa: E402
from repro.workloads.registry import build_workload  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_SERVING_POINTS", "50000"))
NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVING_REQUESTS", "600"))
RATE = float(os.environ.get("REPRO_BENCH_SERVING_RATE", "4000"))
TICK_MS = float(os.environ.get("REPRO_BENCH_SERVING_TICK_MS", "1.0"))
MAX_BATCH = int(os.environ.get("REPRO_BENCH_SERVING_MAX_BATCH", "64"))
REPEAT = int(os.environ.get("REPRO_BENCH_SERVING_REPEAT", "2"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SERVING_MIN_SPEEDUP", "1.2"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4


async def run_arm(index, workload, coalesce: bool, oracle) -> dict:
    """One open-loop run; returns percentiles + histogram, oracle-verified."""
    config = ServingConfig(
        tick_seconds=TICK_MS / 1000.0,
        max_batch=MAX_BATCH,
        coalesce=coalesce,
        request_timeout=None,
    )
    async with SDQueryServer(index, config) as server:
        probe = workload.reads.queries()[0]
        await server.submit(  # warm the session + executor off the clock
            probe.point, k=probe.k, alpha=probe.alpha, beta=probe.beta
        )
        report = await run_open_loop(server, workload, collect=True)
        queries = workload.reads.queries()
        mismatches = 0
        for j, served in report.responses:
            expect = oracle.query(queries[j])
            if (
                served.result.row_ids != expect.row_ids
                or served.result.scores != expect.scores
            ):
                mismatches += 1
        stats = report.as_dict()
        stats["bit_identical"] = mismatches == 0
        stats["mismatches"] = mismatches
        coal = server.coalescer.stats()
        stats["batch_size_histogram"] = coal["batch_size_histogram"]
        sizes = server.coalescer.batch_sizes
        batched = sum(size * count for size, count in sizes.items())
        batches = sum(sizes.values())
        stats["mean_batch_size"] = batched / batches if batches else 0.0
        stats["cache"] = coal.get("cache")
    leaks = index.query_session().epochs.leak_report()
    stats["pinned_readers_after"] = leaks["pinned_readers"]
    return stats


def best_of(index, workload, coalesce: bool, oracle) -> dict:
    """Best p95 over ``REPEAT`` runs (correctness must hold on every run)."""
    best = None
    for _ in range(max(1, REPEAT)):
        stats = asyncio.run(run_arm(index, workload, coalesce, oracle))
        if not stats["bit_identical"]:
            return stats  # fail fast: a wrong answer disqualifies the arm
        if stats["pinned_readers_after"] != 0:
            return stats
        if best is None or stats["p95"] < best["p95"]:
            best = stats
    return best


def main() -> int:
    print(
        f"serving benchmark: {NUM_POINTS} points, {NUM_REQUESTS} open-loop "
        f"requests at ~{RATE:g}/s, tick {TICK_MS:g}ms, max_batch {MAX_BATCH}"
    )
    data = generate_dataset("uniform", NUM_POINTS, NUM_DIMS, seed=3).matrix
    index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
    workload = build_workload(
        "serving",
        REPULSIVE,
        ATTRACTIVE,
        num_requests=NUM_REQUESTS,
        target_rate=RATE,
        num_dims=NUM_DIMS,
        seed=11,
    )

    coalesced = best_of(index, workload, True, oracle)
    baseline = best_of(index, workload, False, oracle)

    ok = (
        coalesced["bit_identical"]
        and baseline["bit_identical"]
        and coalesced["pinned_readers_after"] == 0
        and baseline["pinned_readers_after"] == 0
    )
    speedup = baseline["p95"] / coalesced["p95"] if coalesced["p95"] > 0 else 0.0

    payload = {
        "benchmark": "serving",
        "num_points": NUM_POINTS,
        "num_requests": NUM_REQUESTS,
        "target_rate": RATE,
        "tick_ms": TICK_MS,
        "max_batch": MAX_BATCH,
        "bit_identical": ok,
        "coalesced": coalesced,
        "per_request": baseline,
        "headline": {"metric": "p95_latency_improvement", "speedup": speedup},
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for name, stats in (("coalesced", coalesced), ("per-request", baseline)):
        print(
            f"{name:>12}: p50 {stats['p50']:7.2f}ms  p95 {stats['p95']:7.2f}ms  "
            f"p99 {stats['p99']:7.2f}ms  mean batch {stats['mean_batch_size']:.1f}  "
            f"completed {stats['completed']}"
        )
    print(f"batch-size histogram (coalesced): {coalesced['batch_size_histogram']}")
    print(f"bit-identical: {ok}  headline p95 improvement: {speedup:.2f}x")
    print(f"wrote {OUTPUT}")

    if not ok:
        print("FAIL: correctness gate failed", file=sys.stderr)
        return 1
    if speedup < MIN_SPEEDUP:
        print(
            f"FAIL: p95 improvement {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:g}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
