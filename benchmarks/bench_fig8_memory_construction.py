"""Figures 8h-8j: memory footprints and index construction time.

* 8h — memory footprint vs dataset size (reported via ``extra_info``; the
  measured "time" is the footprint computation, the number that matters is the
  recorded ``memory_mb``).
* 8i — memory footprint vs branching factor of the top-k projection tree.
* 8j — index construction time vs dataset size for SD top-1, SD top-k, BRS, PE.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, dataset, scaled_size
from repro.baselines import BRSTopK, ProgressiveExplorationTopK
from repro.core.angles import AngleGrid
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from repro.workloads.registry import build_algorithm

PAPER_SIZES = (100_000, 500_000, 1_000_000)
SIZES = sorted({scaled_size(size) for size in PAPER_SIZES})
BRANCHING_FACTORS = (2, 8, 32)
SIX_DIM_ROLES = ((0, 1, 2), (3, 4, 5))


@pytest.mark.parametrize("num_points", SIZES)
def test_fig8h_memory_topk_6d(benchmark, num_points):
    config = bench_config()
    matrix = dataset("uniform", num_points, 6)
    index = build_algorithm("SD-Index", matrix, *SIX_DIM_ROLES,
                            angles=config.angles, branching=config.branching)

    def measure():
        return index.stats().memory_mb

    benchmark.group = f"fig8h-memory-n{num_points}"
    result = benchmark(measure)
    benchmark.extra_info.update({"figure": "8h", "method": "SD-Index topK",
                                 "num_points": num_points, "memory_mb": float(result)})


@pytest.mark.parametrize("distribution", ("uniform", "correlated", "anticorrelated"))
@pytest.mark.parametrize("num_points", SIZES)
def test_fig8h_memory_top1_2d(benchmark, distribution, num_points):
    matrix = dataset(distribution, num_points, 2)
    index = Top1Index(matrix[:, 0], matrix[:, 1], k=1)

    def measure():
        return index.stats().memory_mb

    benchmark.group = f"fig8h-memory-n{num_points}"
    result = benchmark(measure)
    benchmark.extra_info.update({"figure": "8h", "method": f"SD-Index top1 {distribution}",
                                 "num_points": num_points, "memory_mb": float(result)})


@pytest.mark.parametrize("branching", BRANCHING_FACTORS)
def test_fig8i_memory_vs_branching(benchmark, branching):
    config = bench_config()
    num_points = scaled_size(500_000)
    matrix = dataset("uniform", num_points, 6)
    index = build_algorithm("SD-Index", matrix, *SIX_DIM_ROLES,
                            angles=config.angles, branching=branching)

    def measure():
        return index.stats().memory_mb

    benchmark.group = "fig8i-memory-vs-branching"
    result = benchmark(measure)
    benchmark.extra_info.update({"figure": "8i", "branching": branching,
                                 "memory_mb": float(result)})


@pytest.mark.parametrize("num_points", SIZES)
def test_fig8j_construction_sd_top1(benchmark, num_points):
    matrix = dataset("uniform", num_points, 6)
    benchmark.group = f"fig8j-construction-n{num_points}"
    benchmark.extra_info.update({"figure": "8j", "method": "SD-Index top1"})
    benchmark(lambda: len(Top1Index(matrix[:, 0], matrix[:, 1], k=1)))


@pytest.mark.parametrize("num_points", SIZES)
def test_fig8j_construction_sd_topk(benchmark, num_points):
    matrix = dataset("uniform", num_points, 6)
    grid = AngleGrid.default()
    benchmark.group = f"fig8j-construction-n{num_points}"
    benchmark.extra_info.update({"figure": "8j", "method": "SD-Index topK"})
    benchmark(lambda: len(TopKIndex(matrix[:, 0], matrix[:, 1], angle_grid=grid)))


@pytest.mark.parametrize("num_points", SIZES)
def test_fig8j_construction_brs(benchmark, num_points):
    matrix = dataset("uniform", num_points, 6)
    benchmark.group = f"fig8j-construction-n{num_points}"
    benchmark.extra_info.update({"figure": "8j", "method": "BRS"})
    benchmark(lambda: len(BRSTopK(matrix, *SIX_DIM_ROLES).tree))


@pytest.mark.parametrize("num_points", SIZES)
def test_fig8j_construction_pe(benchmark, num_points):
    matrix = dataset("uniform", num_points, 6)
    benchmark.group = f"fig8j-construction-n{num_points}"
    benchmark.extra_info.update({"figure": "8j", "method": "PE"})
    benchmark(lambda: len(ProgressiveExplorationTopK(matrix, *SIX_DIM_ROLES).data))
