"""Ablation benchmarks for design choices discussed in the paper.

* angle grid size (Section 4.2: how many indexed angles to keep),
* 2D query strategy (stream merge vs the literal Claim 6 / Algorithm 4),
* dimension pairing strategy (Section 5 / future work),
* apriori-k top-1 region index vs the runtime-k projection tree.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_K,
    SIX_DIM_ROLES,
    TWO_DIM_ROLES,
    bench_config,
    dataset,
    run_workload,
    scaled_size,
    workload,
)
from repro.core.angles import AngleGrid
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from repro.workloads.registry import build_algorithm

NUM_POINTS_6D = scaled_size(500_000)
NUM_POINTS_2D = scaled_size(2_000_000, minimum=10_000)


@pytest.mark.parametrize("num_angles", (2, 3, 5, 9))
def test_ablation_angle_grid_size(benchmark, num_angles):
    config = bench_config()
    matrix = dataset("uniform", NUM_POINTS_6D, 6)
    degrees = AngleGrid.uniform(num_angles).degrees()
    index = build_algorithm("SD-Index", matrix, *SIX_DIM_ROLES,
                            angles=degrees, branching=config.branching)
    queries = workload(*SIX_DIM_ROLES, num_dims=6, k=BENCH_K)
    benchmark.group = "ablation-angle-grid"
    benchmark.extra_info.update({"ablation": "angle-grid", "num_angles": num_angles,
                                 "memory_mb": index.stats().memory_mb})
    benchmark(run_workload, index, queries)


@pytest.mark.parametrize("strategy", ("streams", "claim6"))
def test_ablation_2d_query_strategy(benchmark, strategy):
    matrix = dataset("uniform", NUM_POINTS_2D, 2)
    index = TopKIndex(matrix[:, 0], matrix[:, 1], angle_grid=AngleGrid.default())
    queries = workload(*TWO_DIM_ROLES, num_dims=2, k=BENCH_K)

    def run():
        total = 0
        for query in queries:
            total += len(index.query(query.point[0], query.point[1], k=query.k,
                                     alpha=query.alpha[0], beta=query.beta[0],
                                     strategy=strategy))
        return total

    benchmark.group = "ablation-2d-strategy"
    benchmark.extra_info.update({"ablation": "query-strategy", "strategy": strategy})
    benchmark(run)


@pytest.mark.parametrize("pairing", ("order", "spread", "correlation"))
def test_ablation_pairing_strategy(benchmark, pairing):
    config = bench_config()
    matrix = dataset("anticorrelated", NUM_POINTS_6D, 6)
    index = build_algorithm("SD-Index", matrix, *SIX_DIM_ROLES,
                            angles=config.angles, branching=config.branching,
                            pairing=pairing)
    queries = workload(*SIX_DIM_ROLES, num_dims=6, k=BENCH_K)
    benchmark.group = "ablation-pairing"
    benchmark.extra_info.update({"ablation": "pairing", "strategy": pairing})
    benchmark(run_workload, index, queries)


@pytest.mark.parametrize("structure", ("top1-region-index", "topk-tree"))
def test_ablation_top1_vs_topk_for_known_k(benchmark, structure):
    matrix = dataset("uniform", NUM_POINTS_2D, 2)
    queries = workload(*TWO_DIM_ROLES, num_dims=2, k=1, seed=2)
    if structure == "top1-region-index":
        index = Top1Index(matrix[:, 0], matrix[:, 1], k=1)

        def run():
            total = 0
            for query in queries:
                total += len(index.query(query.point[0], query.point[1], k=1))
            return total
    else:
        index = TopKIndex(matrix[:, 0], matrix[:, 1], angle_grid=AngleGrid.default())

        def run():
            total = 0
            for query in queries:
                total += len(index.query(query.point[0], query.point[1], k=1))
            return total

    benchmark.group = "ablation-top1-vs-topk"
    benchmark.extra_info.update({"ablation": "top1-vs-topk", "structure": structure,
                                 "memory_mb": index.stats().memory_mb})
    benchmark(run)
