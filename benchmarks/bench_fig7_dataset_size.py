"""Figure 7a-7c: querying time vs dataset size on 6-dimensional data.

One benchmark per (method, distribution, dataset size).  The paper's sizes
(100k-1M points) are scaled by ``REPRO_BENCH_SCALE``; PE is included only at the
smallest size because, as in the paper, it behaves like a sequential scan at six
dimensions and dominates the suite's running time otherwise.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    BENCH_K,
    SIX_DIM_ROLES,
    algorithm,
    run_workload,
    scaled_size,
    workload,
)

PAPER_SIZES = (100_000, 500_000, 1_000_000)
SIZES = sorted({scaled_size(size) for size in PAPER_SIZES})
METHODS = ("SeqScan", "SD-Index", "TA", "BRS")
DISTRIBUTIONS = ("uniform", "correlated", "anticorrelated")


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("num_points", SIZES)
@pytest.mark.parametrize("method", METHODS)
def test_fig7_query_time_vs_dataset_size(benchmark, method, distribution, num_points):
    repulsive, attractive = SIX_DIM_ROLES
    algo = algorithm(method, distribution, num_points, 6, repulsive, attractive)
    queries = workload(repulsive, attractive, num_dims=6, k=BENCH_K)
    benchmark.group = f"fig7-size-{distribution}-n{num_points}"
    benchmark.extra_info.update({"figure": "7a-7c", "method": method,
                                 "distribution": distribution, "num_points": num_points})
    benchmark(run_workload, algo, queries)


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
def test_fig7_query_time_pe_smallest_size(benchmark, distribution):
    """PE measured once per distribution at the smallest size (paper: Figure 7a-7c)."""
    repulsive, attractive = SIX_DIM_ROLES
    num_points = SIZES[0]
    algo = algorithm("PE", distribution, num_points, 6, repulsive, attractive)
    queries = workload(repulsive, attractive, num_dims=6, k=BENCH_K, num_queries=2)
    benchmark.group = f"fig7-size-{distribution}-n{num_points}"
    benchmark.extra_info.update({"figure": "7a-7c", "method": "PE",
                                 "distribution": distribution, "num_points": num_points})
    benchmark(run_workload, algo, queries)
