"""Figure 7g-7h: querying time vs k on 6-dimensional data."""

from __future__ import annotations

import pytest

from benchmarks.conftest import SIX_DIM_ROLES, algorithm, run_workload, scaled_size, workload

PAPER_SIZE = 500_000
NUM_POINTS = scaled_size(PAPER_SIZE)
METHODS = ("SeqScan", "SD-Index", "TA", "BRS")
K_VALUES = (5, 25, 50, 100)
DISTRIBUTIONS = ("uniform", "correlated")


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("method", METHODS)
def test_fig7_query_time_vs_k(benchmark, method, distribution, k):
    repulsive, attractive = SIX_DIM_ROLES
    algo = algorithm(method, distribution, NUM_POINTS, 6, repulsive, attractive)
    queries = workload(repulsive, attractive, num_dims=6, k=k)
    benchmark.group = f"fig7-k-{distribution}-k{k}"
    benchmark.extra_info.update({"figure": "7g-7h", "method": method,
                                 "distribution": distribution, "k": k})
    benchmark(run_workload, algo, queries)
