"""Figure 7d-7f: querying time vs dimensionality (2-8 dimensions)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_K, algorithm, run_workload, scaled_size, workload

PAPER_SIZE = 500_000
NUM_POINTS = scaled_size(PAPER_SIZE)
METHODS = ("SeqScan", "SD-Index", "TA", "BRS")
DIMENSIONS = (2, 4, 6, 8)
DISTRIBUTIONS = ("uniform", "correlated", "anticorrelated")


def roles(num_dims: int):
    half = num_dims // 2
    return tuple(range(half)), tuple(range(half, num_dims))


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("num_dims", DIMENSIONS)
@pytest.mark.parametrize("method", METHODS)
def test_fig7_query_time_vs_dimensions(benchmark, method, distribution, num_dims):
    repulsive, attractive = roles(num_dims)
    algo = algorithm(method, distribution, NUM_POINTS, num_dims, repulsive, attractive)
    queries = workload(repulsive, attractive, num_dims=num_dims, k=BENCH_K)
    benchmark.group = f"fig7-dims-{distribution}-d{num_dims}"
    benchmark.extra_info.update({"figure": "7d-7f", "method": method,
                                 "distribution": distribution, "num_dims": num_dims})
    benchmark(run_workload, algo, queries)
