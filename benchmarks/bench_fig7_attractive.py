"""Figure 7i-7j: querying time vs number of attractive dimensions (3 repulsive fixed)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_K, algorithm, run_workload, scaled_size, workload

PAPER_SIZE = 500_000
NUM_POINTS = scaled_size(PAPER_SIZE)
METHODS = ("SeqScan", "SD-Index", "TA", "BRS")
ATTRACTIVE_COUNTS = (0, 1, 2, 3)
DISTRIBUTIONS = ("uniform", "correlated")
NUM_REPULSIVE = 3


@pytest.mark.parametrize("distribution", DISTRIBUTIONS)
@pytest.mark.parametrize("num_attractive", ATTRACTIVE_COUNTS)
@pytest.mark.parametrize("method", METHODS)
def test_fig7_query_time_vs_attractive_dims(benchmark, method, distribution, num_attractive):
    num_dims = NUM_REPULSIVE + num_attractive
    repulsive = tuple(range(NUM_REPULSIVE))
    attractive = tuple(range(NUM_REPULSIVE, num_dims))
    algo = algorithm(method, distribution, NUM_POINTS, num_dims, repulsive, attractive)
    queries = workload(repulsive, attractive, num_dims=num_dims, k=BENCH_K)
    benchmark.group = f"fig7-attractive-{distribution}-s{num_attractive}"
    benchmark.extra_info.update({"figure": "7i-7j", "method": method,
                                 "distribution": distribution,
                                 "num_attractive": num_attractive})
    benchmark(run_workload, algo, queries)
