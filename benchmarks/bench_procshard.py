#!/usr/bin/env python3
"""Multi-process sharded serving benchmark: ProcessShardedIndex vs threads.

The GIL question, measured: the thread-pool ``ShardedIndex`` fans shard
probes out over threads inside one interpreter, so the Python halves of the
kernels serialize on the GIL; ``ProcessShardedIndex`` runs one worker
process per shard over mmap'd sub-snapshots, so probes execute on separate
cores with only the (spec, results) pickle crossing the pipe.  Both engines
answer bit-identically (verified here before any timing), so throughput is
the only axis.

Two gates:

* **Scaling** — process-backend serving throughput must reach
  ``REPRO_BENCH_PROCSHARD_MIN_SPEEDUP`` (default 1.5) x the thread-pool
  baseline, *on multi-core hosts only*.  On a single-core host there is no
  parallelism to win — IPC overhead is pure loss — so the gate is **skipped
  and reported as skipped** (never faked); the JSON records the core count
  either way.
* **Availability** — under a worker-kill storm (SIGKILL a random worker
  between serves, every serve racing respawn + breaker recovery), the
  fraction of requests answered (including explicitly degraded answers)
  must be >= ``REPRO_BENCH_PROCSHARD_MIN_AVAILABILITY`` (default 0.99):
  worker death degrades, never hangs and never errors.

Run with::

    PYTHONPATH=src python benchmarks/bench_procshard.py

Knobs (environment): ``REPRO_BENCH_PROCSHARD_POINTS`` (default 60000),
``REPRO_BENCH_PROCSHARD_QUERIES`` (default 64),
``REPRO_BENCH_PROCSHARD_SHARDS`` (default min(4, cores) on multi-core, 2 on
single-core), ``REPRO_BENCH_PROCSHARD_REPEAT`` (best-of, default 3),
``REPRO_BENCH_PROCSHARD_STORM_QUERIES`` (default 120),
``REPRO_BENCH_PROCSHARD_KILLS`` (default 6),
``REPRO_BENCH_PROCSHARD_MIN_SPEEDUP`` (default 1.5),
``REPRO_BENCH_PROCSHARD_MIN_AVAILABILITY`` (default 0.99).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.procserving import ProcessShardedIndex  # noqa: E402
from repro.core.sharding import ShardedIndex  # noqa: E402
from repro.serving.breaker import ResiliencePolicy  # noqa: E402

CORES = os.cpu_count() or 1
NUM_POINTS = int(os.environ.get("REPRO_BENCH_PROCSHARD_POINTS", "60000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_PROCSHARD_QUERIES", "64"))
NUM_SHARDS = int(
    os.environ.get(
        "REPRO_BENCH_PROCSHARD_SHARDS", str(min(4, CORES) if CORES > 1 else 2)
    )
)
REPEAT = int(os.environ.get("REPRO_BENCH_PROCSHARD_REPEAT", "3"))
STORM_QUERIES = int(os.environ.get("REPRO_BENCH_PROCSHARD_STORM_QUERIES", "120"))
STORM_KILLS = int(os.environ.get("REPRO_BENCH_PROCSHARD_KILLS", "6"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PROCSHARD_MIN_SPEEDUP", "1.5"))
MIN_AVAILABILITY = float(
    os.environ.get("REPRO_BENCH_PROCSHARD_MIN_AVAILABILITY", "0.99")
)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_procshard.json"

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4


def best_of(callable_, repeat: int = REPEAT) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def scaling_scenario(data: np.ndarray, points, ks, alphas, betas) -> dict:
    threads = ShardedIndex(
        data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=NUM_SHARDS
    )
    procs = ProcessShardedIndex(
        data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=NUM_SHARDS
    )
    try:
        serve_threads = lambda: threads.batch_query(  # noqa: E731
            points, k=ks, alpha=alphas, beta=betas
        )
        serve_procs = lambda: procs.batch_query(  # noqa: E731
            points, k=ks, alpha=alphas, beta=betas
        )
        # Warm both paths (sessions, first-touch mmap pages, worker boot).
        expected = serve_threads()
        answered = serve_procs()
        identical = all(
            mine.row_ids == theirs.row_ids and mine.scores == theirs.scores
            for mine, theirs in zip(answered.results, expected.results)
        )
        thread_seconds = best_of(serve_threads)
        proc_seconds = best_of(serve_procs)
        stats = dict(procs.serve_stats)
    finally:
        procs.close()
        threads.close()
    return {
        "num_points": len(data),
        "num_queries": len(points),
        "num_shards": NUM_SHARDS,
        "thread_seconds": thread_seconds,
        "process_seconds": proc_seconds,
        "thread_queries_per_second": len(points) / thread_seconds,
        "process_queries_per_second": len(points) / proc_seconds,
        "speedup": thread_seconds / proc_seconds,
        "bit_identical": identical,
        "probes": stats["probes"],
        "probes_pruned": stats["pruned"],
        "rounds": stats["rounds"],
    }


def storm_scenario(data: np.ndarray, points, ks) -> dict:
    """SIGKILL a worker every few serves; count answered vs failed requests."""
    rng = np.random.default_rng(2026)
    engine = ProcessShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=NUM_SHARDS,
        resilience=ResiliencePolicy(retry=None, failure_threshold=1, reset_timeout=0.1),
    )
    answered = degraded = errored = kills = 0
    try:
        kill_every = max(1, STORM_QUERIES // max(1, STORM_KILLS))
        for j in range(STORM_QUERIES):
            if j % kill_every == kill_every // 2 and kills < STORM_KILLS:
                pids = [pid for pid in engine.worker_pids() if pid is not None]
                if pids:
                    os.kill(int(rng.choice(pids)), signal.SIGKILL)
                    kills += 1
            try:
                result = engine.query(points[j % len(points)], k=int(ks[j % len(ks)]))
            except Exception:
                errored += 1
                continue
            answered += 1
            if result.degraded:
                degraded += 1
            if j % kill_every == kill_every - 1:
                engine.await_workers(30.0)  # let respawns rejoin the fleet
    finally:
        engine.close()
    total = answered + errored
    return {
        "requests": total,
        "answered": answered,
        "degraded": degraded,
        "errors": errored,
        "worker_kills": kills,
        "availability": answered / total if total else 1.0,
    }


def main() -> int:
    print(
        f"process-sharded serving benchmark: {NUM_POINTS} points, "
        f"{NUM_QUERIES} queries, {NUM_SHARDS} shards, {CORES} core(s)"
    )

    rng = np.random.default_rng(7)
    data = rng.random((NUM_POINTS, NUM_DIMS))
    points = rng.random((NUM_QUERIES, NUM_DIMS))
    ks = rng.choice(np.asarray([1, 10]), size=NUM_QUERIES)
    alphas = rng.uniform(0.05, 1.0, size=(NUM_QUERIES, len(REPULSIVE)))
    betas = rng.uniform(0.05, 1.0, size=(NUM_QUERIES, len(ATTRACTIVE)))

    scaling = scaling_scenario(data, points, ks, alphas, betas)
    storm = storm_scenario(data, points, ks)

    speedup_gate = "enforced" if CORES >= 2 else "skipped (single-core host)"
    payload = {
        "benchmark": "process_sharded_serving",
        "cores": CORES,
        "min_speedup": MIN_SPEEDUP,
        "speedup_gate": speedup_gate,
        "min_availability": MIN_AVAILABILITY,
        "scaling": scaling,
        "kill_storm": storm,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"scaling: threads {scaling['thread_seconds']:.3f}s  "
        f"processes {scaling['process_seconds']:.3f}s  "
        f"speedup {scaling['speedup']:.2f}x  "
        f"bit-identical: {scaling['bit_identical']}  [{speedup_gate}]"
    )
    print(
        f"kill storm: {storm['answered']}/{storm['requests']} answered "
        f"({storm['degraded']} degraded), {storm['worker_kills']} kills, "
        f"availability {storm['availability']:.4f}"
    )
    print(f"wrote {OUTPUT}")

    if not scaling["bit_identical"]:
        print(
            "FAIL: process-sharded answers differ from the thread-pool engine",
            file=sys.stderr,
        )
        return 1
    if CORES >= 2 and scaling["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: speedup {scaling['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP:g}x bar on {CORES} cores",
            file=sys.stderr,
        )
        return 1
    if storm["availability"] < MIN_AVAILABILITY:
        print(
            f"FAIL: availability {storm['availability']:.4f} below "
            f"{MIN_AVAILABILITY:g} under the worker-kill storm",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
