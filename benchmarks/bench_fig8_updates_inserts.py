"""Figure 8a (querying cost after updates) and Figure 8b (insertion cost).

Figure 8a: the SD-Index top-k structure is built, a batch of deletions and
insertions is applied, and the post-update querying time is measured (the
no-update querying time is covered by the Figure 7/8c benchmarks).

Figure 8b: per-structure insertion cost — SD top-1, SD top-k, BRS and PE — as a
batch of fresh points is inserted into an index built at the configured size.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import (
    BENCH_K,
    SIX_DIM_ROLES,
    bench_config,
    dataset,
    run_workload,
    scaled_size,
    workload,
)
from repro.baselines import BRSTopK, ProgressiveExplorationTopK
from repro.core.angles import AngleGrid
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from repro.workloads.registry import build_algorithm

PAPER_SIZE = 500_000
NUM_POINTS = scaled_size(PAPER_SIZE)
NUM_UPDATES = max(50, NUM_POINTS // 100)
NUM_INSERTS = 200


@pytest.mark.parametrize("distribution", ("uniform", "correlated"))
def test_fig8a_query_time_after_updates(benchmark, distribution):
    config = bench_config()
    matrix = dataset(distribution, NUM_POINTS, 6)
    repulsive, attractive = SIX_DIM_ROLES
    index = build_algorithm("SD-Index", matrix, repulsive, attractive,
                            angles=config.angles, branching=config.branching)
    rng = np.random.default_rng(5)
    victims = rng.choice(NUM_POINTS, size=NUM_UPDATES, replace=False)
    for victim in victims:
        index.delete(int(victim))
    for point in rng.random((NUM_UPDATES, 6)):
        index.insert(point)
    queries = workload(repulsive, attractive, num_dims=6, k=BENCH_K)
    benchmark.group = f"fig8a-updates-{distribution}"
    benchmark.extra_info.update({"figure": "8a", "distribution": distribution,
                                 "num_updates": 2 * NUM_UPDATES})
    benchmark(run_workload, index, queries)


def _fresh_points(count: int) -> np.ndarray:
    return np.random.default_rng(11).random((count, 6))


def test_fig8b_insert_sd_top1(benchmark):
    matrix = dataset("uniform", NUM_POINTS, 6)
    points = _fresh_points(NUM_INSERTS)

    def setup():
        index = Top1Index(matrix[:, 0], matrix[:, 1], k=1)
        return (index,), {}

    def insert_batch(index):
        for i, point in enumerate(points):
            index.insert(point[0], point[1], row_id=NUM_POINTS + i)
        return len(index)

    benchmark.group = "fig8b-insertion"
    benchmark.extra_info.update({"figure": "8b", "method": "SD-Index top1"})
    benchmark.pedantic(insert_batch, setup=setup, rounds=3)


def test_fig8b_insert_sd_topk(benchmark):
    matrix = dataset("uniform", NUM_POINTS, 6)
    points = _fresh_points(NUM_INSERTS)
    grid = AngleGrid.default()

    def setup():
        index = TopKIndex(matrix[:, 0], matrix[:, 1], angle_grid=grid)
        return (index,), {}

    def insert_batch(index):
        for i, point in enumerate(points):
            index.insert(point[0], point[1], row_id=NUM_POINTS + i)
        return len(index)

    benchmark.group = "fig8b-insertion"
    benchmark.extra_info.update({"figure": "8b", "method": "SD-Index topK"})
    benchmark.pedantic(insert_batch, setup=setup, rounds=3)


def test_fig8b_insert_brs(benchmark):
    matrix = dataset("uniform", NUM_POINTS, 6)
    points = _fresh_points(NUM_INSERTS)

    def setup():
        return (BRSTopK(matrix, *SIX_DIM_ROLES),), {}

    def insert_batch(index):
        for i, point in enumerate(points):
            index.insert(point, row_id=NUM_POINTS + i)
        return len(index.tree)

    benchmark.group = "fig8b-insertion"
    benchmark.extra_info.update({"figure": "8b", "method": "BRS"})
    benchmark.pedantic(insert_batch, setup=setup, rounds=3)


def test_fig8b_insert_pe(benchmark):
    matrix = dataset("uniform", NUM_POINTS, 6)
    points = _fresh_points(NUM_INSERTS)

    def setup():
        return (ProgressiveExplorationTopK(matrix, *SIX_DIM_ROLES),), {}

    def insert_batch(index):
        for i, point in enumerate(points):
            index.insert(point, row_id=NUM_POINTS + i)
        return len(index.data)

    benchmark.group = "fig8b-insertion"
    benchmark.extra_info.update({"figure": "8b", "method": "PE"})
    benchmark.pedantic(insert_batch, setup=setup, rounds=3)
