#!/usr/bin/env python3
"""Persistence benchmark: warm starts, WAL replay and checkpoint-under-load.

What a restart costs is the whole reason the persistence subsystem exists
(DESIGN.md section 7), so this benchmark measures exactly that:

* **Cold rebuild vs snapshot load vs mmap load.**  Building the SD-Index from
  the raw matrix pays the full projection-tree construction; loading a
  snapshot restores the flattened serving arrays directly (trees deferred);
  ``load(mmap=True)`` maps them and touches pages on demand.  All three must
  answer the probe batch bit-identically — the speedups are only reported if
  the answers match.
* **WAL replay throughput.**  A recovery is a snapshot load plus a replay of
  the journaled tail; ops/second of the replay bounds how much un-checkpointed
  history a deployment can afford.  Reported both as pure replay rate (from
  ``last_recovery``) and end-to-end recovery wall time.
* **Checkpoint under write load.**  A checkpoint pins an epoch and streams
  while writers keep running; the metric that proves the design is the read
  latency impact: p50/p95 of serving batches with checkpoints streaming in a
  loop versus an idle baseline.

Run with::

    PYTHONPATH=src python benchmarks/bench_persist.py

Knobs (environment): ``REPRO_BENCH_PERSIST_POINTS`` (dataset size, default
50000), ``REPRO_BENCH_PERSIST_QUERIES`` (probe batch size, default 32),
``REPRO_BENCH_PERSIST_OPS`` (WAL ops journaled, default 2000),
``REPRO_BENCH_PERSIST_BATCHES`` (read batches per latency run, default 30),
``REPRO_BENCH_PERSIST_MIN_SPEEDUP`` (exit-1 bar on snapshot-load vs cold
rebuild, default 2.0; set to 0 on noisy shared runners to gate on
correctness only).  Writes ``BENCH_persist.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.persistence import DurableIndex  # noqa: E402
from repro.core.sdindex import SDIndex  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_PERSIST_POINTS", "50000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_PERSIST_QUERIES", "32"))
NUM_OPS = int(os.environ.get("REPRO_BENCH_PERSIST_OPS", "2000"))
NUM_BATCHES = int(os.environ.get("REPRO_BENCH_PERSIST_BATCHES", "30"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_PERSIST_MIN_SPEEDUP", "2.0"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_persist.json"

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4


def answers_of(engine, queries, ks):
    batch = engine.batch_query(queries, k=ks)
    return [
        [(m.row_id, m.score) for m in result.matches] for result in batch.results
    ]


def main() -> int:
    rng = np.random.default_rng(0)
    data = generate_dataset("uniform", NUM_POINTS, NUM_DIMS, seed=0).matrix
    queries = rng.random((NUM_QUERIES, NUM_DIMS))
    ks = rng.integers(1, 11, size=NUM_QUERIES)
    workdir = Path(tempfile.mkdtemp(prefix="bench-persist-"))
    report = {
        "config": {
            "num_points": NUM_POINTS,
            "num_queries": NUM_QUERIES,
            "num_wal_ops": NUM_OPS,
            "num_batches": NUM_BATCHES,
        }
    }
    failures = []
    try:
        # ---------------------------------------------- cold build vs loads
        started = time.perf_counter()
        index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        baseline = answers_of(index, queries, ks)  # also builds the session
        cold_seconds = time.perf_counter() - started

        started = time.perf_counter()
        index.save(workdir / "snap")
        save_seconds = time.perf_counter() - started

        started = time.perf_counter()
        loaded = SDIndex.load(workdir / "snap")
        full_answers = answers_of(loaded, queries, ks)
        full_load_seconds = time.perf_counter() - started

        started = time.perf_counter()
        mapped = SDIndex.load(workdir / "snap", mmap=True)
        mmap_answers = answers_of(mapped, queries, ks)
        mmap_load_seconds = time.perf_counter() - started

        if full_answers != baseline:
            failures.append("full snapshot load answers diverged")
        if mmap_answers != baseline:
            failures.append("mmap snapshot load answers diverged")

        report["warm_start"] = {
            "cold_build_seconds": cold_seconds,
            "snapshot_save_seconds": save_seconds,
            "snapshot_load_seconds": full_load_seconds,
            "mmap_load_seconds": mmap_load_seconds,
            "load_speedup_vs_cold": cold_seconds / full_load_seconds,
            "mmap_speedup_vs_cold": cold_seconds / mmap_load_seconds,
            "bit_identical": not failures,
        }
        print(
            f"warm start ({NUM_POINTS} pts): cold build+first-batch "
            f"{cold_seconds:.2f}s, save {save_seconds:.2f}s, load "
            f"{full_load_seconds:.2f}s ({cold_seconds / full_load_seconds:.1f}x), "
            f"mmap load {mmap_load_seconds:.2f}s "
            f"({cold_seconds / mmap_load_seconds:.1f}x), bit-identical="
            f"{not failures}"
        )

        # ------------------------------------------------ WAL replay throughput
        durable = DurableIndex.create(loaded, workdir / "dur", fsync="os")
        live = list(range(NUM_POINTS))
        append_started = time.perf_counter()
        for step in range(NUM_OPS):
            if step % 4 == 3:
                durable.delete(live.pop(step % len(live)))
            else:
                durable.insert(rng.random(NUM_DIMS))
        append_seconds = time.perf_counter() - append_started
        expected = answers_of(durable, queries, ks)
        durable.close()

        recover_started = time.perf_counter()
        recovered = DurableIndex.recover(workdir / "dur", fsync="os")
        recover_seconds = time.perf_counter() - recover_started
        replay = recovered.last_recovery
        if answers_of(recovered, queries, ks) != expected:
            failures.append("post-replay answers diverged")
        recovered.close()
        report["wal"] = {
            "ops_journaled": NUM_OPS,
            "append_ops_per_second": NUM_OPS / append_seconds,
            "replayed": replay["replayed"],
            "replay_seconds": replay["replay_seconds"],
            "replay_ops_per_second": replay["replayed"]
            / max(replay["replay_seconds"], 1e-9),
            "recover_wall_seconds": recover_seconds,
        }
        print(
            f"WAL: journaled {NUM_OPS} ops at "
            f"{NUM_OPS / append_seconds:,.0f} ops/s, replayed "
            f"{replay['replayed']} in {replay['replay_seconds']:.2f}s "
            f"({report['wal']['replay_ops_per_second']:,.0f} ops/s), "
            f"recovery wall {recover_seconds:.2f}s"
        )

        # --------------------------------------- checkpoint-under-load latency
        def read_latencies(engine, stop_event=None):
            latencies = []
            for _ in range(NUM_BATCHES):
                started = time.perf_counter()
                engine.batch_query(queries, k=ks)
                latencies.append(time.perf_counter() - started)
            if stop_event is not None:
                stop_event.set()
            return latencies

        fresh = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
        durable = DurableIndex.create(fresh, workdir / "latency", fsync="os")
        durable.batch_query(queries, k=ks)  # warm the session
        idle = read_latencies(durable)

        stop = threading.Event()
        checkpoints = {"count": 0}

        def checkpoint_storm():
            while not stop.is_set():
                durable.insert(rng.random(NUM_DIMS))
                durable.checkpoint()
                checkpoints["count"] += 1

        storm = threading.Thread(target=checkpoint_storm)
        storm.start()
        under_load = read_latencies(durable, stop)
        storm.join()
        durable.close()

        def pct(values, q):
            return float(np.percentile(np.asarray(values), q))

        report["checkpoint_under_load"] = {
            "checkpoints_streamed": checkpoints["count"],
            "idle_p50_ms": 1000 * statistics.median(idle),
            "idle_p95_ms": 1000 * pct(idle, 95),
            "under_load_p50_ms": 1000 * statistics.median(under_load),
            "under_load_p95_ms": 1000 * pct(under_load, 95),
            "p95_impact": pct(under_load, 95) / pct(idle, 95),
        }
        print(
            f"checkpoint under load: {checkpoints['count']} checkpoints "
            f"streamed; read p95 {1000 * pct(idle, 95):.1f} ms idle -> "
            f"{1000 * pct(under_load, 95):.1f} ms under load "
            f"({report['checkpoint_under_load']['p95_impact']:.2f}x)"
        )

        # ------------------------------------------------------------- gates
        report["gates"] = {
            "min_load_speedup": MIN_SPEEDUP,
            "load_speedup": report["warm_start"]["load_speedup_vs_cold"],
            "failures": failures,
        }
        if MIN_SPEEDUP > 0 and report["warm_start"]["load_speedup_vs_cold"] < MIN_SPEEDUP:
            failures.append(
                f"snapshot load speedup "
                f"{report['warm_start']['load_speedup_vs_cold']:.2f}x "
                f"below the {MIN_SPEEDUP:.2f}x bar"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {OUTPUT}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
