#!/usr/bin/env python3
"""Fault-storm benchmark: availability and latency under a single-shard storm.

The scenario DESIGN.md section 9 exists for: one shard of a sharded serving
engine turns flaky (its probes raise on a seeded coin), and the fault domain
machinery — bounded retries with jittered backoff, per-shard circuit
breakers, graceful partial-result degradation — must keep answering every
request.  Two arms run identical open-loop traffic:

* **baseline** — no faults installed: every answer must be bit-identical to
  the sequential oracle.
* **storm** — a :class:`repro.faults.FaultPlane` raising transient faults on
  ``shard.probe`` for one shard at a seeded rate.  Every response must still
  arrive (availability), and each one is verified: non-degraded answers bit
  identical to the oracle, degraded answers carrying a shard-coverage report
  whose ``score_bound`` dominates every score the answer could be missing.

Gates (exit 1): storm availability >= 99%, zero verification failures, zero
leaked epoch pins, storm p95 within a multiple of the baseline's p95 (an
absolute ceiling is available but off by default — shared and 1-core
runners saturate at rates that are comfortable on real serving hardware,
so only the relative number is portable).

Run with::

    PYTHONPATH=src python benchmarks/bench_faults.py

Knobs (environment): ``REPRO_BENCH_FAULTS_POINTS`` (dataset size, default
20000), ``REPRO_BENCH_FAULTS_REQUESTS`` (requests per run, default 400),
``REPRO_BENCH_FAULTS_RATE`` (open-loop arrivals/second, default 2000),
``REPRO_BENCH_FAULTS_STORM_RATE`` (per-probe injection probability on the
stormed shard, default 0.6), ``REPRO_BENCH_FAULTS_SHARDS`` (default 4),
``REPRO_BENCH_FAULTS_REPEAT`` (best-of repetitions, default 2),
``REPRO_BENCH_FAULTS_MIN_AVAILABILITY`` (gate, default 0.99),
``REPRO_BENCH_FAULTS_MAX_P95_RATIO`` (storm p95 as a multiple of the
baseline p95, default 2.0), ``REPRO_BENCH_FAULTS_MAX_P95_MS`` (optional
absolute storm p95 ceiling in ms, default inf).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import faults  # noqa: E402
from repro.baselines.sequential import SequentialScan  # noqa: E402
from repro.core.sharding import ShardedIndex  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402
from repro.faults import FaultPlane, FaultRule  # noqa: E402
from repro.serving.breaker import ResiliencePolicy, RetryPolicy  # noqa: E402
from repro.serving.loadgen import run_open_loop  # noqa: E402
from repro.serving.server import SDQueryServer, ServingConfig  # noqa: E402
from repro.workloads.registry import build_workload  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_FAULTS_POINTS", "20000"))
NUM_REQUESTS = int(os.environ.get("REPRO_BENCH_FAULTS_REQUESTS", "400"))
RATE = float(os.environ.get("REPRO_BENCH_FAULTS_RATE", "2000"))
STORM_RATE = float(os.environ.get("REPRO_BENCH_FAULTS_STORM_RATE", "0.6"))
NUM_SHARDS = int(os.environ.get("REPRO_BENCH_FAULTS_SHARDS", "4"))
REPEAT = int(os.environ.get("REPRO_BENCH_FAULTS_REPEAT", "2"))
MIN_AVAILABILITY = float(
    os.environ.get("REPRO_BENCH_FAULTS_MIN_AVAILABILITY", "0.99")
)
MAX_P95_RATIO = float(os.environ.get("REPRO_BENCH_FAULTS_MAX_P95_RATIO", "2.0"))
MAX_P95_MS = float(os.environ.get("REPRO_BENCH_FAULTS_MAX_P95_MS", "inf"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4
STORMED_SHARD = 1


def leaked_pins(engine: ShardedIndex) -> int:
    total = engine._topology.leak_report()["pinned_readers"]
    for shard in engine._shards:
        total += shard.serving_session().epochs.leak_report()["pinned_readers"]
    return total


def verify(report, queries, oracle, score_tables) -> dict:
    """Check every collected response; returns mismatch/soundness counters."""
    mismatches = unsound = degraded = 0
    for j, served in report.responses:
        result = served.result
        if not result.degraded:
            expect = oracle.query(queries[j])
            if result.row_ids != expect.row_ids or result.scores != expect.scores:
                mismatches += 1
            continue
        degraded += 1
        table = score_tables(j)
        bound = result.coverage.score_bound
        returned = set(result.row_ids)
        if any(table[row] != score for row, score in zip(result.row_ids, result.scores)):
            unsound += 1
            continue
        top = sorted(table.items(), key=lambda item: (-item[1], item[0]))
        for row, score in top[: queries[j].k]:
            if row not in returned and score > bound + 1e-12:
                unsound += 1
                break
    return {"mismatches": mismatches, "unsound": unsound, "degraded": degraded}


async def run_arm(engine, workload, plane, oracle, score_tables) -> dict:
    config = ServingConfig(tick_seconds=0.001, request_timeout=None)
    async with SDQueryServer(engine, config) as server:
        probe = workload.reads.queries()[0]
        await server.submit(  # warm the sessions + executor off the clock
            probe.point, k=probe.k, alpha=probe.alpha, beta=probe.beta
        )
        if plane is not None:
            with faults.fault_plane(plane):
                report = await run_open_loop(server, workload, collect=True)
        else:
            report = await run_open_loop(server, workload, collect=True)
    queries = workload.reads.queries()
    checks = verify(report, queries, oracle, score_tables)
    stats = report.as_dict()
    stats.update(checks)
    stats["degraded_fraction"] = checks["degraded"] / max(1, report.issued)
    stats["injections"] = plane.total_injections() if plane is not None else 0
    stats["pinned_readers_after"] = leaked_pins(engine)
    stats["breakers"] = engine.breaker_stats()
    stats["verified"] = (
        checks["mismatches"] == 0
        and checks["unsound"] == 0
        and stats["pinned_readers_after"] == 0
    )
    return stats


def best_of(engine, workload, make_plane, oracle, score_tables) -> dict:
    """Best p95 over ``REPEAT`` runs (every run must verify)."""
    best = None
    for repeat in range(max(1, REPEAT)):
        plane = make_plane(repeat) if make_plane is not None else None
        stats = asyncio.run(run_arm(engine, workload, plane, oracle, score_tables))
        if not stats["verified"]:
            return stats  # fail fast: a wrong or leaky run disqualifies the arm
        if best is None or stats["p95"] < best["p95"]:
            best = stats
    return best


def main() -> int:
    print(
        f"fault-storm benchmark: {NUM_POINTS} points over {NUM_SHARDS} shards, "
        f"{NUM_REQUESTS} open-loop requests at ~{RATE:g}/s, storm rate "
        f"{STORM_RATE:g} on shard {STORMED_SHARD}"
    )
    data = generate_dataset("uniform", NUM_POINTS, NUM_DIMS, seed=3).matrix
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3, base_backoff=0.002, seed=5),
        failure_threshold=5,
        reset_timeout=0.05,
        degrade=True,
    )
    engine = ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=NUM_SHARDS,
        resilience=policy,
    )
    oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE)
    workload = build_workload(
        "serving",
        REPULSIVE,
        ATTRACTIVE,
        num_requests=NUM_REQUESTS,
        target_rate=RATE,
        num_dims=NUM_DIMS,
        seed=11,
    )
    queries = workload.reads.queries()

    tables: dict = {}

    def score_tables(j: int) -> dict:
        key = id(queries[j])
        if key not in tables:
            full = oracle.query(queries[j].with_k(NUM_POINTS))
            tables[key] = dict(zip(full.row_ids, full.scores))
        return tables[key]

    def make_plane(repeat: int) -> FaultPlane:
        return FaultPlane(
            [
                FaultRule(
                    "shard.probe",
                    rate=STORM_RATE,
                    key=STORMED_SHARD,
                )
            ],
            seed=29 + repeat,
        )

    try:
        baseline = best_of(engine, workload, None, oracle, score_tables)
        storm = best_of(engine, workload, make_plane, oracle, score_tables)
    finally:
        engine.close()

    p95_ratio = storm["p95"] / baseline["p95"] if baseline["p95"] > 0 else 0.0
    ok = (
        baseline["verified"]
        and storm["verified"]
        and baseline["availability"] == 1.0
        and storm["availability"] >= MIN_AVAILABILITY
        and p95_ratio <= MAX_P95_RATIO
        and storm["p95"] <= MAX_P95_MS
    )
    payload = {
        "benchmark": "faults",
        "num_points": NUM_POINTS,
        "num_requests": NUM_REQUESTS,
        "num_shards": NUM_SHARDS,
        "target_rate": RATE,
        "storm_rate": STORM_RATE,
        "stormed_shard": STORMED_SHARD,
        "baseline": baseline,
        "storm": storm,
        "headline": {
            "metric": "availability_under_single_shard_storm",
            "availability": storm["availability"],
            "degraded_fraction": storm["degraded_fraction"],
            "p95_ms": storm["p95"],
            "p95_vs_baseline": p95_ratio,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for name, stats in (("baseline", baseline), ("storm", storm)):
        print(
            f"{name:>9}: p50 {stats['p50']:7.2f}ms  p95 {stats['p95']:7.2f}ms  "
            f"availability {stats['availability']:.4f}  "
            f"degraded {stats['degraded']}/{stats['issued']}  "
            f"injections {stats['injections']}"
        )
    print(f"gates passed: {ok}  storm p95 vs baseline: {p95_ratio:.2f}x")
    print(f"wrote {OUTPUT}")

    if not (baseline["verified"] and storm["verified"]):
        print("FAIL: verification gate failed (bit-identity/soundness/pins)",
              file=sys.stderr)
        return 1
    if storm["availability"] < MIN_AVAILABILITY:
        print(
            f"FAIL: storm availability {storm['availability']:.4f} below "
            f"the {MIN_AVAILABILITY:g} bar",
            file=sys.stderr,
        )
        return 1
    if p95_ratio > MAX_P95_RATIO:
        print(
            f"FAIL: storm p95 {p95_ratio:.2f}x baseline, above the "
            f"{MAX_P95_RATIO:g}x bar",
            file=sys.stderr,
        )
        return 1
    if storm["p95"] > MAX_P95_MS:
        print(
            f"FAIL: storm p95 {storm['p95']:.2f}ms above the "
            f"{MAX_P95_MS:g}ms ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
