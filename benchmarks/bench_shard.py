#!/usr/bin/env python3
"""Sharded-serving benchmark: ShardedIndex vs the single-session batch engine.

The headline scenario is the paper's Table 1 workload shape at serving scale: a
ChEMBL-like library (attractive drug-likeness with tight locality, repulsive
molecular weight spanning wide), query molecules sampled from the library (the
"find molecules like this one" traffic of the qualitative study), a k menu of
{1, 10}, and the engine range-sharded on the attractive dimension.  That is the
case horizontal partitioning is built for — bound-ordered probing prunes most
non-local shards outright — and where the >= 2x acceptance bar applies.

A second, adversarial scenario (uniform 4-dim data, hash and range sharding)
is measured and reported in the same JSON but not gated: with no locality for
the partitioning to exploit, shard bounds cannot exclude much and the sharded
engine only wins what the cross-shard tightened thresholds save.

Both scenarios verify bit-identical answers (same row ids, exactly equal
float scores) against the single-session engine before any timing is reported.

Run with::

    PYTHONPATH=src python benchmarks/bench_shard.py

Knobs (environment): ``REPRO_BENCH_SHARD_POINTS`` (dataset size, default
200000), ``REPRO_BENCH_SHARD_QUERIES`` (batch size, default 100),
``REPRO_BENCH_SHARD_SHARDS`` (shard count, default 4),
``REPRO_BENCH_SHARD_REPEAT`` (timing repetitions, default 3, best-of),
``REPRO_BENCH_SHARD_MIN_SPEEDUP`` (exit-1 bar on the chembl scenario, default
2.0; set to 0 on noisy shared runners to gate on correctness only),
``REPRO_BENCH_SHARD_MAX_OVERFETCH`` (exit-1 bar on the sharded-vs-flat
candidates-per-query ratio of the headline scenario, default 2.5 —
deterministic; cross-shard sample pooling must keep per-shard verification
as tight as the single-session engine's).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.sdindex import SDIndex  # noqa: E402
from repro.data.chembl import generate_chembl_like  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402
from repro.workloads.registry import build_workload  # noqa: E402
from repro.workloads.workload import BatchWorkload  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_SHARD_POINTS", "200000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_SHARD_QUERIES", "100"))
NUM_SHARDS = int(os.environ.get("REPRO_BENCH_SHARD_SHARDS", "4"))
REPEAT = int(os.environ.get("REPRO_BENCH_SHARD_REPEAT", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SHARD_MIN_SPEEDUP", "2.0"))
MAX_OVERFETCH = float(os.environ.get("REPRO_BENCH_SHARD_MAX_OVERFETCH", "2.5"))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"


def best_of(callable_, repeat: int = REPEAT) -> float:
    best = float("inf")
    for _ in range(max(1, repeat)):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def run_scenario(name, data, repulsive, attractive, workload, partitioner):
    flat = SDIndex.build(data, repulsive=repulsive, attractive=attractive)
    sharded = SDIndex.build_sharded(
        data,
        repulsive=repulsive,
        attractive=attractive,
        num_shards=NUM_SHARDS,
        partitioner=partitioner,
    )
    # Warm both paths (session construction, first-touch allocations).
    flat.batch_query(workload)
    sharded.batch_query(workload)

    expected = flat.batch_query(workload)
    answered = sharded.batch_query(workload)
    identical = all(
        mine.row_ids == theirs.row_ids and mine.scores == theirs.scores
        for mine, theirs in zip(answered, expected)
    )

    flat_seconds = best_of(lambda: flat.batch_query(workload))
    shard_seconds = best_of(lambda: sharded.batch_query(workload))
    stats = dict(sharded.serve_stats)
    sharded.close()
    return {
        "scenario": name,
        "partitioner": partitioner,
        "num_points": len(data),
        "num_queries": len(workload),
        "num_shards": NUM_SHARDS,
        "flat_seconds": flat_seconds,
        "sharded_seconds": shard_seconds,
        "flat_queries_per_second": len(workload) / flat_seconds,
        "sharded_queries_per_second": len(workload) / shard_seconds,
        "speedup": flat_seconds / shard_seconds,
        "bit_identical": identical,
        "flat_candidates_per_query": (
            sum(r.candidates_examined for r in expected) / len(workload)
        ),
        "sharded_candidates_per_query": (
            sum(r.candidates_examined for r in answered) / len(workload)
        ),
        "overfetch_ratio": (
            sum(r.candidates_examined for r in answered)
            / max(1, sum(r.candidates_examined for r in expected))
        ),
        "probes": stats["probes"],
        "probes_pruned": stats["pruned"],
        "rounds": stats["rounds"],
    }


def main() -> int:
    print(
        f"sharded serving benchmark: {NUM_POINTS} points, "
        f"{NUM_QUERIES} queries, {NUM_SHARDS} shards"
    )

    # Headline: the paper's Table 1 shape with library-sampled queries.
    chembl = generate_chembl_like(max(1000, NUM_POINTS), seed=7).matrix
    rng = np.random.default_rng(1)
    points = chembl[rng.integers(0, len(chembl), size=NUM_QUERIES)]
    chembl_workload = BatchWorkload(
        points=points,
        ks=rng.choice(np.asarray([1, 10]), size=NUM_QUERIES),
        alphas=rng.uniform(0.05, 1.0, size=(NUM_QUERIES, 1)),
        betas=rng.uniform(0.05, 1.0, size=(NUM_QUERIES, 1)),
        repulsive=(1,),
        attractive=(0,),
        description="query molecules sampled from the library",
        seed=1,
    )
    headline = run_scenario(
        "chembl_serving", chembl, (1,), (0,), chembl_workload, "range"
    )

    # Adversarial floor: uniform data, both partitioners (reported, not gated).
    uniform = generate_dataset("uniform", NUM_POINTS, 4, seed=0).matrix
    uniform_workload = build_workload(
        "sharded_serving", (0, 1), (2, 3),
        num_queries=NUM_QUERIES, num_dims=4, seed=1,
    )
    secondary = [
        run_scenario("uniform", uniform, (0, 1), (2, 3), uniform_workload, part)
        for part in ("range", "hash")
    ]

    payload = {
        "benchmark": "sharded_serving",
        "headline": headline,
        "secondary": secondary,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for point in [headline, *secondary]:
        print(
            f"{point['scenario']:>15}/{point['partitioner']:<5} "
            f"flat {point['flat_seconds']:.3f}s  sharded {point['sharded_seconds']:.3f}s  "
            f"speedup {point['speedup']:.2f}x  pruned {point['probes_pruned']}"
            f"/{point['probes'] + point['probes_pruned']} probes  "
            f"over-fetch {point['overfetch_ratio']:.2f}x  "
            f"bit-identical: {point['bit_identical']}"
        )
    print(f"wrote {OUTPUT}")

    if not all(p["bit_identical"] for p in [headline, *secondary]):
        print("FAIL: sharded answers differ from the single-session engine",
              file=sys.stderr)
        return 1
    if headline["speedup"] < MIN_SPEEDUP:
        print(
            f"FAIL: headline speedup {headline['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP:g}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    if MAX_OVERFETCH > 0 and headline["overfetch_ratio"] > MAX_OVERFETCH:
        print(
            f"FAIL: sharded engine over-fetches {headline['overfetch_ratio']:.2f}x "
            f"the single-session candidates per query (bar: {MAX_OVERFETCH:g}x) — "
            "a cross-shard bound regression",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
