#!/usr/bin/env python3
"""Concurrent serving benchmark: epoch snapshots vs a coarse global lock.

The scenario the epoch subsystem (DESIGN.md section 6) exists for: several
reader threads answer batched SD-Query traffic while writer threads apply
inserts and deletes to the same sharded engine.  Two concurrency designs are
measured on identical workloads:

* **snapshot** — the default ``concurrency="snapshot"`` engine: every serving
  call pins an immutable epoch cut and runs lock-free; writers prepare
  copy-on-write successors and publish them atomically.  Readers overlap each
  other (the numpy kernels release the GIL) and never wait for writers.
* **coarse-lock** — the design snapshots replace: one global mutex around
  every read and write (the engine runs ``concurrency="unsafe"``, which is
  sound under the global lock and gives the baseline the cheaper in-place
  write path).  Readers serialize behind each other and stall whenever a
  writer holds the lock.

Two scenarios, both at the serve-while-mutate contract:

* **Throughput mixes** — write mixes of 0%, 10% and 50% (single-row updates
  as a fraction of single queries served).  Readers draw batch calls from a
  shared quota while writers drain the update script; wall time until both
  finish gives queries/sec.  Reader *parallelism* is what snapshots unlock
  here, so the speedup over the coarse lock scales with available cores (on
  a single-core host the two designs are CPU-conserving and land near 1x).
* **Maintenance latency** — readers serve continuously while a writer runs
  insert bursts followed by full ``rebalance()`` passes (the realistic
  companion of a skewed write mix).  Under the coarse lock every reader
  stalls for the entire rebalance, so tail latency explodes to the rebalance
  duration; epoch snapshots pin lock-free and keep serving the pre-rebalance
  topology, so the p95 read latency stays at the normal batch cost on any
  core count.  This is the number the epoch design is *for*.

The headline "snapshot vs coarse-lock at the 10% write mix" gate uses the
throughput speedup when more than one core is available and the p95-latency
improvement otherwise (reported either way in the JSON).  Before any timing,
both engines must agree bit-identically on the read batch, and after every
storm the snapshot engine's epochs must have drained (no leaks under load).

Run with::

    PYTHONPATH=src python benchmarks/bench_concurrent.py

Knobs (environment): ``REPRO_BENCH_CONCURRENT_POINTS`` (dataset size, default
60000), ``REPRO_BENCH_CONCURRENT_QUERIES`` (queries per batch call, default
32), ``REPRO_BENCH_CONCURRENT_BATCHES`` (batch calls per run, default 48),
``REPRO_BENCH_CONCURRENT_READERS`` (reader threads, default 4),
``REPRO_BENCH_CONCURRENT_WRITERS`` (writer threads, default 2),
``REPRO_BENCH_CONCURRENT_SHARDS`` (default 4), ``REPRO_BENCH_CONCURRENT_REPEAT``
(best-of repetitions, default 2), ``REPRO_BENCH_CONCURRENT_CYCLES``
(maintenance rebalance cycles, default 2), ``REPRO_BENCH_CONCURRENT_MIN_SPEEDUP``
(exit-1 bar on the headline 10%-mix speedup, default 1.5; set to 0 on noisy
shared runners to gate on correctness only).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.sharding import ShardedIndex  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402
from repro.workloads.registry import build_workload  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_CONCURRENT_POINTS", "60000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_CONCURRENT_QUERIES", "32"))
NUM_BATCHES = int(os.environ.get("REPRO_BENCH_CONCURRENT_BATCHES", "48"))
NUM_READERS = int(os.environ.get("REPRO_BENCH_CONCURRENT_READERS", "4"))
NUM_WRITERS = int(os.environ.get("REPRO_BENCH_CONCURRENT_WRITERS", "2"))
NUM_SHARDS = int(os.environ.get("REPRO_BENCH_CONCURRENT_SHARDS", "4"))
REPEAT = int(os.environ.get("REPRO_BENCH_CONCURRENT_REPEAT", "2"))
MAINT_CYCLES = int(os.environ.get("REPRO_BENCH_CONCURRENT_CYCLES", "2"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_CONCURRENT_MIN_SPEEDUP", "1.5"))
WRITE_MIXES = (0.0, 0.1, 0.5)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_concurrent.json"

try:
    EFFECTIVE_CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux hosts
    EFFECTIVE_CORES = os.cpu_count() or 1

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4


class CoarseLockEngine:
    """One global mutex around every operation — the baseline design."""

    def __init__(self, inner: ShardedIndex) -> None:
        self._inner = inner
        self._lock = threading.Lock()

    def batch_query(self, *args, **kwargs):
        with self._lock:
            return self._inner.batch_query(*args, **kwargs)

    def insert(self, *args, **kwargs):
        with self._lock:
            return self._inner.insert(*args, **kwargs)

    def delete(self, *args, **kwargs):
        with self._lock:
            return self._inner.delete(*args, **kwargs)

    def rebalance(self):
        with self._lock:
            return self._inner.rebalance()

    def close(self) -> None:
        self._inner.close()


def build_engine(data: np.ndarray, concurrency: str) -> ShardedIndex:
    return ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=NUM_SHARDS,
        partitioner="range",
        concurrency=concurrency,
    )


def run_storm(engine, reads, script) -> Tuple[float, float]:
    """Readers drain the batch quota while writers drain the update script.

    Returns ``(read_seconds, total_seconds)``: serve throughput is reads
    completed over *read* wall time — writes keep landing throughout, but a
    writer still flushing its tail after the last read answered is not read
    latency.
    """
    batches = list(range(NUM_BATCHES))
    batch_lock = threading.Lock()
    errors = []
    reads_done = threading.Event()
    active_readers = [NUM_READERS]
    barrier = threading.Barrier(NUM_READERS + (NUM_WRITERS if script else 0) + 1)

    def reader() -> None:
        try:
            barrier.wait()
            while True:
                with batch_lock:
                    if not batches:
                        break
                    batches.pop()
                engine.batch_query(reads)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            with batch_lock:
                active_readers[0] -= 1
                if active_readers[0] == 0:
                    reads_done.set()

    def writer(ops) -> None:
        try:
            barrier.wait()
            for op, row, point in ops:
                if op == "insert":
                    engine.insert(point, row_id=row)
                else:
                    engine.delete(row)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(NUM_READERS)]
    if script:
        for w in range(NUM_WRITERS):
            threads.append(
                threading.Thread(target=writer, args=(script[w::NUM_WRITERS],))
            )
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    reads_done.wait()
    read_seconds = time.perf_counter() - started
    for thread in threads:
        thread.join()
    total_seconds = time.perf_counter() - started
    if errors:
        raise errors[0]
    return read_seconds, total_seconds


def run_maintenance_latency(concurrency: str, data, reads, script) -> dict:
    """Per-read latency while a writer runs insert bursts + full rebalances."""
    inner = build_engine(data, concurrency)
    engine = inner if concurrency == "snapshot" else CoarseLockEngine(inner)
    engine.batch_query(reads)  # warm sessions
    latencies = []
    lat_lock = threading.Lock()
    done = threading.Event()
    errors = []
    barrier = threading.Barrier(NUM_READERS + 2)

    def maintainer() -> None:
        try:
            barrier.wait()
            position = 0
            for _cycle in range(MAINT_CYCLES):
                for op, row, point in script[position : position + 40]:
                    if op == "insert":
                        engine.insert(point, row_id=row)
                    else:
                        engine.delete(row)
                position += 40
                engine.rebalance()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            done.set()

    def reader() -> None:
        try:
            barrier.wait()
            while not done.is_set():
                started = time.perf_counter()
                engine.batch_query(reads)
                with lat_lock:
                    latencies.append(time.perf_counter() - started)
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(NUM_READERS)]
    threads.append(threading.Thread(target=maintainer))
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    engine.close()
    if errors:
        raise errors[0]
    ordered = np.sort(np.asarray(latencies))
    return {
        "reads": len(ordered),
        "wall_seconds": elapsed,
        "p50_seconds": float(np.quantile(ordered, 0.5)),
        "p95_seconds": float(np.quantile(ordered, 0.95)),
        "max_seconds": float(ordered[-1]),
    }


def measure(concurrency: str, data, reads, scripts) -> dict:
    """Throughput of one engine design across the write mixes."""
    results = {}
    for mix in WRITE_MIXES:
        best = float("inf")
        best_total = float("inf")
        for repetition in range(max(1, REPEAT)):
            inner = build_engine(data, concurrency)
            engine = inner if concurrency == "snapshot" else CoarseLockEngine(inner)
            engine.batch_query(reads)  # warm sessions before the clock starts
            read_seconds, total_seconds = run_storm(engine, reads, scripts[mix])
            if concurrency == "snapshot":
                report = inner._topology.leak_report()
                assert report["pinned_readers"] == 0 and report["live_epochs"] == 1
                for shard in inner._shards:
                    shard_report = shard.serving_session().epochs.leak_report()
                    assert shard_report["pinned_readers"] == 0
            engine.close()
            best = min(best, read_seconds)
            best_total = min(best_total, total_seconds)
        queries = NUM_BATCHES * NUM_QUERIES
        results[mix] = {
            "seconds": best,
            "total_seconds": best_total,
            "queries_per_second": queries / best,
            "writes": len(scripts[mix]),
        }
    return results


def main() -> int:
    print(
        f"concurrent serving benchmark: {NUM_POINTS} points, {NUM_BATCHES} batches "
        f"x {NUM_QUERIES} queries, {NUM_READERS} readers / {NUM_WRITERS} writers, "
        f"{NUM_SHARDS} shards"
    )
    data = generate_dataset("uniform", NUM_POINTS, NUM_DIMS, seed=3).matrix
    total_queries = NUM_BATCHES * NUM_QUERIES
    scripts = {}
    for mix in WRITE_MIXES:
        writes = int(round(mix / (1.0 - mix) * total_queries)) if mix else 0
        workload = build_workload(
            "concurrent_serving",
            REPULSIVE,
            ATTRACTIVE,
            num_queries=NUM_QUERIES,
            num_updates=max(writes, 1),
            num_dims=NUM_DIMS,
            seed=11,
        )
        scripts[mix] = workload.script(range(NUM_POINTS))[:writes]
    reads = workload.reads

    # Correctness gate: both designs answer the read batch bit-identically on
    # the static dataset before any clocks run.
    snapshot_engine = build_engine(data, "snapshot")
    locked_engine = build_engine(data, "unsafe")
    expected = locked_engine.batch_query(reads)
    answered = snapshot_engine.batch_query(reads)
    identical = all(
        mine.row_ids == theirs.row_ids and mine.scores == theirs.scores
        for mine, theirs in zip(answered, expected)
    )
    # ...and a snapshot pinned mid-write keeps matching its frozen oracle.
    from repro.baselines import SequentialScan

    with snapshot_engine.snapshot() as snap:
        frozen_rows, frozen_matrix = snap.frozen()
        for op, row, point in scripts[0.5][:50] or scripts[0.1][:50]:
            if op == "insert":
                snapshot_engine.insert(point, row_id=row)
            else:
                snapshot_engine.delete(row)
        pinned = snap.batch_query(reads)
    oracle = SequentialScan(
        frozen_matrix, REPULSIVE, ATTRACTIVE,
        row_ids=[int(r) for r in frozen_rows],
    ).batch_query(reads)
    snapshot_isolated = all(
        mine.row_ids == theirs.row_ids and mine.scores == theirs.scores
        for mine, theirs in zip(pinned, oracle)
    )
    snapshot_engine.close()
    locked_engine.close()

    snapshot = measure("snapshot", data, reads, scripts)
    coarse = measure("unsafe", data, reads, scripts)

    mixes = []
    for mix in WRITE_MIXES:
        speedup = coarse[mix]["seconds"] / snapshot[mix]["seconds"]
        mixes.append(
            {
                "write_mix": mix,
                "writes": snapshot[mix]["writes"],
                "snapshot_seconds": snapshot[mix]["seconds"],
                "coarse_lock_seconds": coarse[mix]["seconds"],
                "snapshot_queries_per_second": snapshot[mix]["queries_per_second"],
                "coarse_lock_queries_per_second": coarse[mix]["queries_per_second"],
                "speedup": speedup,
            }
        )

    # Maintenance-latency scenario: the 10% mix's realistic companion (skewed
    # writes force rebalances); measures what readers experience meanwhile.
    maintenance_script = scripts[0.1] or scripts[0.5]
    latency_snapshot = run_maintenance_latency(
        "snapshot", data, reads, maintenance_script
    )
    latency_coarse = run_maintenance_latency(
        "unsafe", data, reads, maintenance_script
    )
    latency_ratio = latency_coarse["p95_seconds"] / latency_snapshot["p95_seconds"]

    throughput_10 = next(p for p in mixes if p["write_mix"] == 0.1)
    if EFFECTIVE_CORES > 1:
        headline_metric = "throughput_queries_per_second"
        headline_speedup = throughput_10["speedup"]
    else:
        # One core conserves CPU-bound throughput across designs; what the
        # epochs buy there is the read tail under writer critical sections.
        headline_metric = "p95_read_latency_improvement"
        headline_speedup = latency_ratio

    payload = {
        "benchmark": "concurrent_serving",
        "num_points": NUM_POINTS,
        "num_queries_per_batch": NUM_QUERIES,
        "num_batches": NUM_BATCHES,
        "num_readers": NUM_READERS,
        "num_writers": NUM_WRITERS,
        "num_shards": NUM_SHARDS,
        "effective_cores": EFFECTIVE_CORES,
        "bit_identical": identical,
        "snapshot_isolated": snapshot_isolated,
        "mixes": mixes,
        "maintenance_latency": {
            "rebalance_cycles": MAINT_CYCLES,
            "snapshot": latency_snapshot,
            "coarse_lock": latency_coarse,
            "p95_improvement": latency_ratio,
            # The flip side: under the coarse lock the maintainer also starves
            # behind reader lock holders, so the same maintenance takes this
            # many times longer to complete than with lock-free readers.
            "maintenance_wall_improvement": latency_coarse["wall_seconds"]
            / latency_snapshot["wall_seconds"],
        },
        "headline": {
            "write_mix": 0.1,
            "metric": headline_metric,
            "speedup": headline_speedup,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    for point in mixes:
        print(
            f"write mix {point['write_mix']:>4.0%} ({point['writes']:>4} writes): "
            f"snapshot {point['snapshot_queries_per_second']:>8.0f} q/s  "
            f"coarse-lock {point['coarse_lock_queries_per_second']:>8.0f} q/s  "
            f"speedup {point['speedup']:.2f}x"
        )
    print(
        f"maintenance latency (p95): snapshot {latency_snapshot['p95_seconds']*1e3:.0f}ms  "
        f"coarse-lock {latency_coarse['p95_seconds']*1e3:.0f}ms  "
        f"improvement {latency_ratio:.1f}x "
        f"(max stall {latency_coarse['max_seconds']:.2f}s vs "
        f"{latency_snapshot['max_seconds']:.2f}s; maintenance completed "
        f"{latency_coarse['wall_seconds'] / latency_snapshot['wall_seconds']:.1f}x "
        f"faster without the lock)"
    )
    print(
        f"bit-identical: {identical}  snapshot-isolated: {snapshot_isolated}  "
        f"cores: {EFFECTIVE_CORES}  headline ({headline_metric}): "
        f"{headline_speedup:.2f}x"
    )
    print(f"wrote {OUTPUT}")

    if not identical or not snapshot_isolated:
        print("FAIL: correctness gate failed", file=sys.stderr)
        return 1
    if headline_speedup < MIN_SPEEDUP:
        print(
            f"FAIL: 10%-mix headline speedup {headline_speedup:.2f}x "
            f"({headline_metric}) below the {MIN_SPEEDUP:g}x acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
