#!/usr/bin/env python3
"""LSM maintenance benchmark: layered write path vs the reflatten baseline.

Drives the registered ``write_heavy`` workload's deterministic update script
through two flat indexes over the same seeded uniform dataset:

* ``compaction="size_tiered"`` (the default): bounded mutable delta over
  immutable levels, flushes and tier merges in place of any stop-the-world
  rebuild;
* ``compaction="legacy"``: the in-place splice session that reflattens the
  whole world once garbage crosses its threshold.

Per-update wall times are recorded individually, so the legacy engine's
reflatten spikes land in its tail latency rather than vanishing into a mean.
After the stream, both engines answer the workload's read batch and must be
bit-identical to a sequential-scan oracle over the surviving population, the
LSM engine must have performed zero reflattens, and its epoch manager must
hold exactly one live epoch with no pinned readers.  A trajectory point goes
to ``BENCH_lsm.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_lsm.py

Knobs (environment): ``REPRO_BENCH_LSM_POINTS`` (dataset size, default
10000), ``REPRO_BENCH_LSM_UPDATES`` (update-script length, default 10000 —
long enough that the legacy baseline's deletes cross its garbage threshold
and it really reflattens), ``REPRO_BENCH_LSM_QUERIES`` (read batch, default
16),
``REPRO_BENCH_LSM_MIN_P95_IMPROVEMENT`` (exit-1 bar on legacy-p95 /
lsm-p95, default 2.0; set to 0 on noisy shared runners to gate on the
deterministic checks only).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines import SequentialScan  # noqa: E402
from repro.core.sdindex import SDIndex  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402
from repro.workloads.registry import build_workload  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_LSM_POINTS", "10000"))
NUM_UPDATES = int(os.environ.get("REPRO_BENCH_LSM_UPDATES", "10000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_LSM_QUERIES", "16"))
MIN_P95_IMPROVEMENT = float(
    os.environ.get("REPRO_BENCH_LSM_MIN_P95_IMPROVEMENT", "2.0")
)
REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_lsm.json"


def run_engine(data, script, workload, compaction: str):
    """Apply the update script, timing each op; return (stats, answers)."""
    index = SDIndex.build(
        data, repulsive=REPULSIVE, attractive=ATTRACTIVE, compaction=compaction
    )
    # Materialize the serving session so updates exercise the publish path
    # (sessions are created lazily on first read).
    index.batch_query(workload.reads)
    latencies = np.empty(len(script), dtype=float)
    for i, (op, row, point) in enumerate(script):
        started = time.perf_counter()
        if op == "insert":
            index.insert(point, row_id=row)
        else:
            index.delete(row)
        latencies[i] = time.perf_counter() - started
    index.quiesce_maintenance()
    answers = index.batch_query(workload.reads)
    counters = index.maintenance_stats()
    session = index._aggregator.serving_session()
    stats = {
        "write_p50_us": float(np.percentile(latencies, 50) * 1e6),
        "write_p95_us": float(np.percentile(latencies, 95) * 1e6),
        "write_p99_us": float(np.percentile(latencies, 99) * 1e6),
        "write_max_us": float(latencies.max() * 1e6),
        "reflattens": counters["reflattens"],
        "maintenance": counters,
        "live_epochs": counters["epochs_live"],
        "pinned_readers": session.epochs.pinned_readers,
    }
    return stats, answers


def main() -> int:
    print(
        f"dataset: uniform, {NUM_POINTS} points, 4 dims; "
        f"{NUM_UPDATES} updates then {NUM_QUERIES} reads"
    )
    data = generate_dataset("uniform", NUM_POINTS, 4, seed=0).matrix
    workload = build_workload(
        "write_heavy",
        REPULSIVE,
        ATTRACTIVE,
        num_queries=NUM_QUERIES,
        num_updates=NUM_UPDATES,
        num_dims=4,
        seed=1,
    )
    script = workload.script(range(NUM_POINTS))

    lsm_stats, lsm_answers = run_engine(data, script, workload, "size_tiered")
    legacy_stats, legacy_answers = run_engine(data, script, workload, "legacy")

    # Oracle over the surviving population after the full script.
    store = {row: data[row] for row in range(NUM_POINTS)}
    for op, row, point in script:
        if op == "insert":
            store[row] = np.asarray(point, dtype=float)
        else:
            del store[row]
    rows = sorted(store)
    oracle = SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    expected = oracle.batch_query(workload.reads)
    identical = all(
        got.row_ids == want.row_ids and got.scores == want.scores
        for answers in (lsm_answers, legacy_answers)
        for got, want in zip(answers, expected)
    )

    improvement = legacy_stats["write_p95_us"] / max(
        lsm_stats["write_p95_us"], 1e-9
    )
    point = {
        "benchmark": "lsm_maintenance",
        "distribution": "uniform",
        "num_points": NUM_POINTS,
        "num_dims": 4,
        "repulsive": list(REPULSIVE),
        "attractive": list(ATTRACTIVE),
        "num_updates": NUM_UPDATES,
        "num_queries": NUM_QUERIES,
        "lsm": lsm_stats,
        "legacy": legacy_stats,
        "p95_improvement": improvement,
        "bit_identical": identical,
        # Layered-vs-flat verification cost: the LSM world's bound-ordered
        # source visitation and pooled sample thresholds must keep its
        # candidate fetches close to the single flat session's.
        "lsm_candidates_per_query": (
            sum(r.candidates_examined for r in lsm_answers)
            / max(1, len(lsm_answers))
        ),
        "flat_candidates_per_query": (
            sum(r.candidates_examined for r in legacy_answers)
            / max(1, len(legacy_answers))
        ),
        "overfetch_ratio": (
            sum(r.candidates_examined for r in lsm_answers)
            / max(1, sum(r.candidates_examined for r in legacy_answers))
        ),
    }
    OUTPUT.write_text(json.dumps(point, indent=2) + "\n")

    maint = lsm_stats["maintenance"]
    print(
        f"lsm:    p50 {lsm_stats['write_p50_us']:.0f}us  "
        f"p95 {lsm_stats['write_p95_us']:.0f}us  "
        f"max {lsm_stats['write_max_us']:.0f}us  "
        f"({maint['flushes']} flushes, {maint['compactions']} compactions, "
        f"{maint['levels']} levels, {lsm_stats['reflattens']} reflattens)"
    )
    print(
        f"legacy: p50 {legacy_stats['write_p50_us']:.0f}us  "
        f"p95 {legacy_stats['write_p95_us']:.0f}us  "
        f"max {legacy_stats['write_max_us']:.0f}us  "
        f"({legacy_stats['reflattens']} reflattens)"
    )
    print(f"p95 improvement: {improvement:.1f}x   bit-identical: {identical}   "
          f"over-fetch {point['overfetch_ratio']:.2f}x")
    print(f"wrote {OUTPUT}")

    if not identical:
        print(
            "FAIL: layered answers differ from the oracle or the legacy path",
            file=sys.stderr,
        )
        return 1
    if lsm_stats["reflattens"] != 0:
        print(
            f"FAIL: the default write path reflattened "
            f"{lsm_stats['reflattens']} time(s) — the LSM engine must never "
            "rebuild stop-the-world",
            file=sys.stderr,
        )
        return 1
    if lsm_stats["live_epochs"] != 1 or lsm_stats["pinned_readers"] != 0:
        print(
            f"FAIL: leaked epochs after quiesce: "
            f"{lsm_stats['live_epochs']} live, "
            f"{lsm_stats['pinned_readers']} pinned readers",
            file=sys.stderr,
        )
        return 1
    if improvement < MIN_P95_IMPROVEMENT:
        print(
            f"FAIL: write-path p95 only {improvement:.1f}x better than the "
            f"reflatten baseline (bar: {MIN_P95_IMPROVEMENT:g}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
