#!/usr/bin/env python3
"""Single-query benchmark: the flattened-array fast path vs the legacy traversal.

Builds the SD-Index over a 50k-point uniform dataset (paper-style roles: two
repulsive, two attractive dimensions) and answers 100 mixed-k queries one at a
time through both engines:

* ``engine="legacy"`` — the per-stream threshold aggregation (the oracle), and
* ``engine="fast"`` (the default) — the vectorized filter-and-verify kernels
  over the cached, incrementally maintained query session.

The two must be bit-identical (same row ids, exactly equal float scores).  A
second phase interleaves >= 1,000 inserts/deletes with fast queries and asserts
the serving session is patched in place the whole time — zero reflattens —
while answers stay bit-identical to the legacy path.  Writes a trajectory
point to ``BENCH_single.json``.

Run with::

    PYTHONPATH=src python benchmarks/bench_single.py

Knobs (environment): ``REPRO_BENCH_SINGLE_POINTS`` (dataset size, default
50000), ``REPRO_BENCH_SINGLE_QUERIES`` (query count, default 100),
``REPRO_BENCH_SINGLE_REPEAT`` (timing repetitions, default 3, best-of),
``REPRO_BENCH_SINGLE_UPDATES`` (interleaved updates, default 1000),
``REPRO_BENCH_SINGLE_MIN_SPEEDUP`` (exit-1 bar, default 5.0; set to 0 on noisy
shared runners to gate on correctness only),
``REPRO_BENCH_SINGLE_MAX_OVERFETCH`` (exit-1 bar on the fast-vs-legacy
candidates-per-query ratio, default 2.5 — deterministic; the single-query
fast path runs through the same cached session as the batch engine, so it
must inherit the tightened verification bounds, not just the batch path).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core.sdindex import SDIndex  # noqa: E402
from repro.data.generators import generate_dataset  # noqa: E402
from repro.workloads.registry import build_workload  # noqa: E402

NUM_POINTS = int(os.environ.get("REPRO_BENCH_SINGLE_POINTS", "50000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_SINGLE_QUERIES", "100"))
REPEAT = int(os.environ.get("REPRO_BENCH_SINGLE_REPEAT", "3"))
NUM_UPDATES = int(os.environ.get("REPRO_BENCH_SINGLE_UPDATES", "1000"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SINGLE_MIN_SPEEDUP", "5.0"))
MAX_OVERFETCH = float(os.environ.get("REPRO_BENCH_SINGLE_MAX_OVERFETCH", "2.5"))
REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_single.json"


def _bit_identical(mine, theirs) -> bool:
    return all(
        a.row_ids == b.row_ids and a.scores == b.scores
        for a, b in zip(mine, theirs)
    )


def main() -> int:
    print(f"dataset: uniform, {NUM_POINTS} points, 4 dims; "
          f"{NUM_QUERIES} single queries (mixed k); {NUM_UPDATES} interleaved updates")
    data = generate_dataset("uniform", NUM_POINTS, 4, seed=0).matrix
    build_started = time.perf_counter()
    index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    build_seconds = time.perf_counter() - build_started
    workload = build_workload(
        "batch_serving", REPULSIVE, ATTRACTIVE,
        num_queries=NUM_QUERIES, num_dims=4, seed=1,
    )
    queries = workload.queries()

    # Warm both engines (the fast path lazily builds the serving session here).
    index.query(queries[0], engine="legacy")
    index.query(queries[0])

    legacy_seconds = float("inf")
    legacy = None
    for _ in range(max(1, REPEAT)):
        started = time.perf_counter()
        answers = [index.query(query, engine="legacy") for query in queries]
        legacy_seconds = min(legacy_seconds, time.perf_counter() - started)
        legacy = answers

    fast_seconds = float("inf")
    fast = None
    for _ in range(max(1, REPEAT)):
        started = time.perf_counter()
        answers = [index.query(query) for query in queries]
        fast_seconds = min(fast_seconds, time.perf_counter() - started)
        fast = answers

    identical = _bit_identical(fast, legacy)
    speedup = legacy_seconds / fast_seconds

    # ------------------------------------------------- update-interleaved phase
    session = index.query_session()
    reflattens_before = session.reflattens
    rng = np.random.default_rng(2)
    deletable = list(
        rng.choice(NUM_POINTS, size=min(NUM_UPDATES, NUM_POINTS), replace=False)
    )
    interleaved_query_seconds = 0.0
    interleaved_queries = 0
    update_started = time.perf_counter()
    for step in range(NUM_UPDATES):
        if step % 2 == 0:
            index.insert(rng.random(4))
        else:
            index.delete(int(deletable.pop()))
        if step % 25 == 0:
            query = queries[step % NUM_QUERIES]
            q_started = time.perf_counter()
            index.query(query)
            interleaved_query_seconds += time.perf_counter() - q_started
            interleaved_queries += 1
    update_seconds = (time.perf_counter() - update_started) - interleaved_query_seconds
    session_survived = session.reflattens == reflattens_before

    # Post-churn verification: the patched session still matches the oracle.
    post_fast = [index.query(query) for query in queries[:20]]
    post_legacy = [index.query(query, engine="legacy") for query in queries[:20]]
    churn_identical = _bit_identical(post_fast, post_legacy)

    point = {
        "benchmark": "single_query",
        "distribution": "uniform",
        "num_points": NUM_POINTS,
        "num_dims": 4,
        "repulsive": list(REPULSIVE),
        "attractive": list(ATTRACTIVE),
        "num_queries": NUM_QUERIES,
        "k_choices": sorted(set(int(k) for k in workload.ks)),
        "build_seconds": build_seconds,
        "legacy_seconds": legacy_seconds,
        "fast_seconds": fast_seconds,
        "legacy_ms_per_query": 1000.0 * legacy_seconds / NUM_QUERIES,
        "fast_ms_per_query": 1000.0 * fast_seconds / NUM_QUERIES,
        "speedup": speedup,
        "bit_identical": identical,
        "fast_candidates_per_query": (
            sum(result.candidates_examined for result in fast) / NUM_QUERIES
        ),
        "legacy_candidates_per_query": (
            sum(result.candidates_examined for result in legacy) / NUM_QUERIES
        ),
        "overfetch_ratio": (
            sum(result.candidates_examined for result in fast)
            / max(1, sum(result.candidates_examined for result in legacy))
        ),
        "updates": {
            "num_updates": NUM_UPDATES,
            "updates_per_second": NUM_UPDATES / update_seconds,
            "interleaved_query_ms": (
                1000.0 * interleaved_query_seconds / max(interleaved_queries, 1)
            ),
            "session_survived": session_survived,
            "session_reflattens": session.reflattens,
            "bit_identical_after_churn": churn_identical,
            "maintenance": session.maintenance_stats(),
        },
    }
    OUTPUT.write_text(json.dumps(point, indent=2) + "\n")

    print(f"legacy: {legacy_seconds:.3f}s ({point['legacy_ms_per_query']:.2f} ms/query, "
          f"{point['legacy_candidates_per_query']:.0f} cand/query)")
    print(f"fast:   {fast_seconds:.3f}s ({point['fast_ms_per_query']:.2f} ms/query, "
          f"{point['fast_candidates_per_query']:.0f} cand/query)")
    print(f"speedup: {speedup:.1f}x   bit-identical: {identical}   "
          f"over-fetch: {point['overfetch_ratio']:.2f}x")
    print(f"updates: {point['updates']['updates_per_second']:.0f}/s over {NUM_UPDATES} "
          f"interleaved, session survived: {session_survived} "
          f"(reflattens={session.reflattens}), "
          f"bit-identical after churn: {churn_identical}")
    print(f"wrote {OUTPUT}")

    if not identical or not churn_identical:
        print("FAIL: fast-path answers differ from the legacy oracle", file=sys.stderr)
        return 1
    if not session_survived:
        print("FAIL: the serving session reflattened during the update phase",
              file=sys.stderr)
        return 1
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.1f}x below the {MIN_SPEEDUP:g}x acceptance bar",
              file=sys.stderr)
        return 1
    if MAX_OVERFETCH > 0 and point["overfetch_ratio"] > MAX_OVERFETCH:
        print(
            f"FAIL: fast path over-fetches {point['overfetch_ratio']:.2f}x the "
            f"legacy candidates per query (bar: {MAX_OVERFETCH:g}x) — "
            "a verification-bound regression",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
