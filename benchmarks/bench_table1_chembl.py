"""Table 1: the qualitative ChEMBL-like experiment as a benchmark.

The measured call runs the four top-k queries of Table 1 (k = 10, 50, 100, 200)
against the synthetic molecular library; the resulting per-k averages are
attached to the benchmark's ``extra_info`` so a benchmark run doubles as a
regeneration of the table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_SCALE
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.data.chembl import generate_chembl_like, paper_query_molecule

K_VALUES = (10, 50, 100, 200)
NUM_MOLECULES = max(20_000, int(428_913 * min(BENCH_SCALE * 6, 1.0)))


@pytest.fixture(scope="module")
def chembl_setup():
    dataset = generate_chembl_like(num_molecules=NUM_MOLECULES, seed=7)
    mw_dim = dataset.column_index("molecular_weight")
    drug_dim = dataset.column_index("drug_likeness")
    index = SDIndex.build(dataset.matrix, repulsive=[mw_dim], attractive=[drug_dim])
    return dataset, index, paper_query_molecule(dataset), mw_dim, drug_dim


def test_table1_chembl_queries(benchmark, chembl_setup):
    dataset, index, query_point, mw_dim, drug_dim = chembl_setup
    psa_dim = dataset.column_index("polar_surface_area")

    def run_table():
        rows = {}
        for k in K_VALUES:
            query = SDQuery.simple(query_point, repulsive=[mw_dim], attractive=[drug_dim], k=k)
            result = index.query(query)
            answers = dataset.matrix[result.row_ids]
            rows[k] = {
                "drug_likeness": float(answers[:, drug_dim].mean()),
                "molecular_weight": float(answers[:, mw_dim].mean()),
                "polar_surface_area": float(answers[:, psa_dim].mean()),
            }
        return rows

    rows = benchmark(run_table)
    benchmark.group = "table1-chembl"
    benchmark.extra_info.update({
        "table": "1",
        "num_molecules": NUM_MOLECULES,
        "overall_mw": float(dataset.column("molecular_weight").mean()),
        "overall_drug_likeness": float(dataset.column("drug_likeness").mean()),
        "overall_psa": float(dataset.column("polar_surface_area").mean()),
        "measured_rows": rows,
    })
    # Qualitative assertions from the paper.
    overall_mw = dataset.column("molecular_weight").mean()
    overall_psa = dataset.column("polar_surface_area").mean()
    for k, values in rows.items():
        assert values["molecular_weight"] > 1.5 * overall_mw
        assert values["polar_surface_area"] < 0.7 * overall_psa
