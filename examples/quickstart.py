#!/usr/bin/env python3
"""Quickstart: build an SD-Index and answer a few SD-Queries.

The SD-Query asks for points that are *similar* to the query on the attractive
dimensions and *distant* from it on the repulsive dimensions — the scoring
function of Ranu & Singh (VLDB 2011).  This script builds the index over a small
synthetic dataset, runs a query, compares the answer against a brute-force scan,
and shows the runtime knobs (k and weights) in action.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SDIndex, SDQuery, sd_score
from repro.baselines import SequentialScan


def main() -> None:
    rng = np.random.default_rng(42)

    # A dataset of 20,000 points with four dimensions.  We will treat the first
    # two dimensions as repulsive (we want results far from the query there) and
    # the last two as attractive (we want results close to the query there).
    data = rng.random((20_000, 4))
    repulsive = [0, 1]
    attractive = [2, 3]

    print("Building the SD-Index ...")
    index = SDIndex.build(data, repulsive=repulsive, attractive=attractive)
    stats = index.stats()
    print(f"  indexed {stats.num_points} points, "
          f"{stats.num_angles} projection angles, "
          f"~{stats.memory_mb:.1f} MB\n")

    # --- a first query --------------------------------------------------------
    query_point = data[17]  # use an existing point as the query object
    query = SDQuery.simple(query_point, repulsive, attractive, k=5)
    result = index.query(query)

    print("Top-5 answers for an unweighted query on point #17:")
    for match in result:
        print(f"  row {match.row_id:>6}  score={match.score:+.4f}  point={np.round(match.point, 3)}")
    print(f"  (examined {result.candidates_examined} candidates "
          f"out of {len(data)} points)\n")

    # --- verify against the exact sequential scan -----------------------------
    oracle = SequentialScan(data, repulsive, attractive).query(query)
    assert result.same_scores(oracle), "index answer differs from the exact scan!"
    print("The answer matches an exact sequential scan.\n")

    # --- runtime weights -------------------------------------------------------
    # Emphasize the first repulsive dimension 5x: results should now be points
    # that differ from the query mostly along dimension 0.
    weighted = index.query(query_point, k=5, alpha=[5.0, 1.0], beta=[1.0, 1.0])
    print("Top-5 with alpha = [5, 1] (dimension 0 dominates the 'distance' reward):")
    for match in weighted:
        delta = np.abs(np.array(match.point) - query_point)
        print(f"  row {match.row_id:>6}  score={match.score:+.4f}  |delta|={np.round(delta, 3)}")
    print()

    # --- scores are exactly Equation 3 ----------------------------------------
    first = weighted[0]
    recomputed = sd_score(first.point, query.with_weights([5.0, 1.0], [1.0, 1.0]))
    print(f"Recomputing the best score by hand: {recomputed:+.4f} "
          f"(matches {first.score:+.4f})")

    # --- batch serving ----------------------------------------------------------
    # A serving tier rarely answers one query at a time.  batch_query takes an
    # (m, d) array of query points plus per-query k and weights, shares the
    # index traversal between queries and scores candidates in vectorized
    # kernels — with answers bit-identical to the one-at-a-time path.
    import time

    batch_points = rng.random((50, 4))
    batch_ks = rng.integers(1, 11, size=50)          # mixed per-query k
    batch_alpha = rng.uniform(0.2, 2.0, size=(50, 2))  # per-query weights
    batch_beta = rng.uniform(0.2, 2.0, size=(50, 2))

    started = time.perf_counter()
    batch = index.batch_query(batch_points, k=batch_ks,
                              alpha=batch_alpha, beta=batch_beta)
    batch_seconds = time.perf_counter() - started

    started = time.perf_counter()
    loop = [
        index.query(batch_points[j], k=int(batch_ks[j]),
                    alpha=batch_alpha[j], beta=batch_beta[j])
        for j in range(50)
    ]
    loop_seconds = time.perf_counter() - started

    assert all(b.row_ids == s.row_ids and b.scores == s.scores
               for b, s in zip(batch, loop))
    print(f"Batch of 50 queries: {1000 * batch_seconds:.1f} ms batched vs "
          f"{1000 * loop_seconds:.1f} ms looped "
          f"({loop_seconds / batch_seconds:.1f}x faster, identical answers)")
    print(f"Query 0 asked k={batch_ks[0]} and got rows {batch[0].row_ids}\n")

    # --- the index is dynamic ---------------------------------------------------
    new_point = query_point.copy()
    new_point[0] += 3.0  # far away on the repulsive dimension, identical elsewhere
    row = index.insert(new_point)
    after = index.query(query)
    print(f"\nAfter inserting a tailor-made point (row {row}), the new top-1 is row "
          f"{after[0].row_id} with score {after[0].score:+.4f}")
    index.delete(row)
    print("...and deleting it restores the original answer:",
          index.query(query)[0].row_id == result[0].row_id)

    # --- the cached query session survives updates ------------------------------
    # Every query above ran on the same *cached session*: the projection trees
    # flattened into numpy arrays, built lazily on the first query.  Updates do
    # not invalidate it — inserts are appended to the covering leaf (loosening
    # only that leaf's bounds), deletes are tombstoned in a validity mask — so
    # serving keeps its speed across churn.  bulk_insert/bulk_delete apply one
    # vectorized patch for a whole burst.
    session = index.query_session()
    burst = rng.random((500, 4))
    burst_rows = index.bulk_insert(burst)
    index.bulk_delete(burst_rows[:250])
    stats = session.maintenance_stats()
    print(f"\nSession after a 500-insert / 250-delete burst: "
          f"{stats['patched_inserts']} inserts and {stats['patched_deletes']} deletes "
          f"patched in place, {stats['reflattens']} reflattens")

    # The session reflattens itself only once garbage + appended rows exceed a
    # quarter of the live points (the projection tree's own rebuild policy) —
    # lazily, on the next query.  Force it eagerly from a maintenance window:
    index.refresh_session()
    print("After refresh_session():", session.maintenance_stats())

    # Cleanup, and the answers still match the legacy traversal bit for bit.
    index.bulk_delete(burst_rows[250:])
    fast = index.query(query)
    legacy = index.query(query, engine="legacy")
    print("Fast path == legacy oracle after all the churn:",
          fast.scores == legacy.scores and fast.row_ids == legacy.row_ids)

    # --- scale out: the sharded serving engine ----------------------------------
    # Past a few hundred thousand points (or under an insert storm) one flat
    # view becomes the bottleneck.  build_sharded partitions the rows across
    # independent shards — each with its own trees, columns and maintained
    # session — and serves queries by probing shards in upper-bound order,
    # skipping shards that provably cannot contribute.  Answers stay
    # bit-identical to the unsharded index.  partitioner="range" splits on the
    # first attractive dimension (locality makes whole shards prunable);
    # partitioner="hash" is the uniform default.
    from repro.serving import ResiliencePolicy, RetryPolicy

    sharded = SDIndex.build_sharded(
        data, repulsive=repulsive, attractive=attractive,
        num_shards=4, partitioner="range", rebalance_threshold=1.2,
        # Fault-domain config for the killed-shard demo further down: bounded
        # retries, per-shard circuit breakers, degrade instead of failing.
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, base_backoff=0.001, seed=1),
            failure_threshold=3, reset_timeout=0.05, degrade=True,
        ),
    )
    sharded_batch = sharded.batch_query(batch_points, k=batch_ks,
                                        alpha=batch_alpha, beta=batch_beta)
    assert all(b.row_ids == s.row_ids and b.scores == s.scores
               for b, s in zip(sharded_batch, batch))
    print(f"\nSharded engine: {sharded.num_shards} shards of sizes "
          f"{sharded.shard_sizes()}, answers identical to the flat index; "
          f"last batch pruned {sharded.serve_stats['pruned']} of "
          f"{sharded.serve_stats['pruned'] + sharded.serve_stats['probes']} "
          f"shard probes")

    # Shards stay balanced under skewed churn: rebalance() re-partitions the
    # live rows (quantile refit for range layouts) without changing any answer.
    sharded.bulk_insert(np.column_stack([rng.random((3000, 2)),
                                         0.95 + 0.05 * rng.random((3000, 2))]))
    print(f"Skew after a hot-range burst: {sharded.skew():.2f}; "
          f"rebalanced: {sharded.maybe_rebalance()}; "
          f"skew now {sharded.skew():.2f}")

    # --- serve while mutating: epoch snapshots ----------------------------------
    # Every engine defaults to concurrency="snapshot" (DESIGN.md section 6):
    # reads pin an immutable epoch, writers publish copy-on-write successors,
    # so reader threads stay correct while writer threads insert, delete and
    # even rebalance.  snapshot() exposes the same mechanism explicitly as a
    # repeatable-read view — pin it, and the answers cannot move under you.
    probe = batch_points[:8]
    with sharded.snapshot() as snap:
        pinned_before = snap.batch_query(probe, k=3)
        # A write storm lands *while the snapshot is open*...
        storm_rows = sharded.bulk_insert(rng.random((2000, 4)))
        sharded.rebalance()
        pinned_after = snap.batch_query(probe, k=3)
        # ...and the pinned view does not move: same rows, bit-equal scores.
        assert all(a.row_ids == b.row_ids and a.scores == b.scores
                   for a, b in zip(pinned_before, pinned_after))
        print(f"\nSnapshot pinned epoch v{snap.topology_version}: answers "
              f"unchanged through a 2000-row storm + rebalance "
              f"(now serving {len(sharded)} rows live, {len(snap)} pinned)")
    # Fresh reads see the new data the moment the snapshot is released.
    fresh = sharded.batch_query(probe, k=3)
    moved = sum(1 for a, b in zip(pinned_before, fresh)
                if a.row_ids != b.row_ids)
    print(f"After release, {moved}/8 probe answers changed — live reads see "
          f"the storm immediately")
    sharded.bulk_delete(storm_rows)

    # --- kill a shard: breakers, retries and graceful degradation ---------------
    # Production shards fail.  The fault plane (repro.faults, DESIGN.md
    # section 9) injects a seeded storm on one shard's probes; the resilience
    # policy above retries transient faults, trips that shard's circuit
    # breaker, and — rather than failing the query — returns a *degraded*
    # answer that says exactly what it might be missing: every returned score
    # is exact, and no missing row can beat ``coverage.score_bound``.
    from repro import faults

    storm = faults.FaultPlane(
        [faults.FaultRule("shard.probe", action="raise", rate=1.0, key=1)],
        seed=7,
    )
    with faults.fault_plane(storm):
        survived = sharded.query(query_point, k=5)
    cov = survived.coverage
    print(f"\nShard 1 down hard: the query still answered, degraded="
          f"{survived.degraded}, covered {cov.covered_fraction:.0%} of shards "
          f"(skipped {[s for s, _ in cov.skipped]}), any missing row scores "
          f"<= {cov.score_bound:+.4f}")
    print(f"breaker states: "
          f"{ {b['name']: b['state'] for b in sharded.breaker_stats()} }")
    # Once the storm passes the breaker's reset timeout lets a trial probe
    # through, the shard heals, and answers are full-coverage again —
    # bit-identical to the healthy engine.
    time.sleep(0.06)
    healed = sharded.query(query_point, k=5)
    print(f"after the storm: degraded={healed.degraded}, answers match the "
          f"healthy engine:", healed.scores == sharded.query(query_point, k=5).scores)

    sharded.close()

    # --- persistence: snapshots, a write-ahead log and crash recovery -----------
    # Until now everything lived in process memory: a restart meant rebuilding
    # from the raw dataset and losing every update.  save()/load() write and
    # restore a versioned, checksummed snapshot of the serving state (DESIGN.md
    # section 7); load(mmap=True) memory-maps the arrays, so the warm start is
    # near-instant — the expensive projection trees are rebuilt lazily, only
    # when maintenance first needs them.
    import shutil
    import tempfile
    from pathlib import Path

    from repro import DurableIndex

    workdir = Path(tempfile.mkdtemp(prefix="sdindex-persist-"))
    started = time.perf_counter()
    index.save(workdir / "snapshot")
    save_seconds = time.perf_counter() - started
    started = time.perf_counter()
    warm = SDIndex.load(workdir / "snapshot", mmap=True)
    load_seconds = time.perf_counter() - started
    reloaded = warm.query(query)
    print(f"\nSnapshot saved in {1000 * save_seconds:.0f} ms, mmap-loaded in "
          f"{1000 * load_seconds:.0f} ms; answers identical:",
          reloaded.scores == index.query(query).scores)

    # Between snapshots, DurableIndex journals every mutation in a write-ahead
    # log (fsync-on-commit by default): recover() loads the last checkpoint and
    # replays the log tail, so no acknowledged write is ever lost — the core of
    # the crash-recovery contract the crash-injection test harness enforces.
    durable = DurableIndex.create(warm, workdir / "durable")
    hot_row = durable.insert(new_point)          # applied, journaled, then acked
    durable.checkpoint()                         # streamed while writers run
    durable.delete(hot_row)                      # lands in the WAL tail
    durable.close()                              # "crash" (nothing flushed ahead)
    recovered = DurableIndex.recover(workdir / "durable")
    print(f"Recovered from checkpoint + {recovered.last_recovery['replayed']} "
          f"replayed WAL record(s); the post-checkpoint delete survived:",
          recovered.query(query).row_ids == index.query(query).row_ids)
    recovered.close()
    shutil.rmtree(workdir)

    # --- serve it: the asyncio coalescing front end ------------------------------
    # A service answers *single* queries from many concurrent clients, not
    # prepared batches.  SDQueryServer (DESIGN.md section 8) micro-batches
    # requests that arrive within one tick into a single epoch-pinned
    # batch_query, rate-limits per tenant, and caches results per
    # (query, epoch) — over plain HTTP/1.1 + JSON, stdlib only.
    import asyncio

    from repro.serving import SDQueryServer, ServingClient, ServingConfig

    async def serve_and_query() -> None:
        config = ServingConfig(tick_seconds=0.002, rate=40.0, burst=8.0)
        async with SDQueryServer(index, config) as server:
            host, port = await server.start()
            print(f"\nServing the index at http://{host}:{port}")

            async def one_client(name: str, count: int):
                async with ServingClient(host, port) as client:
                    answers = []
                    for j in range(count):
                        status, payload = await client.query(
                            batch_points[j], k=3, tenant=name)
                        answers.append((status, payload))
                    return answers

            # Ten concurrent clients, five requests each, all in one burst:
            # the tick coalesces them into a handful of pinned batches.
            results = await asyncio.gather(
                *(one_client(f"client-{c}", 5) for c in range(10)))
            statuses = [s for answers in results for s, _ in answers]
            sizes = server.coalescer.stats()["batch_size_histogram"]
            print(f"50 requests from 10 clients -> all {statuses.count(200)} "
                  f"answered 200; coalesced batch sizes {sizes}")

            # Identical repeats hit the (query, epoch) cache until an update
            # publishes a new epoch — then they miss, with zero coordination.
            async with ServingClient(host, port) as client:
                _, fresh = await client.query(batch_points[0], k=3)
                _, repeat = await client.query(batch_points[0], k=3)
                row = index.insert(rng.random(4))  # publishes a new epoch
                _, after = await client.query(batch_points[0], k=3)
                index.delete(row)
                print(f"repeat served from cache: {repeat['cached']}; "
                      f"after an insert (epoch {fresh['epoch']} -> "
                      f"{after['epoch']}): {after['cached']}")

                # One greedy tenant runs into the token bucket: a typed 429
                # with Retry-After, costing the server no kernel time.
                rejected = 0
                for _ in range(40):
                    status, _ = await client.query(
                        batch_points[1], k=1, tenant="greedy")
                    rejected += status == 429
                print(f"greedy tenant: {rejected}/40 rejected with 429 "
                      f"(everyone else unaffected)")

        report = index.query_session().epochs.leak_report()
        print(f"server closed cleanly: {report['pinned_readers']} pinned "
              f"readers left")

    asyncio.run(serve_and_query())


if __name__ == "__main__":
    main()
