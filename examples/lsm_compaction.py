#!/usr/bin/env python3
"""LSM maintenance quickstart: serve exact answers through a compaction storm.

The default SD-Index session is LSM-structured (DESIGN.md section 11): writes
append to a small mutable delta, a background compactor folds full deltas into
immutable levels and merges levels tier by tier, and every structure change is
one atomic epoch publication — so readers never wait on maintenance and the
write path never stops the world to reflatten.

This script builds an index with deliberately aggressive maintenance knobs,
hammers it with an insert/delete storm from a writer thread while the main
thread keeps serving queries, and shows that

* every answer during the storm is bit-identical to a brute-force scan of a
  pinned snapshot (exactness is never traded for availability),
* read latency stays flat while flushes and tier merges churn underneath,
* the structure the storm leaves behind is a handful of bounded levels, not
  one monolithic rebuild.

Run with:  PYTHONPATH=src python examples/lsm_compaction.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import SDIndex, SDQuery
from repro.baselines import SequentialScan

REPULSIVE = [0, 1]
ATTRACTIVE = [2, 3]


def main() -> None:
    rng = np.random.default_rng(42)
    data = rng.random((20_000, 4))

    print("Building the SD-Index (LSM maintenance, background compaction) ...")
    index = SDIndex.build(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        # Tiny flush/fanout so the 60k-update storm below produces hundreds
        # of flushes and dozens of tier merges in a few seconds.  Production
        # defaults are flush_rows=256, fanout=4.
        flush_rows=64,
        fanout=2,
        background_compaction=True,
    )
    print(f"  compaction policy: {index.compaction}\n")

    # --- the write storm ------------------------------------------------------
    storm_rounds = 300
    stop = threading.Event()
    storm_error: list[BaseException] = []

    def write_storm() -> None:
        storm_rng = np.random.default_rng(7)
        next_row = len(data)
        try:
            for _ in range(storm_rounds):
                if stop.is_set():
                    return
                burst = storm_rng.random((100, 4))
                ids = index.bulk_insert(burst)
                # Delete most of the burst again: delta-absorbed deletes plus
                # level tombstones, the traffic shape compaction exists for.
                index.bulk_delete(ids[: 80])
                next_row += len(ids)
        except BaseException as error:  # surfaced after the join
            storm_error.append(error)

    writer = threading.Thread(target=write_storm, name="write-storm")

    # --- serve while it rages -------------------------------------------------
    query = SDQuery.simple(data[17], REPULSIVE, ATTRACTIVE, k=10)
    latencies = []
    checked = 0

    print(f"Serving queries while {storm_rounds * 100} inserts and "
          f"{storm_rounds * 80} deletes land ...")
    writer.start()
    while writer.is_alive():
        started = time.perf_counter()
        result = index.query(query)
        latencies.append(time.perf_counter() - started)

        # Every 25th read, verify exactness against a brute-force scan of a
        # pinned snapshot — the snapshot holds one epoch still, so the scan
        # and the indexed answer see the same world even mid-flush.
        if len(latencies) % 25 == 0:
            with index.snapshot() as snapshot:
                rows, matrix = snapshot.frozen()
                oracle = SequentialScan(
                    matrix, REPULSIVE, ATTRACTIVE, row_ids=rows
                ).query(query)
                pinned = snapshot.query(query)
            assert pinned.same_scores(oracle), "answer diverged mid-storm!"
            checked += 1
    writer.join()
    if storm_error:
        raise storm_error[0]

    # Join any still-running compactor, then force the remaining backlog
    # through so the final structure below is quiescent.
    index.quiesce_maintenance()
    index.lsm_maintain()

    # --- what the storm left behind -------------------------------------------
    stats = index.maintenance_stats()
    lat_ms = 1000.0 * np.asarray(latencies)
    print(f"\nServed {len(latencies)} queries during the storm "
          f"({checked} spot-checked against the exact scan):")
    print(f"  read latency p50 {np.percentile(lat_ms, 50):.2f} ms, "
          f"p95 {np.percentile(lat_ms, 95):.2f} ms, "
          f"max {lat_ms.max():.2f} ms")
    print(f"  {stats['flushes']} delta flushes, "
          f"{stats['compactions']} tier merges, "
          f"{stats['reflattens']} stop-the-world reflattens")
    print(f"  final structure: {stats['levels']} level(s), "
          f"{stats['delta_live']} rows still in the delta, "
          f"{stats['live_rows']} rows live\n")

    # --- and the answers are still exact --------------------------------------
    with index.snapshot() as snapshot:
        rows, matrix = snapshot.frozen()
        oracle = SequentialScan(matrix, REPULSIVE, ATTRACTIVE, row_ids=rows)
        final = index.query(query)
        assert final.same_scores(oracle.query(query))
    print("Final answer matches the exact sequential scan. "
          "Maintenance never cost a single wrong result.")


if __name__ == "__main__":
    main()
