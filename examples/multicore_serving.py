#!/usr/bin/env python3
"""Multi-core serving quickstart: one worker process per shard.

`ProcessShardedIndex` serves SD-Queries from a fleet of worker processes,
each holding one shard's snapshot mmap'd read-only — so shard probes run on
separate cores instead of serializing on one interpreter's GIL.  Writers go
through the coordinator's write-ahead log; workers catch up by replaying
the log tail, and answers stay bit-identical to a single flat index the
whole way.  This script walks the life cycle: build, serve, write, kill a
worker (the answer degrades explicitly instead of failing), heal, and
serve over HTTP with ``backend="process"``.

Run with:  PYTHONPATH=src python examples/multicore_serving.py
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import numpy as np

from repro.baselines import SequentialScan
from repro.core.procserving import ProcessShardedIndex
from repro.core.sharding import ShardedIndex
from repro.serving.breaker import ResiliencePolicy
from repro.serving.server import SDQueryServer, ServingClient, ServingConfig

REPULSIVE = [0, 1]
ATTRACTIVE = [2, 3]


def main() -> None:
    rng = np.random.default_rng(42)
    data = rng.random((20_000, 4))
    query_point = data[17]

    print(f"Spawning a {min(4, os.cpu_count() or 1)}-worker fleet "
          f"({os.cpu_count()} core(s) on this host) ...")
    engine = ProcessShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=min(4, os.cpu_count() or 1),
        # Worker death: degrade the answer and open the shard's breaker
        # (recovering after reset_timeout) rather than retrying into a corpse.
        resilience=ResiliencePolicy(retry=None, failure_threshold=1,
                                    reset_timeout=0.5),
    )
    try:
        # --- serve, and verify against the exact scan -------------------------
        result = engine.query(query_point, k=5)
        from repro import SDQuery

        oracle = SequentialScan(data, REPULSIVE, ATTRACTIVE).query(
            SDQuery.simple(query_point, REPULSIVE, ATTRACTIVE, k=5)
        )
        assert result.row_ids == oracle.row_ids
        assert result.scores == oracle.scores  # bit-identical, not approximate
        print("Top-5 from the worker fleet (bit-identical to the exact scan):")
        for match in result:
            print(f"  row {match.row_id:>6}  score={match.score:+.4f}")

        # --- writes flow through the WAL; workers replay the tail -------------
        engine.insert(query_point * 0.5 + 0.25, row_id=50_000)
        engine.bulk_insert(rng.random((100, 4)))
        print(f"\nAfter 101 writes the fleet serves {len(engine)} rows "
              f"(WAL lsn {engine.end_lsn}); checkpoint flips the epoch ...")
        engine.checkpoint()  # snapshot + WAL rotation, broadcast to workers

        # --- kill a worker: explicit degradation, then self-healing -----------
        victim = engine.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        degraded = engine.query(query_point, k=5)
        print(f"\nSIGKILL'd worker {victim}: degraded={degraded.degraded}, "
              f"coverage={degraded.coverage}")
        engine.await_workers(30.0)  # respawn + WAL-tail catch-up
        time.sleep(0.6)  # let the shard's breaker half-open
        healed = engine.query(query_point, k=5)
        print(f"Healed: degraded={healed.degraded}, "
              f"answers match the oracle again: "
              f"{healed.row_ids == oracle.row_ids and not healed.degraded}")
    finally:
        engine.close()

    # --- the HTTP front end owns a process fleet of its own -------------------
    async def serve_http() -> None:
        inner = ShardedIndex(
            data, repulsive=REPULSIVE, attractive=ATTRACTIVE, num_shards=2
        )
        config = ServingConfig(backend="process", tick_seconds=None,
                               coalesce=False)
        async with SDQueryServer(inner, config) as server:
            host, port = await server.start()
            async with ServingClient(host, port) as client:
                status, payload = await client.query(query_point, k=3)
                print(f"\nHTTP backend=\"process\": {status} -> "
                      f"rows {payload['row_ids']} (epoch {payload['epoch']})")

    asyncio.run(serve_http())


if __name__ == "__main__":
    main()
