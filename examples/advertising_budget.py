#!/usr/bin/env python3
"""Online-advertising scenario: cheap publishers with premium-like hit rates.

This is the paper's motivating example (Section 1): an advertiser looks for
publishers whose *hit rate* is similar to that of a premium publisher but whose
*cost per impression* is much lower.  Hit rate is therefore an attractive
dimension and cost a repulsive one — a query no monotonic top-k function can
express.

The script generates a synthetic publisher market with a realistic positive
price/quality correlation plus a small set of "hidden gems", runs the SD-Query
against a premium reference publisher, and contrasts the answer with what a
plain nearest-neighbour (pure similarity) query would return.

Run with:  python examples/advertising_budget.py
"""

from __future__ import annotations

import numpy as np

from repro import SDIndex, SDQuery
from repro.data.dataset import Dataset

NUM_PUBLISHERS = 50_000
COLUMNS = ("cost_per_impression", "hit_rate", "coverage")


def build_market(seed: int = 3) -> Dataset:
    """A synthetic publisher market: cost correlates with hit rate, plus hidden gems."""
    rng = np.random.default_rng(seed)
    num_gems = NUM_PUBLISHERS // 200

    # Ordinary publishers: hit rate mostly explained by price.
    cost = rng.gamma(shape=3.0, scale=1.4, size=NUM_PUBLISHERS - num_gems)  # dollars CPM
    hit_rate = np.clip(0.8 + 0.55 * cost + rng.normal(0, 0.6, size=cost.shape), 0.05, None)
    coverage = np.clip(rng.normal(55, 18, size=cost.shape), 1, 100)

    # Hidden gems: premium-level hit rates at a fraction of the price.
    gem_cost = rng.uniform(0.8, 2.5, size=num_gems)
    gem_hit_rate = rng.uniform(6.0, 9.0, size=num_gems)
    gem_coverage = np.clip(rng.normal(40, 10, size=num_gems), 1, 100)

    matrix = np.column_stack([
        np.concatenate([cost, gem_cost]),
        np.concatenate([hit_rate, gem_hit_rate]),
        np.concatenate([coverage, gem_coverage]),
    ])
    return Dataset(matrix=matrix, columns=COLUMNS, name="publisher-market")


def main() -> None:
    market = build_market()
    cost_dim = market.column_index("cost_per_impression")
    hit_dim = market.column_index("hit_rate")

    # The reference publisher: expensive and effective (a "top publisher").
    premium = np.array([
        np.percentile(market.column("cost_per_impression"), 99.5),
        np.percentile(market.column("hit_rate"), 99.5),
        80.0,
    ])
    print("Premium reference publisher:")
    print(f"  cost per impression: ${premium[cost_dim]:.2f}")
    print(f"  hit rate:            {premium[hit_dim]:.2f}%\n")

    index = SDIndex.build(market.matrix, repulsive=[cost_dim], attractive=[hit_dim])

    # Cost is repulsive (cheaper-is-better relative to the premium price),
    # hit rate is attractive (as close to premium as possible).  The weights
    # balance the very different numeric ranges of the two columns.
    query = SDQuery.simple(
        point=premium,
        repulsive=[cost_dim],
        attractive=[hit_dim],
        k=10,
        alpha=[1.0],
        beta=[2.5],
    )
    result = index.query(query)

    print("SD-Query: publishers with premium-like hit rates that are much cheaper")
    print(f"{'rank':>4} {'cost ($)':>9} {'hit rate':>9} {'coverage':>9} {'score':>9}")
    for rank, match in enumerate(result, start=1):
        cost, hit, coverage = match.point
        print(f"{rank:>4} {cost:>9.2f} {hit:>9.2f} {coverage:>9.1f} {match.score:>9.3f}")

    savings = premium[cost_dim] - np.mean([m.point[cost_dim] for m in result])
    print(f"\nAverage saving versus the premium publisher: ${savings:.2f} per impression")

    # Contrast: a pure similarity query (both dimensions attractive) just finds
    # other premium publishers — expensive ones.
    similarity_query = SDQuery.simple(
        point=premium, repulsive=[], attractive=[cost_dim, hit_dim], k=10, beta=[1.0, 2.5]
    )
    similar_index = SDIndex.build(market.matrix, repulsive=[], attractive=[cost_dim, hit_dim])
    similar = similar_index.query(similarity_query)
    avg_cost_similar = np.mean([m.point[cost_dim] for m in similar])
    avg_cost_sd = np.mean([m.point[cost_dim] for m in result])
    print("\nPlain similarity query instead returns publishers costing "
          f"${avg_cost_similar:.2f} on average (SD-Query: ${avg_cost_sd:.2f}).")


if __name__ == "__main__":
    main()
