#!/usr/bin/env python3
"""Scaffold hopping: structurally different molecules with similar activity.

The second motivating application in the paper's introduction comes from
chemoinformatics: given a query molecule, find molecules whose *binding activity*
profile is similar (attractive dimensions) but whose *structure* is different
(repulsive dimensions).  That is how medicinal chemists escape a patented or
toxic chemical scaffold while keeping the pharmacology.

This script builds a synthetic virtual-screening library in which each molecule
has two structural descriptors and two activity descriptors, with a small family
of molecules engineered to share the query's activity profile while sitting far
away in structure space.  The SD-Query surfaces exactly that family; a plain
similarity search returns near-identical scaffolds instead.

Run with:  python examples/scaffold_hopping.py
"""

from __future__ import annotations

import numpy as np

from repro import SDIndex, SDQuery
from repro.data.dataset import Dataset

COLUMNS = (
    "scaffold_pc1",       # structure descriptor (repulsive)
    "scaffold_pc2",       # structure descriptor (repulsive)
    "activity_target_a",  # binding activity (attractive)
    "activity_target_b",  # binding activity (attractive)
)


def build_library(num_molecules: int = 40_000, seed: int = 11) -> Dataset:
    rng = np.random.default_rng(seed)

    # The bulk of the library: activity loosely follows structure (similar
    # scaffolds tend to have similar activity), which is what makes naive
    # similarity search return me-too molecules.
    scaffold = rng.normal(0.0, 1.0, size=(num_molecules, 2))
    activity = 0.6 * scaffold + rng.normal(0.0, 0.5, size=(num_molecules, 2))

    # A small family of "scaffold hops": far away in structure space but with
    # activity close to the reference molecule's profile (defined in main()).
    num_hops = num_molecules // 400
    hop_scaffold = rng.normal(0.0, 1.0, size=(num_hops, 2))
    hop_scaffold += np.sign(hop_scaffold) * 3.0  # push them to the structural fringe
    hop_activity = np.array([1.2, -0.8]) + rng.normal(0.0, 0.1, size=(num_hops, 2))

    matrix = np.column_stack([
        np.vstack([scaffold, hop_scaffold]),
        np.vstack([activity, hop_activity]),
    ])
    return Dataset(matrix=matrix, columns=COLUMNS, name="virtual-screening-library")


def main() -> None:
    library = build_library()
    structure_dims = [0, 1]
    activity_dims = [2, 3]

    # The reference (query) molecule: a known active compound.
    reference = np.array([0.9, -0.6, 1.2, -0.8])
    print("Reference molecule:")
    print(f"  structure descriptors: {reference[:2]}")
    print(f"  activity profile:      {reference[2:]}\n")

    index = SDIndex.build(library.matrix, repulsive=structure_dims, attractive=activity_dims)

    query = SDQuery.simple(
        point=reference,
        repulsive=structure_dims,
        attractive=activity_dims,
        k=10,
        alpha=[1.0, 1.0],
        beta=[3.0, 3.0],  # activity similarity matters more than structural novelty
    )
    hops = index.query(query)

    print("Scaffold-hopping SD-Query (similar activity, different structure):")
    print(f"{'rank':>4} {'struct dist':>12} {'activity dist':>14} {'score':>9}")
    for rank, match in enumerate(hops, start=1):
        point = np.array(match.point)
        struct_dist = np.abs(point[:2] - reference[:2]).sum()
        act_dist = np.abs(point[2:] - reference[2:]).sum()
        print(f"{rank:>4} {struct_dist:>12.3f} {act_dist:>14.3f} {match.score:>9.3f}")

    # Baseline for contrast: treat every dimension as attractive (pure similarity).
    similarity_index = SDIndex.build(
        library.matrix, repulsive=[], attractive=structure_dims + activity_dims
    )
    nearest = similarity_index.query(
        SDQuery.simple(reference, [], structure_dims + activity_dims, k=10)
    )

    def average_structural_distance(result):
        return float(np.mean([
            np.abs(np.array(m.point)[:2] - reference[:2]).sum() for m in result
        ]))

    print("\nAverage structural distance of the answers:")
    print(f"  SD-Query (scaffold hopping): {average_structural_distance(hops):.3f}")
    print(f"  plain similarity search:     {average_structural_distance(nearest):.3f}")
    print("\nThe SD-Query keeps the activity profile while leaving the original scaffold;")
    print("the similarity search stays glued to the reference structure.")


if __name__ == "__main__":
    main()
