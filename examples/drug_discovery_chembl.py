#!/usr/bin/env python3
"""Drug discovery: overweight molecules that are still drug-like (Table 1 scenario).

This example reproduces the paper's qualitative study (Section 6.3) end to end on
the synthetic ChEMBL-like library: query for molecules *similar in drug-likeness*
to a good, light compound but *distant in molecular weight*, and inspect what the
answers look like.  The headline observation of the paper — the heavy molecules
that remain drug-like have conspicuously low polar surface area (PSA) — emerges
from the answer sets.

Run with:  python examples/drug_discovery_chembl.py
"""

from __future__ import annotations

import numpy as np

from repro import SDIndex, SDQuery
from repro.data.chembl import generate_chembl_like, paper_query_molecule


def main() -> None:
    library = generate_chembl_like(num_molecules=60_000, seed=7)
    drug_dim = library.column_index("drug_likeness")
    mw_dim = library.column_index("molecular_weight")
    psa_dim = library.column_index("polar_surface_area")

    print(f"Synthetic molecular library: {len(library)} molecules")
    overall = library.describe()
    print("Overall averages:")
    print(f"  drug-likeness:      {overall['drug_likeness']['mean']:.2f}")
    print(f"  molecular weight:   {overall['molecular_weight']['mean']:.1f} Da")
    print(f"  polar surface area: {overall['polar_surface_area']['mean']:.1f} A^2\n")

    # The paper's query molecule: drug-likeness 11 (high), molecular weight 250 (low).
    query_molecule = paper_query_molecule(library)
    index = SDIndex.build(library.matrix, repulsive=[mw_dim], attractive=[drug_dim])

    print("SD-Query: similar drug-likeness, distant molecular weight")
    print(f"{'k':>5} {'avg drug-likeness':>18} {'avg MW (Da)':>12} {'avg PSA':>9}")
    for k in (10, 50, 100, 200):
        query = SDQuery.simple(
            point=query_molecule, repulsive=[mw_dim], attractive=[drug_dim], k=k
        )
        result = index.query(query)
        answers = library.matrix[result.row_ids]
        print(
            f"{k:>5} {answers[:, drug_dim].mean():>18.2f} "
            f"{answers[:, mw_dim].mean():>12.1f} {answers[:, psa_dim].mean():>9.1f}"
        )

    print("\nInterpretation (matches the paper's Table 1):")
    print("  * the answers are roughly twice as heavy as the library average,")
    print("  * yet their drug-likeness is above the library average,")
    print("  * and their polar surface area is far below it — the property that")
    print("    correlates with membrane permeability and oral bioavailability.")
    print("\nA molecule violating the rule-of-five weight filter is therefore not")
    print("necessarily a bad drug candidate; the SD-Query finds those exceptions,")
    print("whereas a pure similarity query on drug-likeness would simply return")
    print("more light molecules.")


if __name__ == "__main__":
    main()
