#!/usr/bin/env python3
"""Regenerate the committed format-v1 golden snapshot fixture.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_golden_snapshot.py

The fixture (``golden_snapshot_v1/``) is a small durable SD-Index — a
checkpointed snapshot plus a WAL tail — written at snapshot format version 1,
together with ``expected.json`` holding the exact (row id, ``float.hex``
score) answers of a fixed query batch.  Every future format version must keep
loading it bit-identically (``tests/golden/test_golden_snapshot.py``); if the
format ever becomes incompatible, add a *new* fixture for the new version and
keep this one loading through the compatibility path.

Only rerun this script to add coverage at the *current* version — never to
"fix" a failing golden test, which signals a real compatibility break.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import numpy as np

from repro.core.persistence import DurableIndex
from repro.core.sdindex import SDIndex

FIXTURE = Path(__file__).resolve().parent / "golden_snapshot_v1"
REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)


def main() -> None:
    rng = np.random.default_rng(20260729)
    data = rng.random((80, 4))
    queries = rng.random((4, 4))

    if FIXTURE.exists():
        shutil.rmtree(FIXTURE)
    index = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    durable = DurableIndex.create(index, FIXTURE / "store")
    for _ in range(10):
        durable.insert(rng.random(4))
    durable.delete(3)
    durable.delete(85)
    durable.checkpoint(extra={"fixture": "golden-v1"})
    # A WAL tail past the checkpoint, so loaders must replay to match.
    for _ in range(5):
        durable.insert(rng.random(4))
    durable.delete(7)
    answers = durable.batch_query(queries, k=5)
    durable.close()

    expected = {
        "queries": [[float(v) for v in q] for q in queries],
        "k": 5,
        "results": [
            [[int(m.row_id), float(m.score).hex()] for m in result.matches]
            for result in answers.results
        ],
    }
    with open(FIXTURE / "expected.json", "w", encoding="utf-8") as handle:
        json.dump(expected, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    main()
