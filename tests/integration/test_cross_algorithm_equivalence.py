"""Integration tests: every algorithm returns score-equivalent answers on shared workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import generate_dataset
from repro.workloads.registry import ALGORITHM_BUILDERS, build_algorithm
from repro.workloads.workload import make_workload
from tests.conftest import assert_same_scores

ALL_METHODS = sorted(ALGORITHM_BUILDERS)


@pytest.mark.parametrize("distribution", ["uniform", "correlated", "anticorrelated", "clustered"])
def test_all_methods_agree_on_2d(distribution):
    dataset = generate_dataset(distribution, 1500, 2, seed=3)
    workload = make_workload([1], [0], num_queries=6, k=5, num_dims=2, seed=9)
    algorithms = {
        name: build_algorithm(name, dataset.matrix, [1], [0]) for name in ALL_METHODS
    }
    for query in workload:
        reference = algorithms["SeqScan"].query(query)
        for name, algorithm in algorithms.items():
            assert_same_scores(algorithm.query(query), reference)


@pytest.mark.parametrize("num_dims,repulsive,attractive", [
    (4, (0, 1), (2, 3)),
    (5, (0, 1, 2), (3, 4)),
    (6, (0, 1, 2), (3, 4, 5)),
])
def test_all_methods_agree_in_higher_dimensions(num_dims, repulsive, attractive):
    dataset = generate_dataset("uniform", 800, num_dims, seed=4)
    workload = make_workload(repulsive, attractive, num_queries=4, k=7,
                             num_dims=num_dims, seed=10)
    algorithms = {
        name: build_algorithm(name, dataset.matrix, repulsive, attractive)
        for name in ALL_METHODS
    }
    for query in workload:
        reference = algorithms["SeqScan"].query(query)
        for name, algorithm in algorithms.items():
            assert_same_scores(algorithm.query(query), reference)


def test_agreement_on_skewed_weights():
    """Extreme weight ratios push the query angle towards 0/90 degrees."""
    dataset = generate_dataset("uniform", 1000, 4, seed=5)
    algorithms = {
        name: build_algorithm(name, dataset.matrix, (0, 1), (2, 3)) for name in ALL_METHODS
    }
    workload = make_workload((0, 1), (2, 3), num_queries=4, k=5, num_dims=4, seed=11,
                             weight_range=(0.001, 1.0))
    for query in workload:
        reference = algorithms["SeqScan"].query(query)
        for name, algorithm in algorithms.items():
            assert_same_scores(algorithm.query(query), reference)


def test_agreement_with_duplicate_heavy_data():
    """Many duplicated points stress tie handling in every algorithm."""
    rng = np.random.default_rng(6)
    base = rng.random((50, 4))
    data = np.vstack([base] * 8)  # 400 points, every one duplicated 8 times
    algorithms = {
        name: build_algorithm(name, data, (0, 1), (2, 3)) for name in ALL_METHODS
    }
    workload = make_workload((0, 1), (2, 3), num_queries=3, k=10, num_dims=4, seed=12)
    for query in workload:
        reference = algorithms["SeqScan"].query(query)
        for name, algorithm in algorithms.items():
            assert_same_scores(algorithm.query(query), reference)


def test_agreement_with_large_k():
    """k comparable to the dataset size must return everything, consistently."""
    dataset = generate_dataset("uniform", 200, 4, seed=8)
    workload = make_workload((0, 1), (2, 3), num_queries=2, k=200, num_dims=4, seed=13)
    algorithms = {
        name: build_algorithm(name, dataset.matrix, (0, 1), (2, 3)) for name in ALL_METHODS
    }
    for query in workload:
        reference = algorithms["SeqScan"].query(query)
        for name, algorithm in algorithms.items():
            result = algorithm.query(query)
            assert len(result) == 200
            assert_same_scores(result, reference)
