"""Crash-injection recovery harness (DESIGN.md section 7).

The recovery invariant under test: after a crash at *any* point —

* a torn WAL tail (the file truncated at every byte boundary of its final
  records),
* a process killed (``os._exit``) at named fault points inside an append or a
  checkpoint, via subprocess drivers,
* a truncated or bit-flipped snapshot array, a missing or mangled manifest —

``DurableIndex.recover`` either yields an engine whose top-k answers are
bit-identical to an uncrashed in-memory oracle that applied exactly the
acknowledged op prefix, or raises the typed ``SnapshotFormatError``.  It must
never silently serve stale or corrupt data.

Everything here carries the ``crash`` marker; CI runs the suite in its own
``recovery`` job under ``PYTHONDEVMODE=1``.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.persistence import (
    CURRENT_NAME,
    WAL_NAME,
    DurableIndex,
    SnapshotFormatError,
)
from repro.core.sdindex import SDIndex
from repro.core.sharding import ShardedIndex

pytestmark = pytest.mark.crash

REPULSIVE = (0, 1)
ATTRACTIVE = (2, 3)
NUM_DIMS = 4
SEED = 2024
INITIAL_ROWS = 250
NUM_OPS = 40


def make_ops(rng, store, count):
    """A deterministic insert/delete script over a tracked population."""
    ops = []
    next_id = max(store) + 1
    live = sorted(store)
    for step in range(count):
        if step % 3 == 2 and len(live) > 1:
            victim = live.pop(int(rng.integers(len(live))))
            ops.append(("delete", victim, None))
        else:
            ops.append(("insert", next_id, rng.random(NUM_DIMS)))
            live.append(next_id)
            next_id += 1
    return ops


def apply_op(engine, op):
    kind, row_id, point = op
    if kind == "insert":
        engine.insert(point, row_id=row_id)
    else:
        engine.delete(row_id)


def oracle_answers(store, ops_applied, queries, k):
    """Answers of an uncrashed oracle that applied exactly ``ops_applied``."""
    population = dict(store)
    for kind, row_id, point in ops_applied:
        if kind == "insert":
            population[row_id] = point
        else:
            del population[row_id]
    rows = sorted(population)
    scan = SequentialScan(
        np.asarray([population[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    return scan.batch_query(queries, k=k)


def assert_bit_identical(expected, got):
    for a, b in zip(expected.results, got.results):
        assert [(m.row_id, m.score) for m in a.matches] == [
            (m.row_id, m.score) for m in b.matches
        ]


@pytest.fixture
def scenario(tmp_path):
    """A durable flat engine with a checkpoint mid-script, closed cleanly."""
    rng = np.random.default_rng(SEED)
    data = rng.random((INITIAL_ROWS, NUM_DIMS))
    store = {row: data[row] for row in range(INITIAL_ROWS)}
    queries = rng.random((6, NUM_DIMS))
    engine = SDIndex.build(data, repulsive=REPULSIVE, attractive=ATTRACTIVE)
    durable = DurableIndex.create(engine, tmp_path / "dur")
    ops = make_ops(rng, store, NUM_OPS)
    for step, op in enumerate(ops):
        apply_op(durable, op)
        if step == NUM_OPS // 2:
            durable.checkpoint()
    durable.wal.sync()
    durable.wal.close()
    return tmp_path / "dur", store, ops, queries


# ------------------------------------------------------------- torn WAL tails
def test_torn_wal_tail_every_byte_boundary(scenario, tmp_path):
    """Truncate the WAL at every byte boundary across its last records.

    Each truncation is one possible crash; recovery must come back exactly
    at the acknowledged prefix the surviving records represent — verified
    bit-identically against the uncrashed oracle of that prefix — and the
    recovered LSN tells us which prefix that is.
    """
    path, store, ops, queries = scenario
    wal_blob = (path / WAL_NAME).read_bytes()
    work = tmp_path / "work"
    # Sweep the tail: every byte boundary of roughly the last three records.
    checkpoint_lsn = NUM_OPS // 2 + 1
    for cut in range(len(wal_blob) - 120, len(wal_blob) + 1):
        if work.exists():
            shutil.rmtree(work)
        shutil.copytree(path, work)
        (work / WAL_NAME).write_bytes(wal_blob[:cut])
        recovered = DurableIndex.recover(work)
        surviving = recovered.last_recovery["recovered_lsn"]
        assert checkpoint_lsn <= surviving <= len(ops)
        expected = oracle_answers(store, ops[:surviving], queries, k=5)
        assert_bit_identical(expected, recovered.batch_query(queries, k=5))
        recovered.close()


def test_flipped_byte_before_tail_is_loud(scenario):
    """Corruption *before* the WAL tail is not a torn write: loud failure."""
    path, _store, _ops, _queries = scenario
    blob = bytearray((path / WAL_NAME).read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    (path / WAL_NAME).write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError):
        DurableIndex.recover(path)


# -------------------------------------------------------- snapshot corruption
def find_array_file(snapshot_dir: Path, name: str) -> Path:
    return snapshot_dir / "arrays" / f"{name}.npy"


def current_snapshot(path: Path) -> Path:
    return path / (path / CURRENT_NAME).read_text().strip()


def test_truncated_snapshot_array(scenario):
    path, _store, _ops, _queries = scenario
    target = find_array_file(current_snapshot(path), "matrix")
    blob = target.read_bytes()
    target.write_bytes(blob[: len(blob) - 64])
    for mmap in (False, True):
        with pytest.raises(SnapshotFormatError, match="truncated"):
            DurableIndex.recover(path, mmap=mmap)


def test_bitflipped_snapshot_array(scenario):
    path, _store, _ops, _queries = scenario
    # "rows" exists in both session layouts (flat and LSM worlds).
    target = find_array_file(current_snapshot(path), "rows")
    blob = bytearray(target.read_bytes())
    blob[-9] ^= 0x40
    target.write_bytes(bytes(blob))
    with pytest.raises(SnapshotFormatError, match="checksum"):
        DurableIndex.recover(path)


def test_missing_manifest(scenario):
    path, _store, _ops, _queries = scenario
    (current_snapshot(path) / "MANIFEST.json").unlink()
    with pytest.raises(SnapshotFormatError, match="manifest"):
        DurableIndex.recover(path)


def test_mangled_manifest_json(scenario):
    path, _store, _ops, _queries = scenario
    manifest = current_snapshot(path) / "MANIFEST.json"
    manifest.write_text(manifest.read_text()[:-40])
    with pytest.raises(SnapshotFormatError, match="manifest"):
        DurableIndex.recover(path)


def test_unknown_format_version(scenario):
    path, _store, _ops, _queries = scenario
    manifest = current_snapshot(path) / "MANIFEST.json"
    payload = json.loads(manifest.read_text())
    payload["format_version"] = 99
    manifest.write_text(json.dumps(payload))
    with pytest.raises(SnapshotFormatError, match="version"):
        DurableIndex.recover(path)


# ----------------------------------------------------------- subprocess kills
DRIVER = textwrap.dedent(
    """
    import os, sys
    import numpy as np
    from repro.core import persistence
    from repro.core.sdindex import SDIndex

    path, fault_point, fault_at = sys.argv[1], sys.argv[2], int(sys.argv[3])
    seen = {"count": 0}

    def hook(point):
        if point == fault_point:
            seen["count"] += 1
            if seen["count"] == fault_at:
                os._exit(1)  # simulated crash: no flush, no cleanup

    rng = np.random.default_rng(7)
    data = rng.random((120, 4))
    engine = SDIndex.build(data, repulsive=(0, 1), attractive=(2, 3))
    durable = persistence.DurableIndex.create(engine, path)
    persistence.install_fault_hook(hook)
    for step in range(30):
        durable.insert(rng.random(4))
        if step == 14:
            durable.checkpoint()
    durable.checkpoint()
    os._exit(0)  # survived every fault point: nothing fired
    """
)

FAULT_POINTS = [
    # Killed inside an append, after the buffered write but before any
    # flush/fsync: the record may or may not reach disk — either way it was
    # never acknowledged, so recovery at the surviving prefix is correct.
    ("wal.append.written", 5),
    ("wal.append.written", 20),
    # Killed streaming the mid-script checkpoint: CURRENT still names the
    # initial snapshot, the full WAL replays over it.
    ("snapshot.array.written", 8),
    # Killed after the new manifest is durable but before CURRENT flips.
    ("snapshot.manifest.written", 2),
    # Killed right before / right after the atomic CURRENT replace.
    ("checkpoint.current.before", 2),
    ("checkpoint.current.written", 2),
]


@pytest.mark.parametrize("fault_point,fault_at", FAULT_POINTS)
def test_subprocess_kill_recovers_exact_prefix(tmp_path, fault_point, fault_at):
    """Kill a real process at a durability boundary; recover and verify.

    The driver applies a deterministic op stream, so the oracle population
    for any acknowledged prefix is reproducible here in the parent.  The
    recovered LSN selects that prefix; answers must match it bit for bit.
    """
    target = tmp_path / "dur"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, "-c", DRIVER, str(target), fault_point, str(fault_at)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1, (
        f"fault point {fault_point!r} never fired: {result.stderr}"
    )

    recovered = DurableIndex.recover(target)
    surviving = recovered.last_recovery["recovered_lsn"]
    # Reconstruct the oracle for the surviving prefix of the driver's stream.
    rng = np.random.default_rng(7)
    data = rng.random((120, 4))
    store = {row: data[row] for row in range(len(data))}
    points = [rng.random(4) for _ in range(30)]
    assert 0 <= surviving <= len(points)
    for step in range(surviving):
        store[len(data) + step] = points[step]
    rows = sorted(store)
    oracle = SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    queries = np.random.default_rng(99).random((5, NUM_DIMS))
    assert_bit_identical(
        oracle.batch_query(queries, k=5), recovered.batch_query(queries, k=5)
    )
    # The recovered store keeps working: one more cycle survives a clean stop.
    recovered.insert(np.full(NUM_DIMS, 0.5), row_id=10_000)
    recovered.checkpoint()
    recovered.close()
    second = DurableIndex.recover(target)
    assert second.point(10_000) is not None
    second.close()


# ------------------------------------------------------------- sharded crash
def test_sharded_torn_tail_recovers_prefix(tmp_path):
    """The same torn-tail sweep on a sharded engine (coarser: record cuts)."""
    rng = np.random.default_rng(31)
    data = rng.random((200, NUM_DIMS))
    store = {row: data[row] for row in range(len(data))}
    queries = rng.random((5, NUM_DIMS))
    engine = ShardedIndex(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        num_shards=2,
        partitioner="range",
    )
    path = tmp_path / "dur"
    durable = DurableIndex.create(engine, path)
    ops = make_ops(rng, store, 20)
    for op in ops:
        apply_op(durable, op)
    durable.wal.sync()
    durable.close()

    blob = (path / WAL_NAME).read_bytes()
    work = tmp_path / "work"
    for cut in (len(blob) - 1, len(blob) - 40, len(blob) - 90):
        if work.exists():
            shutil.rmtree(work)
        shutil.copytree(path, work)
        (work / WAL_NAME).write_bytes(blob[:cut])
        recovered = DurableIndex.recover(work)
        surviving = recovered.last_recovery["recovered_lsn"]
        expected = oracle_answers(store, ops[:surviving], queries, k=5)
        assert_bit_identical(expected, recovered.batch_query(queries, k=5))
        recovered.close()


# ----------------------------------------------------- WAL rotation durability
ROTATE_DRIVER = textwrap.dedent(
    """
    import os, sys
    import numpy as np
    from repro.core import persistence
    from repro.core.sdindex import SDIndex

    path, fault_point = sys.argv[1], sys.argv[2]

    def hook(point):
        if point == fault_point:
            os._exit(1)  # simulated crash mid-rotation: no flush, no cleanup

    rng = np.random.default_rng(11)
    data = rng.random((100, 4))
    engine = SDIndex.build(data, repulsive=(0, 1), attractive=(2, 3))
    durable = persistence.DurableIndex.create(engine, path, fsync="os")
    for _ in range(12):
        durable.insert(rng.random(4))
    persistence.install_fault_hook(hook)
    durable.checkpoint()  # rotates the WAL; the hook kills inside rotate()
    os._exit(0)  # the fault point never fired
    """
)


@pytest.mark.parametrize(
    "fault_point",
    ["wal.rotate.written", "wal.rotate.replaced", "wal.rotate.synced"],
)
def test_rotation_crash_never_resurrects_superseded_tail(tmp_path, fault_point):
    """Kill during/right after WAL rotation under the ``fsync="os"`` policy.

    The rotation hazard: the checkpoint's snapshot already covers the log
    prefix, so if the crash leaves the *old* log (kill before the rename is
    durable) recovery must skip every superseded record via the snapshot's
    LSN, and if it leaves the *new* log (kill after) the base LSN must line
    up exactly.  Either way the recovered answers equal the acknowledged
    12-insert oracle — never a double-applied (resurrected) prefix, and
    never a lost acknowledged write.
    """
    target = tmp_path / "dur"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, "-c", ROTATE_DRIVER, str(target), fault_point],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1, (
        f"fault point {fault_point!r} never fired: {result.stderr}"
    )

    recovered = DurableIndex.recover(target, fsync="os")
    # All 12 inserts were acknowledged before the checkpoint began; the crash
    # landed after the CURRENT flip, so the new snapshot plus the (old or
    # rotated) WAL must reconstruct exactly that state.
    assert recovered.last_recovery["recovered_lsn"] == 12
    rng = np.random.default_rng(11)
    data = rng.random((100, 4))
    store = {row: data[row] for row in range(len(data))}
    for step in range(12):
        store[len(data) + step] = rng.random(4)
    rows = sorted(store)
    oracle = SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    queries = np.random.default_rng(5).random((5, NUM_DIMS))
    assert_bit_identical(
        oracle.batch_query(queries, k=5), recovered.batch_query(queries, k=5)
    )
    # The log stays appendable and LSN-contiguous across another full cycle.
    recovered.insert(np.full(NUM_DIMS, 0.25), row_id=20_000)
    recovered.checkpoint()
    recovered.close()
    second = DurableIndex.recover(target, fsync="os")
    assert second.point(20_000) is not None
    assert not (target / "wal.log.tmp").exists()
    second.close()


# --------------------------------------------------- LSM maintenance crashes
def _lsm_structure(durable):
    return durable._engine._aggregator.serving_session().structure()


def _lsm_scenario(tmp_path, flush_rows=4):
    """A durable LSM engine (maintenance journaled by the wrapper)."""
    from repro import faults  # noqa: F401 — used by callers via module path

    rng = np.random.default_rng(SEED + 1)
    data = rng.random((60, NUM_DIMS))
    store = {row: data[row] for row in range(len(data))}
    engine = SDIndex.build(
        data,
        repulsive=REPULSIVE,
        attractive=ATTRACTIVE,
        flush_rows=flush_rows,
        fanout=2,
        background_compaction=False,
    )
    durable = DurableIndex.create(engine, tmp_path / "dur")
    return durable, store, rng


def test_flush_crash_loses_the_structure_op_not_the_write(tmp_path):
    """``compact.flush`` faults between journaling a mutation and journaling
    the flush it triggered: the mutation is acknowledged-and-recoverable,
    the flush simply never happened, and recovery reconstructs the exact
    unflushed delta — deterministically, twice."""
    from repro import faults
    from repro.faults import FaultPlane, FaultRule, InjectedFault

    durable, store, rng = _lsm_scenario(tmp_path)
    for i in range(3):
        point = rng.random(NUM_DIMS)
        store[100 + i] = point
        durable.insert(point, row_id=100 + i)
    plane = FaultPlane([FaultRule("compact.flush", times=1)])
    point = rng.random(NUM_DIMS)
    with faults.fault_plane(plane):
        with pytest.raises(InjectedFault):
            # Fourth insert crosses flush_rows=4; the journaled flush dies.
            durable.insert(point, row_id=103)
    store[103] = point  # journaled before maintenance ran — it is durable
    live_structure = _lsm_structure(durable)
    assert live_structure["delta_live"] == 4  # flush really was lost
    durable.wal.sync()
    durable.wal.close()  # simulated crash: no clean engine shutdown

    queries = np.random.default_rng(77).random((5, NUM_DIMS))
    rows = sorted(store)
    oracle = SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    recovered = DurableIndex.recover(tmp_path / "dur")
    assert_bit_identical(
        oracle.batch_query(queries, k=5), recovered.batch_query(queries, k=5)
    )
    # Exact structure reproduction: the recovered world holds the same
    # unflushed delta, and a second recovery lands on the identical layout.
    assert _lsm_structure(recovered) == live_structure
    recovered.wal.close()
    again = DurableIndex.recover(tmp_path / "dur")
    assert _lsm_structure(again) == live_structure

    # The recovered wrapper still owns maintenance: an explicit flush is
    # journaled, and the next recovery replays it into the same layout.
    assert again.flush() is True
    flushed_structure = _lsm_structure(again)
    assert flushed_structure["delta_live"] == 0
    again.wal.sync()
    again.wal.close()
    final = DurableIndex.recover(tmp_path / "dur")
    assert _lsm_structure(final) == flushed_structure
    assert_bit_identical(
        oracle.batch_query(queries, k=5), final.batch_query(queries, k=5)
    )
    final.close()


def test_merge_crash_keeps_unmerged_levels_replayable(tmp_path):
    """``compact.merge`` faults inside a journaled compaction: no OP_COMPACT
    record is written, recovery reproduces the unmerged levels, and a clean
    retry journals a compact that later recoveries replay exactly."""
    from repro import faults
    from repro.faults import FaultPlane, FaultRule, InjectedFault

    durable, store, rng = _lsm_scenario(tmp_path, flush_rows=100)
    for i in range(4):
        point = rng.random(NUM_DIMS)
        store[200 + i] = point
        durable.insert(point, row_id=200 + i)
    assert durable.flush() is True
    for i in range(3):
        point = rng.random(NUM_DIMS)
        store[300 + i] = point
        durable.insert(point, row_id=300 + i)
    assert durable.flush() is True
    seqs = [lvl["seq"] for lvl in _lsm_structure(durable)["levels"]]
    assert len(seqs) == 3
    plane = FaultPlane([FaultRule("compact.merge", times=1)])
    with faults.fault_plane(plane):
        with pytest.raises(InjectedFault):
            durable.compact(seqs)
    live_structure = _lsm_structure(durable)
    assert [lvl["seq"] for lvl in live_structure["levels"]] == seqs
    durable.wal.sync()
    durable.wal.close()

    recovered = DurableIndex.recover(tmp_path / "dur")
    assert _lsm_structure(recovered) == live_structure
    assert recovered.compact(seqs) == tuple(seqs)
    merged_structure = _lsm_structure(recovered)
    assert len(merged_structure["levels"]) == 1
    recovered.wal.sync()
    recovered.wal.close()

    final = DurableIndex.recover(tmp_path / "dur")
    assert _lsm_structure(final) == merged_structure
    queries = np.random.default_rng(78).random((5, NUM_DIMS))
    rows = sorted(store)
    oracle = SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    assert_bit_identical(
        oracle.batch_query(queries, k=5), final.batch_query(queries, k=5)
    )
    final.close()


LSM_KILL_DRIVER = textwrap.dedent(
    """
    import os, sys
    import numpy as np
    from repro import faults
    from repro.core import persistence
    from repro.core.sdindex import SDIndex

    path, fault_point, fault_at = sys.argv[1], sys.argv[2], int(sys.argv[3])
    seen = {"count": 0}
    original_fire = faults.fire

    def fire(point, key=None):
        if point == fault_point:
            seen["count"] += 1
            if seen["count"] == fault_at:
                os._exit(1)  # simulated crash: no flush, no cleanup
        original_fire(point, key)

    faults.fire = fire
    rng = np.random.default_rng(7)
    data = rng.random((40, 4))
    engine = SDIndex.build(
        data,
        repulsive=(0, 1),
        attractive=(2, 3),
        flush_rows=4,
        fanout=2,
        background_compaction=False,
    )
    durable = persistence.DurableIndex.create(engine, path)
    for step in range(30):
        durable.insert(rng.random(4))
    os._exit(0)  # survived every fault point: nothing fired
    """
)


@pytest.mark.parametrize(
    "fault_point,fault_at",
    [("compact.flush", 2), ("compact.flush", 5), ("compact.merge", 2)],
)
def test_subprocess_kill_during_lsm_maintenance(tmp_path, fault_point, fault_at):
    """Kill a real process inside a journaled flush/merge and recover.

    Every acknowledged insert is recoverable; the interrupted structure op
    is simply absent from the WAL.  The oracle prefix check is the same as
    the durability kills; on top of it, recovery must be structurally
    deterministic (two recoveries, identical level layout)."""
    target = tmp_path / "dur"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    result = subprocess.run(
        [sys.executable, "-c", LSM_KILL_DRIVER, str(target), fault_point, str(fault_at)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 1, (
        f"fault point {fault_point!r} never fired: {result.stderr}"
    )

    recovered = DurableIndex.recover(target)
    rng = np.random.default_rng(7)
    data = rng.random((40, 4))
    store = {row: data[row] for row in range(len(data))}
    points = [rng.random(4) for _ in range(30)]
    # The WAL interleaves structure records (flush/compact) with the inserts,
    # so the LSN does not count ops; the driver only inserts, so the
    # recovered population names the acknowledged prefix directly.
    surviving = len(recovered) - len(data)
    assert 0 < surviving <= len(points)
    for step in range(surviving):
        store[len(data) + step] = points[step]
    rows = sorted(store)
    oracle = SequentialScan(
        np.asarray([store[row] for row in rows], dtype=float),
        REPULSIVE,
        ATTRACTIVE,
        row_ids=rows,
    )
    queries = np.random.default_rng(99).random((5, NUM_DIMS))
    assert_bit_identical(
        oracle.batch_query(queries, k=5), recovered.batch_query(queries, k=5)
    )
    structure = _lsm_structure(recovered)
    recovered.wal.close()
    again = DurableIndex.recover(target)
    assert _lsm_structure(again) == structure
    # The store keeps working: maintenance resumes under journaling and the
    # next full cycle survives a clean stop.
    again.insert(np.full(NUM_DIMS, 0.5), row_id=10_000)
    again.checkpoint()
    again.close()
    final = DurableIndex.recover(target)
    assert final.point(10_000) is not None
    final.close()
