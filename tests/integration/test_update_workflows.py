"""Integration tests for update workflows: indexes stay correct across mixed updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.core.query import SDQuery
from repro.core.sdindex import SDIndex
from repro.core.top1 import Top1Index
from repro.core.topk import TopKIndex
from tests.conftest import assert_same_scores


def oracle(data, rows, query):
    matrix = np.asarray(data)
    return SequentialScan(matrix, query.repulsive, query.attractive, row_ids=rows).query(query)


class TestSDIndexUpdateWorkflow:
    def test_interleaved_updates_and_queries(self):
        rng = np.random.default_rng(21)
        base = rng.random((300, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        live = {i: base[i] for i in range(len(base))}
        next_row = len(base)
        for step in range(150):
            action = rng.random()
            if action < 0.45 or len(live) < 20:
                point = rng.random(4)
                row = index.insert(point)
                live[row] = point
                next_row += 1
            else:
                victim = int(rng.choice(list(live)))
                index.delete(victim)
                del live[victim]
            if step % 30 == 0:
                rows = list(live)
                matrix = np.array([live[r] for r in rows])
                query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=6,
                                       alpha=rng.uniform(0.1, 2, 2), beta=rng.uniform(0.1, 2, 2))
                assert_same_scores(index.query(query), oracle(matrix, rows, query))

    def test_update_then_rebuild_equivalence(self):
        rng = np.random.default_rng(22)
        base = rng.random((200, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        extra = rng.random((40, 4))
        for point in extra:
            index.insert(point)
        for victim in range(0, 40):
            index.delete(victim)
        remaining = np.vstack([base[40:], extra])
        rebuilt = SDIndex.build(remaining, repulsive=[0, 1], attractive=[2, 3])
        for _ in range(5):
            query = SDQuery.simple(rng.random(4), [0, 1], [2, 3], k=8)
            assert_same_scores(index.query(query), rebuilt.query(query))


class TestBatchQueryUpdateInterleaving:
    """Batched querying stays exact when updates land between batch calls."""

    def test_batch_between_inserts_and_deletes_matches_rebuilt_index(self):
        rng = np.random.default_rng(31)
        base = rng.random((250, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        live = {i: base[i] for i in range(len(base))}
        for step in range(6):
            # A burst of updates between two batch calls.
            for _ in range(15):
                point = rng.random(4)
                row = index.insert(point)
                live[row] = point
            for _ in range(10):
                victim = int(rng.choice(list(live)))
                index.delete(victim)
                del live[victim]

            rows = list(live)
            matrix = np.array([live[r] for r in rows])
            rebuilt = SDIndex.build(
                matrix, repulsive=[0, 1], attractive=[2, 3], row_ids=rows
            )
            points = rng.random((8, 4))
            ks = rng.integers(1, 7, size=8)
            alpha = rng.uniform(0.1, 2.0, size=(8, 2))
            beta = rng.uniform(0.1, 2.0, size=(8, 2))
            batch = index.batch_query(points, k=ks, alpha=alpha, beta=beta)
            rebuilt_batch = rebuilt.batch_query(points, k=ks, alpha=alpha, beta=beta)
            # Both batch engines share the deterministic tie-break, so the
            # updated index must agree with a from-scratch rebuild exactly.
            for j in range(8):
                assert batch[j].row_ids == rebuilt_batch[j].row_ids, f"step {step} query {j}"
                assert batch[j].scores == rebuilt_batch[j].scores, f"step {step} query {j}"
            # And with the oracle over the live point set, on scores.
            for j in range(8):
                query = SDQuery.simple(points[j], [0, 1], [2, 3], k=int(ks[j]),
                                       alpha=alpha[j], beta=beta[j])
                assert_same_scores(batch[j], oracle(matrix, rows, query))

    def test_batch_and_single_query_agree_after_churn(self):
        rng = np.random.default_rng(32)
        base = rng.random((200, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        for point in rng.random((60, 4)):
            index.insert(point)
        for victim in range(0, 50):
            index.delete(victim)
        points = rng.random((10, 4))
        batch = index.batch_query(points, k=5)
        for j in range(10):
            single = index.query(points[j], k=5)
            assert batch[j].row_ids == single.row_ids
            assert batch[j].scores == single.scores

    def test_session_is_patched_in_place_across_updates(self):
        rng = np.random.default_rng(33)
        base = rng.random((120, 4))
        index = SDIndex.build(base, repulsive=[0, 1], attractive=[2, 3])
        session = index.query_session()
        points = rng.random((4, 4))
        before = session.run(points, k=3)
        row = index.insert(rng.random(4))
        # The session stays valid: the insert was patched in, not invalidated.
        with_insert = session.run(points, k=3)
        fresh = SDIndex.build(
            np.vstack([base, index.point(row)[None, :]]),
            repulsive=[0, 1], attractive=[2, 3],
        ).batch_query(points, k=3)
        for j in range(4):
            assert with_insert[j].row_ids == fresh[j].row_ids
            assert with_insert[j].scores == fresh[j].scores
        index.delete(row)
        after = session.run(points, k=3)
        # Insert followed by delete restores the original answer set.
        for j in range(4):
            assert before[j].row_ids == after[j].row_ids
            assert before[j].scores == after[j].scores
        stats = session.maintenance_stats()
        assert stats["patched_inserts"] == 1
        assert stats["patched_deletes"] == 1
        assert stats["reflattens"] == 0


class TestTopKIndexRebuildPolicy:
    def test_auto_rebuild_keeps_queries_correct(self):
        rng = np.random.default_rng(23)
        data = rng.random((400, 2))
        index = TopKIndex(data[:, 0], data[:, 1], rebuild_threshold=0.1)
        # Delete 30% of the points: several automatic rebuilds should trigger.
        victims = rng.choice(400, size=120, replace=False)
        for victim in victims:
            index.delete(int(victim))
        remaining_rows = [i for i in range(400) if i not in set(int(v) for v in victims)]
        matrix = data[remaining_rows]
        query = SDQuery.simple([0.5, 0.5], [1], [0], k=10)
        expected = SequentialScan(matrix, [1], [0]).query(query)
        assert_same_scores(index.query(0.5, 0.5, k=10), expected)


class TestTop1UpdateWorkflow:
    def test_top1_survives_bulk_churn(self):
        rng = np.random.default_rng(24)
        data = rng.random((250, 2))
        index = Top1Index(data[:, 0], data[:, 1], k=1)
        live = {i: data[i] for i in range(len(data))}
        next_row = len(data)
        for _ in range(400):
            if rng.random() < 0.5 or len(live) < 5:
                point = rng.random(2)
                index.insert(point[0], point[1], row_id=next_row)
                live[next_row] = point
                next_row += 1
            else:
                victim = int(rng.choice(list(live)))
                index.delete(victim)
                del live[victim]
        rows = list(live)
        matrix = np.array([live[r] for r in rows])
        for _ in range(10):
            qx, qy = rng.random(2)
            query = SDQuery.simple([qx, qy], [1], [0], k=1)
            assert_same_scores(index.query(qx, qy), oracle(matrix, rows, query))
