"""Smoke tests for the experiment harness at a tiny scale.

These verify that every figure/table generator runs end-to-end and produces the
expected series structure; they do not assert performance numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablations, figure7, figure8, sharding, table1
from repro.experiments.cli import EXPERIMENTS, main
from repro.experiments.config import ExperimentConfig
from repro.workloads.reporting import format_series_table

TINY = ExperimentConfig(scale=0.0005, num_queries=2, k=3)


def series_methods(result):
    return {series.method for series in result.series}


class TestFigure7:
    def test_dataset_size_sweep_structure(self):
        results = figure7.dataset_size_sweep(
            TINY, distributions=("uniform",), methods=("SeqScan", "SD-Index", "TA"), num_dims=4
        )
        # One timing result and one pruning-power (candidates examined) result.
        assert len(results) == 2
        assert series_methods(results[0]) == {"SeqScan", "SD-Index", "TA"}
        assert "candidates" in results[1].name
        for series in results[0].series:
            assert len(series.x_values) == len(series.y_values) > 0
            assert all(y >= 0 for y in series.y_values)
        # The SD-Index must prune: it examines fewer candidates than the scan.
        scan = results[1].series_for("SeqScan").y_values
        sd = results[1].series_for("SD-Index").y_values
        assert all(s < full for s, full in zip(sd, scan))

    def test_dimension_sweep_structure(self):
        results = figure7.dimension_sweep(
            TINY, distributions=("uniform",), methods=("SeqScan", "SD-Index"),
            dimensions=(2, 4), paper_size=50_000,
        )
        assert len(results) == 2
        assert series_methods(results[0]) == {"SeqScan", "SD-Index"}
        assert results[0].series_for("SD-Index").x_values == [2, 4]

    def test_k_sweep_structure(self):
        results = figure7.k_sweep(
            TINY, distributions=("uniform",), methods=("SeqScan", "SD-Index"),
            k_values=(2, 5), num_dims=4, paper_size=50_000,
        )
        assert results[0].series_for("SD-Index").x_values == [2, 5]

    def test_attractive_sweep_structure(self):
        results = figure7.attractive_sweep(
            TINY, distributions=("uniform",), methods=("SeqScan", "SD-Index"),
            attractive_counts=(0, 2), num_repulsive=2, paper_size=50_000,
        )
        assert results[0].series_for("SD-Index").x_values == [0, 2]


class TestFigure8:
    def test_update_sweep(self):
        results = figure8.update_sweep(
            TINY, distributions=("uniform",), paper_updates=(0, 100), num_dims=4,
            paper_size=50_000,
        )
        assert {"SD-Index", "SD-Index*"} <= series_methods(results[0])

    def test_insertion_sweep(self):
        results = figure8.insertion_sweep(TINY, paper_sizes=(50_000,), num_inserts=20)
        assert series_methods(results[0]) == {"SD-Index top1", "SD-Index topK", "BRS", "PE"}

    def test_twod_size_sweep(self):
        results = figure8.twod_size_sweep(
            TINY, distributions=("uniform",), methods=("SeqScan", "SD-Index"),
            paper_sizes=(100_000,),
        )
        assert series_methods(results[0]) == {"SeqScan", "SD-Index"}

    def test_top1_size_sweep(self):
        results = figure8.top1_size_sweep(TINY, distributions=("uniform",), paper_sizes=(100_000,))
        methods = series_methods(results[0])
        assert "SD-Index top1 uniform" in methods
        assert "SeqScan" in methods

    def test_twod_k_sweep(self):
        results = figure8.twod_k_sweep(
            TINY, distributions=("uniform",), methods=("SeqScan", "SD-Index"),
            k_values=(2, 4), paper_size=100_000,
        )
        assert results[0].series_for("SD-Index").x_values == [2, 4]

    def test_memory_sweep(self):
        results = figure8.memory_sweep(TINY, paper_sizes=(50_000,))
        methods = series_methods(results[0])
        assert "SD-Index topK" in methods
        assert "SD-Index top1 uniform" in methods
        for series in results[0].series:
            assert all(y > 0 for y in series.y_values)

    def test_branching_sweep_memory_decreases(self):
        results = figure8.branching_sweep(TINY, branching_factors=(2, 16), paper_size=50_000)
        series = results[0].series_for("SD-Index topK")
        assert series.y_values[0] >= series.y_values[-1]

    def test_construction_sweep(self):
        results = figure8.construction_sweep(TINY, paper_sizes=(50_000,))
        methods = series_methods(results[0])
        assert methods == {"SD-Index top1", "SD-Index topK", "BRS", "PE"}


class TestTable1:
    def test_rows_and_qualitative_pattern(self):
        rows = table1.run_table1(TINY, k_values=(10, 50), num_molecules=20_000)
        assert rows[0].description == "Overall Average"
        assert [row.description for row in rows[1:]] == ["k=10", "k=50"]
        overall = rows[0]
        for row in rows[1:]:
            # The paper's qualitative claims: heavier, still drug-like, much lower PSA.
            assert row.molecular_weight > 1.5 * overall.molecular_weight
            assert row.drug_likeness > overall.drug_likeness - 0.5
            assert row.polar_surface_area < 0.7 * overall.polar_surface_area

    def test_format_table1_mentions_paper_numbers(self):
        rows = table1.run_table1(TINY, k_values=(10,), num_molecules=20_000)
        text = table1.format_table1(rows)
        assert "Overall Average" in text
        assert "938.67" in text  # the paper's k=10 molecular weight


class TestShardedServing:
    def test_shard_sweep_structure(self):
        results = sharding.shard_sweep(TINY)
        assert len(results) == 2  # uniform + chembl scenarios
        for result in results:
            methods = series_methods(result)
            assert {"SD-Index", "SD-Sharded/range", "SD-Sharded/hash"} <= methods
            for series in result.series:
                assert series.x_values == list(sharding.SHARD_COUNTS)
                assert all(y > 0 for y in series.y_values)

    def test_cli_exposes_sharded_serving(self, capsys):
        assert main(["list"]) == 0
        assert "sharded-serving" in capsys.readouterr().out


class TestAblationsAndCli:
    def test_angle_grid_ablation(self):
        results = ablations.angle_grid(TINY, grid_sizes=(2, 3), paper_size=50_000, num_dims=4)
        assert len(results) == 2

    def test_pairing_ablation(self):
        results = ablations.pairing(TINY, paper_size=50_000, num_dims=4)
        assert len(results) == 1
        assert series_methods(results[0]) == {"order", "spread", "correlation"}

    def test_query_strategy_ablation(self):
        results = ablations.query_strategy(TINY, paper_size=100_000)
        assert series_methods(results[0]) == {"streams", "claim6"}

    def test_top1_vs_topk_ablation(self):
        results = ablations.top1_vs_topk(TINY, paper_size=100_000)
        assert len(results) == 2

    def test_cli_list_and_registry(self, capsys):
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        for name in ("fig7-size", "fig8-memory", "table1"):
            assert name in captured.out
        assert set(EXPERIMENTS) >= {"fig7-size", "fig8-construction", "table1"}

    def test_cli_run_single_experiment(self, capsys):
        exit_code = main(["run", "fig8-branching", "--scale", "0.0005", "--queries", "1"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "Figure 8i" in captured.out

    def test_series_table_formatting(self):
        results = figure8.branching_sweep(TINY, branching_factors=(2, 4), paper_size=50_000)
        text = format_series_table(results[0])
        assert "branching_factor" in text
        assert "SD-Index topK" in text
